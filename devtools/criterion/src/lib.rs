//! Minimal, zero-dependency stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of the criterion 0.5 API used by `crates/bench`:
//! timing via calibrated iteration batches, mean ns/iter reporting, and an
//! optional machine-readable JSON dump of every measurement (set
//! `CRITERION_JSON=/path/out.json`). Statistical analysis, plots, and
//! baselines of the real crate are intentionally out of scope.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (deprecated upstream in favor
/// of `std::hint::black_box`, which call sites already use).
pub use std::hint::black_box;

thread_local! {
    /// Measurements collected by every group/function on this thread, in
    /// run order: `(benchmark id, mean ns per iteration)`.
    static RESULTS: RefCell<Vec<(String, f64)>> = const { RefCell::new(Vec::new()) };
}

/// Default wall-clock spent measuring each benchmark.
const DEFAULT_MEASURE_MS: u64 = 300;

/// Target wall-clock spent measuring each benchmark. Overridable with
/// `CRITERION_MEASURE_MS` so CI can smoke-run every bench in milliseconds
/// (compile + execute the hot path) without paying full measurement
/// windows; numbers from shortened runs are noisy and only prove the
/// bench still works.
fn measure_target() -> Duration {
    static MS: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    let ms = *MS.get_or_init(|| {
        std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&ms| ms > 0)
            .unwrap_or(DEFAULT_MEASURE_MS)
    });
    Duration::from_millis(ms)
}

/// Target wall-clock spent warming up each benchmark (a fifth of the
/// measurement window).
fn warmup_target() -> Duration {
    measure_target() / 5
}

/// How a batched iteration sizes its batches (subset of the real enum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state: one batch per measurement.
    LargeInput,
    /// One setup per measured call.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; drives the timing loop.
#[derive(Debug)]
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine` over enough iterations to fill the measurement
    /// window, recording the mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and calibrate the per-batch iteration count.
        let measure = measure_target();
        let mut batch: u64 = 1;
        let warmup_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if warmup_start.elapsed() >= warmup_target() {
                // Aim for ~50 batches inside the measurement window.
                let per_iter = elapsed.as_secs_f64() / batch as f64;
                let target = measure.as_secs_f64() / 50.0;
                batch = ((target / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);
                break;
            }
            batch = (batch * 2).min(1 << 24);
        }

        // Measure in sub-windows and report the *fastest* window's mean:
        // on shared/virtualized CPUs, noisy-neighbor bursts inflate a
        // single long window unpredictably, while the minimum over
        // windows estimates the uncontended cost.
        const WINDOWS: u32 = 5;
        let window = measure / WINDOWS;
        let mut best = f64::INFINITY;
        for _ in 0..WINDOWS {
            let mut iters: u64 = 0;
            let start = Instant::now();
            while start.elapsed() < window {
                for _ in 0..batch {
                    black_box(routine());
                }
                iters += batch;
            }
            let mean = start.elapsed().as_nanos() as f64 / iters.max(1) as f64;
            best = best.min(mean);
        }
        self.mean_ns = best;
    }

    /// Times `routine` with a fresh `setup()` value per batch; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let measure = measure_target();
        let mut samples: u64 = 0;
        let mut measured = Duration::ZERO;
        let loop_start = Instant::now();
        // Batched setups are typically expensive; bound total wall-clock.
        while measured < measure && loop_start.elapsed() < 4 * measure {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            measured += t.elapsed();
            samples += 1;
        }
        self.mean_ns = measured.as_nanos() as f64 / samples.max(1) as f64;
    }
}

fn record(id: &str, mean_ns: f64) {
    println!("bench {id:<50} {mean_ns:>14.1} ns/iter");
    RESULTS.with(|r| r.borrow_mut().push((id.to_owned(), mean_ns)));
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut bencher = Bencher { mean_ns: 0.0 };
    f(&mut bencher);
    record(id, bencher.mean_ns);
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<P, F>(&mut self, id: BenchmarkId, input: &P, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &P),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, |b| f(b));
        self
    }

    /// Ends the group (formatting no-op in this stand-in).
    pub fn finish(self) {}
}

/// The benchmark manager handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            _criterion: self,
        }
    }

    /// Benchmarks `f` under `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, |b| f(b));
        self
    }
}

/// Writes every measurement recorded so far as JSON to the path named by
/// `CRITERION_JSON`, if set. Called by `criterion_main!` after all groups.
pub fn export_json_if_requested() {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let results = RESULTS.with(|r| r.borrow().clone());
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, (id, mean_ns)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"id\": \"{}\", \"mean_ns\": {:.1}}}{comma}",
            id.replace('"', "'"),
            mean_ns
        );
    }
    out.push_str("  ]\n}\n");
    if let Err(err) = std::fs::write(&path, out) {
        eprintln!("criterion: failed to write {path}: {err}");
    }
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, running each group then exporting JSON.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::export_json_if_requested();
        }
    };
}
