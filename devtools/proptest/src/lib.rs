//! Minimal, zero-dependency stand-in for the `proptest` property-testing
//! harness.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of the proptest 1.x API the workspace's test
//! suites use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`/`prop_oneof!`, [`strategy::Strategy`] with `prop_map`,
//! `any::<T>()` for primitives, integer/float range strategies, tuple
//! strategies, simple character-class string strategies (`"[a-z/]{1,24}"`),
//! and `collection::{vec, hash_set}`.
//!
//! Cases are generated from a deterministic per-test seed; there is no
//! shrinking — on failure the `Debug` rendering of the generated inputs is
//! reported instead. Set `PROPTEST_CASES` to override the case count.

pub mod strategy {
    //! Value-generation strategies.

    use std::ops::Range;

    /// Deterministic splitmix64-based generator handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        #[must_use]
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Type-erased strategy, used by `prop_oneof!`.
    pub struct BoxedStrategy<T> {
        inner: Box<dyn Strategy<Value = T>>,
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> BoxedStrategy<T> {
        /// Boxes `strategy`.
        pub fn new<S: Strategy<Value = T> + 'static>(strategy: S) -> Self {
            BoxedStrategy {
                inner: Box::new(strategy),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Weighted union of strategies, built by `prop_oneof!`.
    #[derive(Debug)]
    pub struct OneOf<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> OneOf<T> {
        /// Builds a weighted union; weights must sum to a positive value.
        #[must_use]
        pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total_weight = options.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total_weight > 0, "prop_oneof! needs positive total weight");
            OneOf {
                options,
                total_weight,
            }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total_weight);
            for (weight, strategy) in &self.options {
                let weight = u64::from(*weight);
                if pick < weight {
                    return strategy.generate(rng);
                }
                pick -= weight;
            }
            unreachable!("weights exhausted")
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),+) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as u128 - self.start as u128) as u64;
                    self.start + (rng.below(width) as $ty)
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// `"[chars]{min,max}"` character-class string strategy (the only regex
    /// form the workspace's tests use).
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, min, max) = parse_class_pattern(self)
                .unwrap_or_else(|| panic!("unsupported string pattern {self:?}"));
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                .collect()
        }
    }

    /// Parses `[a-z/]{1,24}`-style patterns into (alphabet, min, max).
    fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let (class, counts) = rest.split_once(']')?;
        let counts = counts.strip_prefix('{')?.strip_suffix('}')?;
        let (min, max) = counts.split_once(',')?;
        let (min, max) = (min.parse().ok()?, max.parse().ok()?);
        if min > max {
            return None;
        }
        let mut alphabet = Vec::new();
        let chars: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                for c in chars[i]..=chars[i + 2] {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(chars[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() {
            return None;
        }
        Some((alphabet, min, max))
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D));

    /// Full-range strategy for a primitive, returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($ty:ty),+) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )+};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T` (mirrors `proptest::prelude::any`).
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    use crate::strategy::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of `element` values with `size` in the range.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with size drawn from a range.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates hash sets of `element` values; duplicates collapse, so the
    /// final size may fall below the drawn target.
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case execution and failure reporting.

    use crate::strategy::TestRng;

    /// Why a test case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property failed; the run aborts with this message.
        Fail(String),
        /// The case was rejected by `prop_assume!`; another is drawn.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given reason.
        pub fn fail(reason: impl std::fmt::Display) -> Self {
            TestCaseError::Fail(reason.to_string())
        }

        /// A rejection with the given reason.
        pub fn reject(reason: impl std::fmt::Display) -> Self {
            TestCaseError::Reject(reason.to_string())
        }
    }

    /// Per-property configuration (subset of the real struct).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    fn seed_for(name: &str) -> u64 {
        name.bytes().fold(0xCBF2_9CE4_8422_2325u64, |acc, b| {
            (acc ^ u64::from(b)).wrapping_mul(0x100_0000_01B3)
        })
    }

    /// Runs `case` until `config.cases` successes, panicking on the first
    /// failure with the generated inputs' `Debug` rendering.
    pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
    {
        let base_seed = seed_for(name);
        let max_attempts = u64::from(config.cases) * 16;
        let mut successes = 0u32;
        let mut attempt = 0u64;
        while successes < config.cases {
            assert!(
                attempt < max_attempts,
                "property {name}: too many rejected cases ({attempt} attempts)"
            );
            let mut rng = TestRng::new(base_seed.wrapping_add(attempt));
            let (inputs, result) = case(&mut rng);
            match result {
                Ok(()) => successes += 1,
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(message)) => {
                    let mut inputs = inputs;
                    if inputs.len() > 640 {
                        inputs.truncate(640);
                        inputs.push('…');
                    }
                    panic!(
                        "property {name} failed at attempt {attempt}: {message}\n  inputs: {inputs}"
                    );
                }
            }
            attempt += 1;
        }
    }
}

pub mod prelude {
    //! The glob-import surface (mirrors `proptest::prelude`).

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }` is
/// expanded into a case-running test function.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::test_runner::run_cases(&config, stringify!($name), |__rng| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);
                    )+
                    let __inputs = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(&::std::format!(
                                "{} = {:?}; ",
                                stringify!($arg),
                                &$arg
                            ));
                        )+
                        s
                    };
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    (__inputs, __result)
                });
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(::std::concat!(
                "assertion failed: ",
                ::std::stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err($crate::test_runner::TestCaseError::fail(::std::format!(
                "assertion failed: {:?} != {:?}",
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err($crate::test_runner::TestCaseError::fail(::std::format!(
                "{} ({:?} != {:?})",
                ::std::format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Rejects the current case unless `cond` holds (a new case is drawn).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(
                ::std::stringify!($cond),
            ));
        }
    };
}

/// Weighted (or unweighted) union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $(($weight as u32, $crate::strategy::BoxedStrategy::new($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}
