//! Trace replay: drive any [`MetadataService`] with a workload stream.

use core::time::Duration;

use ghba_core::{LevelCounts, MetadataService, QueryLevel};
use ghba_simnet::LatencyStats;
use ghba_trace::{MetaOp, TraceRecord};

/// Aggregate results of one replay.
#[derive(Debug, Clone, Default)]
pub struct ReplayReport {
    /// Operations replayed.
    pub operations: u64,
    /// Lookups that found their file.
    pub found: u64,
    /// Lookups that found nothing.
    pub missing: u64,
    /// Per-level resolution counts.
    pub levels: LevelCounts,
    /// Lookup latency distribution.
    pub latency: LatencyStats,
    /// Network messages across all lookups.
    pub messages: u64,
}

impl ReplayReport {
    /// Mean lookup latency.
    #[must_use]
    pub fn mean_latency(&self) -> Duration {
        self.latency.mean()
    }
}

/// Pre-creates `paths` on the service (the "initially populated randomly"
/// step of §4).
pub fn populate<S: MetadataService + ?Sized>(
    service: &mut S,
    paths: impl IntoIterator<Item = String>,
) {
    for path in paths {
        service.create(&path);
    }
}

/// Replays `records` against `service`, translating metadata operations:
/// reads become lookups, `create` inserts, `unlink` looks up then removes,
/// `rename` re-homes under a suffixed path.
pub fn replay<S: MetadataService + ?Sized>(
    service: &mut S,
    records: impl IntoIterator<Item = TraceRecord>,
) -> ReplayReport {
    let mut report = ReplayReport::default();
    for record in records {
        report.operations += 1;
        match record.op {
            MetaOp::Open | MetaOp::Close | MetaOp::Stat | MetaOp::Readdir => {
                let outcome = service.lookup(&record.path);
                report.levels.record(outcome.level);
                report.latency.record(outcome.latency);
                report.messages += u64::from(outcome.messages);
                if outcome.found() {
                    report.found += 1;
                } else {
                    report.missing += 1;
                }
            }
            MetaOp::Create => {
                service.create(&record.path);
            }
            MetaOp::Unlink => {
                let outcome = service.lookup(&record.path);
                report.levels.record(outcome.level);
                report.latency.record(outcome.latency);
                report.messages += u64::from(outcome.messages);
                if outcome.level != QueryLevel::Nonexistent {
                    report.found += 1;
                    service.remove(&record.path);
                } else {
                    report.missing += 1;
                }
            }
            MetaOp::Rename => {
                if service.remove(&record.path).is_some() {
                    let renamed = format!("{}~renamed", record.path);
                    service.create(&renamed);
                }
            }
        }
    }
    report
}
