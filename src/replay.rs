//! Trace replay: drive any [`MetadataService`] with a workload stream.

use core::time::Duration;

use ghba_core::{LevelCounts, MetadataService, QueryLevel};
use ghba_simnet::LatencyStats;
use ghba_trace::{MetaOp, TraceRecord};

/// Aggregate results of one replay.
#[derive(Debug, Clone, Default)]
pub struct ReplayReport {
    /// Operations replayed.
    pub operations: u64,
    /// Lookups that found their file.
    pub found: u64,
    /// Lookups that found nothing.
    pub missing: u64,
    /// Per-level resolution counts.
    pub levels: LevelCounts,
    /// Lookup latency distribution.
    pub latency: LatencyStats,
    /// Network messages across all lookups.
    pub messages: u64,
}

impl ReplayReport {
    /// Mean lookup latency.
    #[must_use]
    pub fn mean_latency(&self) -> Duration {
        self.latency.mean()
    }
}

/// Pre-creates `paths` on the service (the "initially populated randomly"
/// step of §4).
pub fn populate<S: MetadataService + ?Sized>(
    service: &mut S,
    paths: impl IntoIterator<Item = String>,
) {
    for path in paths {
        service.create(&path);
    }
}

/// Read-only lookups per [`MetadataService::lookup_batch`] call: the batch
/// size the paper-faithful MDS model resolves in one slab pass per level.
const LOOKUP_BATCH: usize = 16;

/// Resolves the queued read-only lookups through the service's batched
/// probe path and folds the outcomes into `report`.
fn flush_lookups<S: MetadataService + ?Sized>(
    service: &mut S,
    report: &mut ReplayReport,
    pending: &mut Vec<String>,
) {
    if pending.is_empty() {
        return;
    }
    let paths: Vec<&str> = pending.iter().map(String::as_str).collect();
    for outcome in service.lookup_batch(&paths) {
        report.levels.record(outcome.level);
        report.latency.record(outcome.latency);
        report.messages += u64::from(outcome.messages);
        if outcome.found() {
            report.found += 1;
        } else {
            report.missing += 1;
        }
    }
    pending.clear();
}

/// Replays `records` against `service`, translating metadata operations:
/// reads become lookups, `create` inserts, `unlink` looks up then removes,
/// `rename` re-homes under a suffixed path.
///
/// Runs of consecutive read-only operations (`open`/`close`/`stat`/
/// `readdir`) model concurrent client requests arriving at the cluster:
/// they are drained through [`MetadataService::lookup_batch`] in groups of
/// up to [`LOOKUP_BATCH`], so schemes with a batched probe path amortize
/// slab row loads across the burst. The batch is flushed before every
/// mutating operation — and before a repeated path — so replay order
/// semantics match the sequential interpretation.
pub fn replay<S: MetadataService + ?Sized>(
    service: &mut S,
    records: impl IntoIterator<Item = TraceRecord>,
) -> ReplayReport {
    let mut report = ReplayReport::default();
    let mut pending: Vec<String> = Vec::with_capacity(LOOKUP_BATCH);
    for record in records {
        report.operations += 1;
        match record.op {
            MetaOp::Open | MetaOp::Close | MetaOp::Stat | MetaOp::Readdir => {
                if pending.contains(&record.path) {
                    // A repeat within the window: resolve the earlier one
                    // first so this lookup sees its LRU fill, as a
                    // sequential replay would.
                    flush_lookups(service, &mut report, &mut pending);
                }
                pending.push(record.path);
                if pending.len() == LOOKUP_BATCH {
                    flush_lookups(service, &mut report, &mut pending);
                }
            }
            MetaOp::Create => {
                flush_lookups(service, &mut report, &mut pending);
                service.create(&record.path);
            }
            MetaOp::Unlink => {
                flush_lookups(service, &mut report, &mut pending);
                let outcome = service.lookup(&record.path);
                report.levels.record(outcome.level);
                report.latency.record(outcome.latency);
                report.messages += u64::from(outcome.messages);
                if outcome.level != QueryLevel::Nonexistent {
                    report.found += 1;
                    service.remove(&record.path);
                } else {
                    report.missing += 1;
                }
            }
            MetaOp::Rename => {
                flush_lookups(service, &mut report, &mut pending);
                if service.remove(&record.path).is_some() {
                    let renamed = format!("{}~renamed", record.path);
                    service.create(&renamed);
                }
            }
        }
    }
    flush_lookups(service, &mut report, &mut pending);
    report
}
