//! Trace replay: drive any [`MetadataService`] with a workload stream.
//!
//! Replay is **vectored**: trace records are admitted into mixed-op
//! [`OpBatch`] windows (reads *and* writes together, each path hashed once
//! at admission) and drained through [`MetadataService::execute`]. The
//! batch is never flushed because a write arrived — the scheme's own
//! pipeline orders writes against the reads around them — so the batched
//! slab paths stay hot through flash-crowd traces that interleave creates
//! with the lookup bursts.

use core::time::Duration;

use ghba_core::{LevelCounts, MetadataService, OpBatch, OpOutcome};
use ghba_simnet::LatencyStats;
use ghba_trace::{MetaOp, TraceRecord};

/// Aggregate results of one replay.
#[derive(Debug, Clone, Default)]
pub struct ReplayReport {
    /// Operations replayed.
    pub operations: u64,
    /// Lookups that found their file.
    pub found: u64,
    /// Lookups that found nothing.
    pub missing: u64,
    /// Per-level resolution counts.
    pub levels: LevelCounts,
    /// Lookup latency distribution.
    pub latency: LatencyStats,
    /// Network messages across all lookups.
    pub messages: u64,
}

impl ReplayReport {
    /// Mean lookup latency.
    #[must_use]
    pub fn mean_latency(&self) -> Duration {
        self.latency.mean()
    }
}

/// Creates admitted per [`OpBatch`] during [`populate`].
const POPULATE_WINDOW: usize = 256;

/// Pre-creates `paths` on the service (the "initially populated randomly"
/// step of §4), in batched create windows.
pub fn populate<S: MetadataService + ?Sized>(
    service: &mut S,
    paths: impl IntoIterator<Item = String>,
) {
    let mut batch = OpBatch::new();
    for path in paths {
        batch.push_create(path);
        if batch.len() >= POPULATE_WINDOW {
            let _ = service.execute(&batch);
            batch.clear();
        }
    }
    if !batch.is_empty() {
        let _ = service.execute(&batch);
    }
}

/// Trace records admitted per [`OpBatch`] window: the number of
/// concurrent client operations the cluster sees at once. Windows mix
/// reads and writes freely; the scheme's execute pipeline fuses the read
/// runs and orders the writes.
const OP_WINDOW: usize = 128;

/// Executes the queued window and folds its lookup outcomes into
/// `report`.
fn drain<S: MetadataService + ?Sized>(
    service: &mut S,
    report: &mut ReplayReport,
    batch: &mut OpBatch,
) {
    if batch.is_empty() {
        return;
    }
    for outcome in service.execute(batch) {
        if let OpOutcome::Resolved(outcome) = outcome {
            report.levels.record(outcome.level);
            report.latency.record(outcome.latency);
            report.messages += u64::from(outcome.messages);
            if outcome.found() {
                report.found += 1;
            } else {
                report.missing += 1;
            }
        }
    }
    batch.clear();
}

/// Replays `records` against `service`, translating metadata operations
/// into typed ops: reads become lookups, `create` inserts, `unlink` looks
/// up then removes, `rename` migrates to the record's destination (or a
/// suffixed path for legacy records without one).
///
/// Up to 128 consecutive records ([`OP_WINDOW`](self) internally) are
/// admitted into one mixed [`OpBatch`] — the window models concurrent
/// client requests arriving at the cluster — and drained through
/// [`MetadataService::execute`] in a single call. Writes never flush the window: the execute pipeline
/// resolves read runs through the batched slab paths and applies writes
/// in stream order between them, outcome-identical to a sequential replay
/// of the same ops (see `ghba_core::execute_vectored`).
pub fn replay<S: MetadataService + ?Sized>(
    service: &mut S,
    records: impl IntoIterator<Item = TraceRecord>,
) -> ReplayReport {
    let mut report = ReplayReport::default();
    let mut batch = OpBatch::new();
    for record in records {
        report.operations += 1;
        match record.op {
            MetaOp::Open | MetaOp::Close | MetaOp::Stat | MetaOp::Readdir => {
                batch.push_lookup(record.path);
            }
            MetaOp::Create => {
                batch.push_create(record.path);
            }
            MetaOp::Unlink => {
                // The unlinking client resolves the path first (the
                // recorded lookup), then removes it; a miss makes the
                // remove a no-op, exactly like the sequential protocol.
                batch.push_lookup(record.path.clone());
                batch.push_remove(record.path);
            }
            MetaOp::Rename => {
                let to = record
                    .rename_to
                    .unwrap_or_else(|| format!("{}~renamed", record.path));
                batch.push_rename(record.path, to);
            }
        }
        if batch.len() >= OP_WINDOW {
            drain(service, &mut report, &mut batch);
        }
    }
    drain(service, &mut report, &mut batch);
    report
}
