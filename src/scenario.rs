//! Scenario ticks: drive a [`LoadCurve`] at a cluster on the simnet
//! event queue, with the online [`GroupController`] ticking in-band.
//!
//! [`replay`](crate::replay) answers "what does this *stream* cost?";
//! a scenario answers "what does this *day* look like?" — traffic whose
//! intensity and skew change over simulated time, with the control
//! plane reacting as it happens. The driver schedules two event kinds
//! on a deterministic [`EventQueue`]:
//!
//! * **`Window(w)`** — one traffic window: the active
//!   [`LoadPhase`](ghba_trace::LoadPhase)
//!   sets how many lookups arrive and what fraction of them enter
//!   through the hot region's servers;
//! * **`Tick(w)`** — one controller tick, immediately after the
//!   window: close the cluster's load window
//!   ([`GhbaCluster::load_report`]) and let the [`GroupController`]
//!   actuate through the [`ReconfigHandle`](ghba_core::ReconfigHandle).
//!
//! Everything is virtual-time and seeded, so a scenario replays
//! byte-identically: the same curve, spec, and seed produce the same
//! lookups, the same reports, and the same accepted actions — which is
//! what lets tests pin down *when* the flash crowd forces a split.
//!
//! Focused traffic needs a target: the driver aims it at the member
//! set of the cluster's first group through the curve's peak phase,
//! then at the last group's member set afterwards — a flash crowd that
//! migrates, forcing two independent control decisions per pass.

use core::time::Duration;

use ghba_core::{AdaptAction, GhbaCluster, GroupController, MdsId};
use ghba_simnet::{DetRng, EventQueue, SimTime};
use ghba_trace::LoadCurve;

/// Shape of one scenario run (see [`drive_curve`]).
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Traffic windows across the whole curve (one controller tick
    /// after each).
    pub windows: u64,
    /// Lookups offered per window at intensity 1.0; each window scales
    /// this by its phase's intensity.
    pub nominal_ops: u64,
    /// Simulated length of one window (sets the event-queue spacing;
    /// lookups themselves are instantaneous in virtual time).
    pub window_len: Duration,
    /// Seed for the entry/path draws.
    pub seed: u64,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            windows: 60,
            nominal_ops: 400,
            window_len: Duration::from_millis(250),
            seed: 0x5CE7A,
        }
    }
}

/// What one scenario run did, phase by phase and action by action.
#[derive(Debug, Clone, Default)]
pub struct ScenarioReport {
    /// Lookups executed.
    pub lookups: u64,
    /// Lookups that found their file.
    pub found: u64,
    /// Accepted controller actions, tagged with the window whose tick
    /// produced them (empty without a controller).
    pub actions: Vec<(u64, AdaptAction)>,
    /// Membership epochs advanced across the run.
    pub epoch_bumps: u64,
    /// Live groups when the run ended.
    pub final_groups: usize,
    /// Lookups per phase, in curve order.
    pub phase_lookups: Vec<(&'static str, u64)>,
}

/// One scheduled scenario event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// Serve window `w`'s traffic.
    Window(u64),
    /// Tick the controller after window `w`.
    Tick(u64),
}

/// Drives `curve` at `cluster` for `spec.windows` windows, ticking
/// `controller` (when given) after every window. `paths` is the lookup
/// population (pre-create it; see [`replay::populate`](crate::replay::populate)).
///
/// Returns the per-phase traffic, every accepted action with the
/// window it landed in, and the epoch distance travelled — the
/// telemetry the scenario tests and the figure drivers assert on.
///
/// # Panics
///
/// Panics when `paths` is empty or the cluster has no servers.
pub fn drive_curve(
    cluster: &mut GhbaCluster,
    mut controller: Option<&mut GroupController>,
    curve: &LoadCurve,
    paths: &[String],
    spec: &ScenarioSpec,
) -> ScenarioReport {
    assert!(!paths.is_empty(), "a scenario needs a lookup population");
    let servers = cluster.server_ids();
    assert!(!servers.is_empty(), "a scenario needs servers");

    // Freeze the two focus regions before any action reshapes the
    // groups: the hot region is a set of *servers*, stable across
    // splits of the group that contains them.
    let handle = cluster.reconfig_handle();
    let gids = handle.group_ids();
    let first = gids.first().copied().expect("at least one group");
    let last = gids.last().copied().expect("at least one group");
    let region_a: Vec<MdsId> = handle.group_members(first).unwrap_or_default();
    let region_b: Vec<MdsId> = handle.group_members(last).unwrap_or_default();
    let peak_idx = curve
        .phases()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.intensity.total_cmp(&b.1.intensity))
        .map_or(0, |(i, _)| i);
    let epoch_start = cluster.membership_epoch();

    let mut queue: EventQueue<Event> = EventQueue::new();
    for w in 0..spec.windows {
        // Same timestamp, FIFO tie-break: the window's traffic is
        // always served before its tick closes the load window.
        let at = SimTime::ZERO + spec.window_len * u32::try_from(w).unwrap_or(u32::MAX);
        queue.schedule(at, Event::Window(w));
        queue.schedule(at, Event::Tick(w));
    }

    let mut report = ScenarioReport {
        phase_lookups: curve.phases().iter().map(|p| (p.name, 0)).collect(),
        ..ScenarioReport::default()
    };
    while let Some((_, event)) = queue.pop() {
        match event {
            Event::Window(w) => {
                let t = (w as f64 + 0.5) / spec.windows as f64;
                let phase = curve.phase_at(t);
                let phase_idx = curve
                    .phases()
                    .iter()
                    .position(|p| core::ptr::eq(p, phase))
                    .unwrap_or(0);
                let region = if phase_idx <= peak_idx {
                    &region_a
                } else {
                    &region_b
                };
                let offered = (spec.nominal_ops as f64 * phase.intensity).round() as u64;
                let mut rng = DetRng::new(spec.seed).fork(w);
                for _ in 0..offered {
                    let entry = if !region.is_empty() && rng.chance(phase.hot_focus) {
                        region[rng.index(region.len())]
                    } else {
                        servers[rng.index(servers.len())]
                    };
                    let path = &paths[rng.index(paths.len())];
                    let outcome = cluster.lookup_concurrent(entry, path);
                    report.lookups += 1;
                    report.found += u64::from(outcome.found());
                }
                report.phase_lookups[phase_idx].1 += offered;
            }
            Event::Tick(w) => {
                if let Some(controller) = controller.as_deref_mut() {
                    let load = cluster.load_report();
                    let handle = cluster.reconfig_handle();
                    for action in controller.actuate(&load, &handle) {
                        report.actions.push((w, action));
                    }
                }
            }
        }
    }

    report.epoch_bumps = cluster.membership_epoch().0 - epoch_start.0;
    report.final_groups = cluster.group_count();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghba_core::{ControllerConfig, GhbaConfig, GroupId};

    fn cluster() -> (GhbaCluster, Vec<String>) {
        let config = GhbaConfig::default()
            .with_filter_capacity(8_000)
            .with_lru_capacity(0)
            .with_max_group_size(16)
            .with_seed(0xD1A);
        let mut cluster = GhbaCluster::with_servers(config, 48);
        let paths: Vec<String> = (0..2_000)
            .map(|i| format!("/scn/d{}/f{i}", i % 61))
            .collect();
        crate::replay::populate(&mut cluster, paths.iter().cloned());
        cluster.flush_all_updates();
        (cluster, paths)
    }

    #[test]
    fn diurnal_flash_ticks_split_both_hot_regions() {
        let (mut cluster, paths) = cluster();
        let mut controller = GroupController::new(ControllerConfig::default());
        let spec = ScenarioSpec::default();
        let curve = LoadCurve::diurnal_flash();
        let report = drive_curve(&mut cluster, Some(&mut controller), &curve, &paths, &spec);

        assert_eq!(
            report.lookups, report.found,
            "every scenario lookup resolves"
        );
        let split_origins: Vec<GroupId> = report
            .actions
            .iter()
            .filter_map(|(_, a)| match a {
                AdaptAction::Split(gid) => Some(*gid),
                _ => None,
            })
            .collect();
        assert!(
            split_origins.contains(&GroupId(0)),
            "the flash crowd must split the first group, got {:?}",
            report.actions
        );
        assert!(
            split_origins.iter().any(|gid| *gid != GroupId(0)),
            "the migrated cooldown skew must split a second region, got {:?}",
            report.actions
        );
        assert!(report.epoch_bumps >= 2, "each split publishes an epoch");
        assert!(report.final_groups >= 5);
        cluster.check_invariants().expect("routes stay sound");
        // The trough and the uniform evening never trigger anything:
        // every action lands in a focused phase's window range.
        let phase_of = |w: u64| {
            let t = (w as f64 + 0.5) / spec.windows as f64;
            curve.phase_at(t).name
        };
        for (w, action) in &report.actions {
            assert!(
                !matches!(phase_of(*w), "night" | "evening"),
                "action {action:?} fired in a calm phase (window {w})"
            );
        }
    }

    /// The contraction scenario (ROADMAP follow-on 2a): after a
    /// flash-crowd day split the shape into remnants well below M*,
    /// then drive the overnight trough at it. The controller's merge
    /// path must pack the remnants back toward M* = round(√48) = 7
    /// online — while every group the merges never touch keeps its
    /// warm [`SharedMaskCache`] (mask hit rate ≥ 0.99 end to end).
    #[test]
    fn overnight_trough_merges_back_toward_m_star() {
        let run = || {
            let config = GhbaConfig::default()
                .with_filter_capacity(8_000)
                .with_lru_capacity(0)
                .with_max_group_size(8)
                .with_seed(0xD1A);
            let mut cluster = GhbaCluster::with_servers(config, 48);
            let paths: Vec<String> = (0..2_000)
                .map(|i| format!("/scn/d{}/f{i}", i % 61))
                .collect();
            crate::replay::populate(&mut cluster, paths.iter().cloned());
            cluster.flush_all_updates();

            // Yesterday's flash crowd split three groups (8 → 3 + 5):
            // nine groups of mean 48/9 ≈ 5.3, well under M* = 7. The
            // last minted group doubles as tonight's batch region, so
            // the trough's focus lands on a group too small to split.
            let handle = cluster.reconfig_handle();
            let day_split: Vec<GroupId> = handle.group_ids().into_iter().take(3).collect();
            for gid in &day_split {
                handle.split_group(*gid).expect("flash-crowd split");
            }
            let pre_groups = cluster.group_count();
            assert_eq!(pre_groups, 9);

            let mut controller = GroupController::new(ControllerConfig::default());
            let spec = ScenarioSpec::default();
            let curve = ghba_trace::LoadCurve::overnight_trough();
            let report = drive_curve(&mut cluster, Some(&mut controller), &curve, &paths, &spec);
            (cluster, day_split, pre_groups, spec, curve, report)
        };
        let (cluster, day_split, pre_groups, spec, curve, report) = run();

        assert_eq!(report.lookups, report.found);
        let merges: Vec<_> = report
            .actions
            .iter()
            .filter(|(_, a)| matches!(a, AdaptAction::Merge(..)))
            .collect();
        assert!(
            !merges.is_empty(),
            "the trough must merge split remnants, got {:?}",
            report.actions
        );
        assert!(
            !report
                .actions
                .iter()
                .any(|(_, a)| matches!(a, AdaptAction::Split(_))),
            "a contraction pass must not expand, got {:?}",
            report.actions
        );
        // Every merge lands overnight: dusk's residual skew is too
        // mild to starve anyone and dawn is uniform.
        for (w, action) in &merges {
            let t = (*w as f64 + 0.5) / spec.windows as f64;
            assert_eq!(
                curve.phase_at(t).name,
                "trough",
                "merge {action:?} fired outside the trough (window {w})"
            );
        }
        // The merges move the mean group size toward M* = 7.
        let target = 7.0;
        let pre_mean = 48.0 / pre_groups as f64;
        let post_mean = 48.0 / report.final_groups as f64;
        assert!(report.final_groups < pre_groups);
        assert!(
            (post_mean - target).abs() < (pre_mean - target).abs(),
            "mean group size must move toward M*: {pre_mean:.2} → {post_mean:.2}"
        );
        assert!(report.epoch_bumps >= merges.len() as u64);
        cluster.check_invariants().expect("routes stay sound");

        // Warm-retention: groups no action (and no day split) ever
        // named kept their per-group epochs, so their shared mask
        // caches stayed warm through every overnight merge.
        let touched: Vec<GroupId> = report
            .actions
            .iter()
            .flat_map(|(_, a)| {
                let (x, y) = a.touches();
                std::iter::once(x).chain(y)
            })
            .chain(day_split.iter().copied())
            .collect();
        let load = cluster.load_report();
        let mut untouched = 0;
        for g in &load.groups {
            if !touched.contains(&g.gid) && g.members == 8 {
                untouched += 1;
                assert!(
                    g.mask_hit_rate >= 0.99,
                    "group {:?} lost its warm mask cache through the merges: {}",
                    g.gid,
                    g.mask_hit_rate
                );
            }
        }
        assert!(untouched >= 3, "the assertion must not be vacuous");

        // And the whole pass replays byte-identically.
        let (_, _, _, _, _, twin) = run();
        assert_eq!(report.actions, twin.actions, "same seed, same merges");
        assert_eq!(report.phase_lookups, twin.phase_lookups);
    }

    #[test]
    fn scenarios_replay_deterministically() {
        let run = || {
            let (mut cluster, paths) = cluster();
            let mut controller = GroupController::new(ControllerConfig::default());
            drive_curve(
                &mut cluster,
                Some(&mut controller),
                &LoadCurve::diurnal_flash(),
                &paths,
                &ScenarioSpec::default(),
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.actions, b.actions, "same seed, same control decisions");
        assert_eq!(a.lookups, b.lookups);
        assert_eq!(a.phase_lookups, b.phase_lookups);
    }

    #[test]
    fn without_a_controller_the_shape_never_moves() {
        let (mut cluster, paths) = cluster();
        let epoch = cluster.membership_epoch();
        let report = drive_curve(
            &mut cluster,
            None,
            &LoadCurve::diurnal_flash(),
            &paths,
            &ScenarioSpec::default(),
        );
        assert!(report.actions.is_empty());
        assert_eq!(report.epoch_bumps, 0);
        assert_eq!(cluster.membership_epoch(), epoch);
        assert_eq!(report.lookups, report.found);
    }
}
