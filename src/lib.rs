//! # G-HBA — Group-based Hierarchical Bloom filter Arrays
//!
//! A full Rust reproduction of *Scalable and Adaptive Metadata Management
//! in Ultra Large-scale File Systems* (Hua, Zhu, Jiang, Feng & Tian,
//! ICDCS 2008): scalable, adaptive, decentralized metadata lookup for
//! clusters of metadata servers, built on grouped Bloom filter arrays.
//!
//! This facade crate re-exports the whole workspace and adds the
//! trace-replay driver used by the examples and benchmarks:
//!
//! * [`bloom`] — Bloom filter toolkit (plain/counting filters, arrays,
//!   LRU arrays, set algebra, false-rate analysis);
//! * [`simnet`] — deterministic simulation substrate (virtual clock,
//!   seeded RNG, latency and memory models);
//! * [`trace`] — synthetic INS/RES/HP workloads with TIF intensification;
//! * [`core`] — the G-HBA cluster itself;
//! * [`baselines`] — HBA, BFA, and hash-placement comparators;
//! * [`analysis`] — the paper's closed-form models (Equations 1–4,
//!   optimal group size, Table 5);
//! * [`cluster`] — the threaded message-passing prototype;
//! * [`net`] — the multi-process networked deployment (binary wire
//!   protocol, rendezvous/replica/loadgen binaries, loopback harness);
//! * [`replay`] — drive any scheme with any workload;
//! * [`scenario`] — time-varying load curves on the simnet event queue,
//!   with the online group controller ticking in-band.
//!
//! ## Quick start
//!
//! ```
//! use ghba::core::{GhbaCluster, GhbaConfig};
//! use ghba::trace::{WorkloadGenerator, WorkloadProfile};
//!
//! let config = GhbaConfig::default().with_filter_capacity(5_000).with_seed(1);
//! let mut cluster = GhbaCluster::with_servers(config, 12);
//!
//! // Populate and replay a slice of an HP-like workload.
//! let generator = WorkloadGenerator::new(WorkloadProfile::hp(), 1);
//! for i in 0..1_000 {
//!     cluster.create_file(&generator.path_of(i));
//! }
//! cluster.flush_all_updates();
//! let report = ghba::replay::replay(&mut cluster, generator.take(2_000));
//! assert_eq!(report.operations, 2_000);
//! ```

pub use ghba_analysis as analysis;
pub use ghba_baselines as baselines;
pub use ghba_bloom as bloom;
pub use ghba_cluster as cluster;
pub use ghba_core as core;
pub use ghba_net as net;
pub use ghba_simnet as simnet;
pub use ghba_trace as trace;

pub mod replay;
pub mod scenario;
