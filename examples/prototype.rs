//! The threaded prototype: one OS thread per metadata server, std mpsc
//! channels as the network, real wall-clock latencies and message counts
//! (the paper's Figures 14–15 testbed, scaled to a laptop).
//!
//! Run with: `cargo run --release --example prototype`

use ghba::cluster::{PrototypeCluster, Scheme};
use ghba::core::GhbaConfig;

fn main() {
    let config = GhbaConfig::default()
        .with_filter_capacity(5_000)
        .with_update_threshold(128)
        .with_seed(3);

    let mut cluster = PrototypeCluster::spawn(Scheme::Ghba { max_group_size: 4 }, config, 16);
    println!("spawned {} MDS threads", cluster.node_count());

    // Create files through the live message fabric.
    let mut homes = Vec::new();
    for i in 0..200 {
        homes.push(cluster.create(&format!("/live/f{i}")));
    }
    cluster.flush_updates();

    // Query through random entries; every lookup is a real message
    // exchange between threads.
    let mut total = std::time::Duration::ZERO;
    let mut by_level = std::collections::BTreeMap::new();
    for (i, &home) in homes.iter().enumerate() {
        let reply = cluster.lookup(&format!("/live/f{i}"));
        assert_eq!(reply.home, Some(home));
        total += reply.latency;
        *by_level.entry(reply.level.to_string()).or_insert(0u32) += 1;
    }
    println!(
        "200 lookups: mean wall latency {:?}, levels {:?}",
        total / 200,
        by_level
    );

    // Membership change costs, measured in real messages on the fabric.
    cluster.reset_message_counter();
    let (id, messages) = cluster.add_node();
    println!("added {id}: {messages} messages (G-HBA grouped protocol)");

    // Fail-stop a node: service continues at degraded coverage (§4.5).
    let victim = cluster.node_ids()[2];
    let messages = cluster.fail_node(victim);
    println!("failed {victim}: {messages} cleanup messages");
    let survivors = (0..200)
        .filter(|i| cluster.lookup(&format!("/live/f{i}")).home.is_some())
        .count();
    println!("{survivors}/200 files still served after the failure");

    cluster.shutdown();
    println!("clean shutdown");
}
