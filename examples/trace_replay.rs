//! Replay an intensified HP-like workload against G-HBA and HBA side by
//! side — a miniature of the paper's Figure 8 experiment.
//!
//! Run with: `cargo run --release --example trace_replay`

use ghba::baselines::HbaCluster;
use ghba::core::{GhbaCluster, GhbaConfig, MetadataService};
use ghba::replay::{populate, replay};
use ghba::trace::{intensify, WorkloadProfile};

fn main() {
    let profile = WorkloadProfile::hp();
    let tif = 10;
    let population = 5_000usize;
    let operations = 20_000usize;

    // Memory pressure: room for local structures plus a handful of
    // replicas — HBA's 29 replicas will spill, G-HBA's ~4 will not.
    let config = GhbaConfig::default()
        .with_max_group_size(6)
        .with_filter_capacity(1_000)
        .with_bits_per_file(12.0)
        .with_update_threshold(64)
        .with_memory_per_mds(220 * 1024)
        .with_seed(7);

    println!(
        "replaying {} ops of {} (TIF={tif}) over 30 servers…\n",
        operations, profile.name
    );

    let mut ghba_cluster = GhbaCluster::with_servers(config.clone(), 30);
    let mut hba_cluster = HbaCluster::with_servers(config, 30);

    for (name, service) in [
        ("G-HBA", &mut ghba_cluster as &mut dyn MetadataService),
        ("HBA", &mut hba_cluster as &mut dyn MetadataService),
    ] {
        let stream = intensify(&profile, tif, 7);
        // Populate the hot head of every subtrace's namespace.
        let paths: Vec<String> = stream
            .hot_paths(population as u64 / u64::from(tif))
            .collect();
        populate(service, paths.iter().cloned());
        let report = replay(service, stream.take(operations));
        let [l1, l2, l3, _] = report.levels.cumulative_percentages();
        println!("{name:6}: mean latency {:>9.3?}", report.mean_latency());
        println!(
            "        levels ≤L1 {l1:.1}% ≤L2 {l2:.1}% ≤L3 {l3:.1}%  \
             found {} / missing {}  messages {}",
            report.found, report.missing, report.messages
        );
        println!(
            "        per-MDS filter memory: {} KiB\n",
            service.filter_memory_per_mds() / 1024
        );
    }
    println!("Under memory pressure the full-mirror HBA pays disk accesses for");
    println!("spilled replicas, while G-HBA's grouped replicas stay resident.");
}
