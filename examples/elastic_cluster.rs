//! Elastic membership: grow and shrink a G-HBA cluster under load, watch
//! groups split and merge, and count the light-weight replica migrations
//! (the Figure 11 property).
//!
//! Run with: `cargo run --example elastic_cluster`

use ghba::core::{GhbaCluster, GhbaConfig};

fn main() {
    let config = GhbaConfig::default()
        .with_max_group_size(4)
        .with_filter_capacity(5_000)
        .with_seed(11);
    let mut cluster = GhbaCluster::with_servers(config, 8);

    for i in 0..300 {
        cluster.create_file(&format!("/workload/dir{}/file{i}", i % 17));
    }
    cluster.flush_all_updates();
    println!(
        "start: {} servers, groups {:?}, {} files\n",
        cluster.server_count(),
        cluster.group_sizes(),
        cluster.total_files()
    );

    // Grow by five servers: joins use light-weight migration; a join into
    // a full group triggers a split.
    for _ in 0..5 {
        let (id, report) = cluster.add_mds_reported();
        println!(
            "join  {id}: migrated {:>3} replicas, {:>3} messages{}{} → groups {:?}",
            report.migrated_replicas,
            report.messages,
            if report.split { ", SPLIT" } else { "" },
            if report.merged { ", MERGE" } else { "" },
            cluster.group_sizes(),
        );
        cluster.check_invariants().expect("invariants after join");
    }

    // Shrink by four: files re-home, groups merge when two fit in one.
    for _ in 0..4 {
        let victim = cluster.server_ids()[1];
        let report = cluster.remove_mds(victim).expect("removable");
        println!(
            "leave {victim}: migrated {:>3} replicas, re-homed {:>3} files, {:>3} messages{} → groups {:?}",
            report.migrated_replicas,
            report.rehomed_files,
            report.messages,
            if report.merged { ", MERGE" } else { "" },
            cluster.group_sizes(),
        );
        cluster.check_invariants().expect("invariants after leave");
    }

    // No file was lost through all of that.
    let mut found = 0;
    for i in 0..300 {
        if cluster
            .lookup(&format!("/workload/dir{}/file{i}", i % 17))
            .found()
        {
            found += 1;
        }
    }
    println!(
        "\nend: {} servers, groups {:?}, {}/300 files still found",
        cluster.server_count(),
        cluster.group_sizes(),
        found
    );
    println!(
        "lifetime: {} replicas migrated, {} reconfig messages, {} splits, {} merges",
        cluster.stats().migrated_replicas,
        cluster.stats().reconfig_messages,
        cluster.stats().splits,
        cluster.stats().merges
    );
}
