//! Quickstart: build a G-HBA metadata cluster, create files, and watch the
//! four-level query hierarchy resolve lookups.
//!
//! Run with: `cargo run --example quickstart`

use ghba::core::{GhbaCluster, GhbaConfig, MdsId};

fn main() {
    // A 12-server cluster with groups of at most 4 (so three groups, each
    // collectively mirroring the whole system).
    let config = GhbaConfig::default()
        .with_max_group_size(4)
        .with_filter_capacity(10_000)
        .with_bits_per_file(16.0)
        .with_seed(42);
    let mut cluster = GhbaCluster::with_servers(config, 12);
    println!(
        "cluster: {} servers in {} groups {:?}",
        cluster.server_count(),
        cluster.group_count(),
        cluster.group_sizes()
    );

    // Create some metadata; homes are assigned randomly, as in the paper.
    let paths = [
        "/home/alice/thesis/chapter1.tex",
        "/home/alice/thesis/chapter2.tex",
        "/var/log/mds/trace-2008-01-01.log",
        "/data/physics/run-0042/events.dat",
    ];
    for path in paths {
        let home = cluster.create_file(path);
        println!("created {path} at {home}");
    }

    // Propagate filter updates so other groups' replicas are fresh.
    cluster.flush_all_updates();

    // Look the files up from a random entry server each time.
    for path in paths {
        let outcome = cluster.lookup(path);
        println!(
            "lookup {path}: home={} level={} latency={:?} messages={}",
            outcome.home.expect("file exists"),
            outcome.level,
            outcome.latency,
            outcome.messages,
        );
    }

    // Repeat one lookup from a fixed entry: the second trip hits the
    // entry's LRU Bloom filter array (L1).
    let entry = MdsId(0);
    let first = cluster.lookup_from(entry, paths[0]);
    let second = cluster.lookup_from(entry, paths[0]);
    println!(
        "repeat from {entry}: first at {}, second at {} ({:?} → {:?})",
        first.level, second.level, first.latency, second.latency
    );

    // A miss is established only after an authoritative L4 sweep.
    let miss = cluster.lookup("/no/such/file");
    println!(
        "miss: level={} messages={} (authoritative system sweep)",
        miss.level, miss.messages
    );

    // Per-level statistics (the Figure 13 quantities).
    let stats = cluster.stats();
    let [l1, l2, l3, l4] = stats.levels.cumulative_percentages();
    println!("served: ≤L1 {l1:.0}%, ≤L2 {l2:.0}%, ≤L3 {l3:.0}%, ≤L4 {l4:.0}%");
    println!("invariants: {:?}", cluster.check_invariants());
}
