//! The per-MDS memory overhead model behind Table 5.
//!
//! Table 5 normalizes every scheme's per-server Bloom filter memory to a
//! pure BFA with 8 bits/file (BFA8). Reverse-engineering the published
//! numbers pins the model down exactly:
//!
//! * **BFA-r**: `N` filters (own + N−1 replicas) at `r` bits/file;
//! * **HBA**: BFA8 plus an LRU allowance of `10⁻⁵·N` of the base
//!   (1.0002 at N = 20 … 1.0010 at N = 100);
//! * **G-HBA**: `θ + 1 = (N−M)/M + 1` filters at the *same* 8 bits/file,
//!   plus the same LRU allowance, with `M` at the Figure 7 optimum for
//!   each `N` — e.g. N = 100, M = 9 gives
//!   `(91/9 + 1)/100 + 0.0010 = 0.1121`, the paper's value to four
//!   decimals.

/// Parameters of the Table 5 comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModel {
    /// Files per metadata server (scales absolute numbers only; the
    /// normalized table is invariant to it).
    pub files_per_mds: u64,
    /// LRU allowance as a fraction of the BFA8 base *per server in the
    /// system* (the paper's 10⁻⁵·N growth).
    pub lru_fraction_per_server: f64,
    /// IDBFA bytes per server (G-HBA only; negligible by design).
    pub idbfa_bytes: u64,
    /// G-HBA's bits-per-file ratio (8 in Table 5, matching BFA8).
    pub ghba_bits_per_file: f64,
}

impl Default for MemoryModel {
    fn default() -> Self {
        MemoryModel {
            files_per_mds: 1_000_000,
            lru_fraction_per_server: 1e-5,
            idbfa_bytes: 1_024,
            ghba_bits_per_file: 8.0,
        }
    }
}

impl MemoryModel {
    /// The Figure 7 optimal group size the paper's Table 5 assumes for a
    /// given `N` (M = 5, 6, 7, 8, 9 at N = 20, 40, 60, 80, 100).
    #[must_use]
    pub fn paper_group_size(n: usize) -> usize {
        (4 + n / 20).clamp(2, 20)
    }

    fn filter_bits(&self, bits_per_file: f64) -> f64 {
        self.files_per_mds as f64 * bits_per_file
    }

    /// Absolute per-MDS bits for a pure BFA at `bits_per_file`.
    #[must_use]
    pub fn bfa_bits(&self, n: usize, bits_per_file: f64) -> f64 {
        n as f64 * self.filter_bits(bits_per_file)
    }

    /// Absolute per-MDS bits for HBA (BFA8 + the LRU array allowance).
    #[must_use]
    pub fn hba_bits(&self, n: usize) -> f64 {
        let base = self.bfa_bits(n, 8.0);
        base * (1.0 + self.lru_fraction_per_server * n as f64)
    }

    /// Absolute per-MDS bits for G-HBA at group size `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    #[must_use]
    pub fn ghba_bits(&self, n: usize, m: usize) -> f64 {
        assert!(m > 0, "group size must be positive");
        let theta = if m >= n {
            0.0
        } else {
            (n - m) as f64 / m as f64
        };
        let filters = (theta + 1.0) * self.filter_bits(self.ghba_bits_per_file);
        let lru = self.bfa_bits(n, 8.0) * self.lru_fraction_per_server * n as f64;
        filters + lru + self.idbfa_bytes as f64 * 8.0
    }

    /// One Table 5 row: `(BFA8, BFA16, HBA, G-HBA)` per-MDS memory
    /// normalized to BFA8, with `M` at the paper's per-`N` optimum.
    #[must_use]
    pub fn table5_row(&self, n: usize) -> [f64; 4] {
        let base = self.bfa_bits(n, 8.0);
        [
            1.0,
            self.bfa_bits(n, 16.0) / base,
            self.hba_bits(n) / base,
            self.ghba_bits(n, Self::paper_group_size(n)) / base,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The published Table 5, verbatim.
    const PAPER: [(usize, f64, f64); 5] = [
        (20, 1.0002, 0.2002),
        (40, 1.0004, 0.1670),
        (60, 1.0006, 0.1434),
        (80, 1.0008, 0.1258),
        (100, 1.0010, 0.1121),
    ];

    #[test]
    fn bfa16_is_exactly_double() {
        let model = MemoryModel::default();
        for n in [20, 60, 100] {
            let [b8, b16, _, _] = model.table5_row(n);
            assert_eq!(b8, 1.0);
            assert!((b16 - 2.0).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn hba_column_matches_paper_to_four_decimals() {
        let model = MemoryModel::default();
        for (n, hba_expected, _) in PAPER {
            let [_, _, hba, _] = model.table5_row(n);
            assert!(
                (hba - hba_expected).abs() < 5e-5,
                "n={n}: {hba} vs {hba_expected}"
            );
        }
    }

    #[test]
    fn ghba_column_matches_paper_to_three_decimals() {
        let model = MemoryModel::default();
        for (n, _, ghba_expected) in PAPER {
            let [_, _, _, ghba] = model.table5_row(n);
            assert!(
                (ghba - ghba_expected).abs() < 2e-3,
                "n={n}: {ghba} vs {ghba_expected}"
            );
        }
    }

    #[test]
    fn paper_group_sizes() {
        assert_eq!(MemoryModel::paper_group_size(20), 5);
        assert_eq!(MemoryModel::paper_group_size(40), 6);
        assert_eq!(MemoryModel::paper_group_size(60), 7);
        assert_eq!(MemoryModel::paper_group_size(80), 8);
        assert_eq!(MemoryModel::paper_group_size(100), 9);
    }

    #[test]
    fn ghba_overhead_decreases_with_n() {
        let model = MemoryModel::default();
        let rows: Vec<f64> = PAPER
            .iter()
            .map(|&(n, _, _)| model.table5_row(n)[3])
            .collect();
        for pair in rows.windows(2) {
            assert!(pair[1] < pair[0], "must fall with N: {rows:?}");
        }
    }

    #[test]
    fn ghba_beats_hba_by_5x_or_more_at_scale() {
        let model = MemoryModel::default();
        let [_, _, hba, ghba] = model.table5_row(100);
        assert!(hba / ghba > 5.0, "hba={hba} ghba={ghba}");
    }

    #[test]
    fn single_group_degenerates_to_own_filter() {
        let model = MemoryModel::default();
        let bits = model.ghba_bits(10, 10);
        assert!(bits < model.bfa_bits(10, 8.0) * 0.3);
    }
}
