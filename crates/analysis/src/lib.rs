//! Closed-form models from the G-HBA paper.
//!
//! * [`eq`] — Equations 2–4: space overhead, expected operation latency,
//!   and the normalized throughput Γ.
//! * [`optimal`] — the unimodal Γ analysis of Figures 6–7 and the
//!   optimal group size `M*`.
//! * [`memory`] — the Table 5 per-MDS memory overhead comparison
//!   (BFA8 / BFA16 / HBA / G-HBA).
//! * False-rate formulas, including Equation 1, live in
//!   [`ghba_bloom::analysis`] and are re-exported as [`falserate`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod eq;
pub mod memory;
pub mod optimal;

/// False-positive-rate analysis (Equation 1 and the standard formulas),
/// re-exported from the Bloom filter substrate.
pub mod falserate {
    pub use ghba_bloom::analysis::{
        array_ambiguity, intersection_tightness, optimal_fpp, optimal_hash_count,
        segment_false_hit, staleness_rates, standard_fpp, union_fpp,
    };
}

pub use eq::{normalized_throughput, operation_latency, space_overhead, LatencyTerms};
pub use memory::MemoryModel;
pub use optimal::AnalyticModel;
