//! The optimal-group-size analysis behind Figures 6 and 7.
//!
//! The paper evaluates Γ (Equation 2) "with the aid of simulation
//! results" — hit rates and latencies measured under real memory and load
//! conditions. [`AnalyticModel`] packages the same mechanism in closed
//! form so the N-sweep of Figure 7 does not require hundreds of full
//! simulations:
//!
//! * **small M** is punished by replica *spill*: `θ = (N−M)/M` filters per
//!   server outgrow the RAM budget and L2 probes hit disk;
//! * **large M** is punished by *multicast work and queueing*: more
//!   queries escalate past L2 (the entry server covers `θ+1` of `N`
//!   homes) and every escalation fans out across `M − 1` members, driving
//!   server utilization — modelled with an M/M/1-style `1/(1 − ρ)`
//!   inflation, the "queuing" the paper folds into `U(laten.)`.
//!
//! The Γ curve is therefore unimodal, with the optimum where the two
//! penalties balance — the paper's M ≈ 5–6 at N = 30 and ≈ 9 at N = 100.

use core::time::Duration;

use ghba_simnet::LatencyModel;

use crate::eq::{normalized_throughput, operation_latency, space_overhead, LatencyTerms};

/// Closed-form inputs for the Γ sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticModel {
    /// Total servers `N`.
    pub n: usize,
    /// L1 unique hit rate (workload temporal locality).
    pub p_lru: f64,
    /// Replica filters that fit in one server's RAM alongside its own
    /// structures; `θ` beyond this spills to disk.
    pub resident_filter_budget: usize,
    /// Fraction of queries forced past L3 by replica staleness.
    pub stale_escalation: f64,
    /// Aggregate load scale: per-query utilization of one multicast
    /// recipient is `load_scale / N` (a bigger cluster spreads the same
    /// offered load over more servers).
    pub load_scale: f64,
    /// Latency model supplying the probe/multicast/disk costs.
    pub latency: LatencyModel,
}

impl AnalyticModel {
    /// A model calibrated to the paper's operating range for a cluster of
    /// `n` servers and a workload with the given L1 hit rate.
    ///
    /// The RAM budget defaults to `√n` resident replica filters: with the
    /// global file population growing as the system scales while per-
    /// server RAM stays fixed, each filter shrinks as files spread over
    /// more servers — `√n` is the geometric mean of the fixed-files
    /// (budget ∝ n) and scale-out (budget constant) regimes, and it
    /// reproduces the paper's measured optima (M* ≈ 6 at N = 30, 9 at
    /// N = 100, 14 at N = 200) because the optimum sits at the spill
    /// cliff `M ≥ N/(budget+1)`.
    #[must_use]
    pub fn new(n: usize, p_lru: f64) -> Self {
        AnalyticModel {
            n,
            p_lru,
            resident_filter_budget: (n as f64).sqrt().round() as usize,
            stale_escalation: 0.03,
            load_scale: 14.0,
            latency: LatencyModel::default(),
        }
    }

    /// Replicas per server at group size `m`.
    #[must_use]
    pub fn theta(&self, m: usize) -> f64 {
        space_overhead(self.n, m)
    }

    /// The Equation 4 terms this model predicts at group size `m`.
    #[must_use]
    pub fn terms(&self, m: usize) -> LatencyTerms {
        let theta = self.theta(m);
        let filters = theta + 1.0;
        // L2 resolves queries whose home is among the θ held replicas or
        // the entry server itself.
        let p_l2 = (filters / self.n as f64).min(1.0);
        let spilled = (theta - self.resident_filter_budget as f64).max(0.0);
        let d_l2 = self.latency.dispatch
            + self
                .latency
                .memory_probe
                .mul_f64(filters.min(self.resident_filter_budget as f64 + 1.0))
            + self.latency.disk_access.mul_f64(spilled);
        let d_group = self.latency.multicast_rtt(m.saturating_sub(1)) + d_l2.mul_f64(0.5); // peers probe their shares in parallel
        let d_net = self.latency.multicast_rtt(self.n.saturating_sub(1))
            + self.latency.memory_probe
            + self.latency.disk_access.mul_f64(self.stale_escalation);
        LatencyTerms {
            p_lru: self.p_lru,
            p_l2,
            d_lru: self.latency.memory_probe,
            d_l2,
            d_group,
            d_net: d_net.mul_f64(1.0 / m as f64), // Eq. 4 multiplies by M
        }
    }

    /// Expected operation latency at group size `m`, including the
    /// queueing inflation.
    #[must_use]
    pub fn latency_at(&self, m: usize) -> Duration {
        let terms = self.terms(m);
        let base = operation_latency(&terms, m);
        // Utilization: every L2 miss fans out to M−1 group members (and a
        // stale fraction to the whole system); queueing inflates latency
        // hyperbolically as utilization approaches 1.
        let miss_l1 = 1.0 - terms.p_lru;
        let escalate = miss_l1 * (1.0 - terms.p_l2);
        let fanout =
            escalate * (m.saturating_sub(1)) as f64 + self.stale_escalation * self.n as f64;
        let rho = self.load_scale / self.n as f64 * fanout;
        // M/M/1-style inflation, extended past saturation with the
        // tangent at ρ = 0.9 so overload keeps *increasing* latency
        // instead of capping it (a cap would let Γ rise again at large M).
        let penalty = if rho < 0.9 {
            1.0 / (1.0 - rho)
        } else {
            10.0 + (rho - 0.9) * 100.0
        };
        base.mul_f64(penalty)
    }

    /// Γ (Equation 2) at group size `m`. The space term adds the server's
    /// own filter to the replica share, keeping the metric finite at
    /// `m = n`.
    #[must_use]
    pub fn gamma(&self, m: usize) -> f64 {
        let space = self.theta(m) + 1.0;
        normalized_throughput(self.latency_at(m), space)
    }

    /// Sweeps `m = 1..=max_m`, returning `(m, Γ)` pairs.
    #[must_use]
    pub fn sweep(&self, max_m: usize) -> Vec<(usize, f64)> {
        (1..=max_m.min(self.n))
            .map(|m| (m, self.gamma(m)))
            .collect()
    }

    /// The group size maximizing Γ over `1..=max_m`.
    #[must_use]
    pub fn optimal_m(&self, max_m: usize) -> usize {
        self.sweep(max_m)
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map_or(1, |(m, _)| m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_is_unimodal_in_the_operating_range() {
        let model = AnalyticModel::new(30, 0.65);
        let sweep = model.sweep(15);
        let opt = model.optimal_m(15);
        // Strictly rising before the optimum, strictly falling after —
        // allowing flat plateaus of one step.
        for window in sweep.windows(2) {
            let (m, g) = window[0];
            let (_, g_next) = window[1];
            if m + 1 < opt {
                assert!(g_next >= g * 0.999, "dip before optimum at m={m}");
            }
        }
        let after: Vec<f64> = sweep
            .iter()
            .filter(|(m, _)| *m >= opt)
            .map(|&(_, g)| g)
            .collect();
        assert!(
            after.windows(2).all(|w| w[1] <= w[0] * 1.001),
            "rise after optimum"
        );
    }

    #[test]
    fn optimum_matches_paper_at_n30() {
        // Paper: optimal M is 5–6 at N = 30 across HP/INS/RES.
        let model = AnalyticModel::new(30, 0.65);
        let opt = model.optimal_m(15);
        assert!((4..=8).contains(&opt), "optimal M = {opt}");
    }

    #[test]
    fn optimum_grows_with_n() {
        // Paper Figure 7: optimal M grows (sublinearly) with N.
        let small = AnalyticModel::new(30, 0.65).optimal_m(20);
        let large = AnalyticModel::new(100, 0.65).optimal_m(20);
        assert!(large >= small, "M*({small}) > M*({large})");
    }

    #[test]
    fn m_over_n_ratio_falls_with_n() {
        // Paper Figure 7's secondary axis: M/N drops from ~0.3 to ~0.07.
        let r30 = AnalyticModel::new(30, 0.65).optimal_m(25) as f64 / 30.0;
        let r200 = AnalyticModel::new(200, 0.65).optimal_m(25) as f64 / 200.0;
        assert!(r200 < r30, "ratio did not fall: {r30} vs {r200}");
    }

    #[test]
    fn small_m_pays_spill_penalty() {
        let model = AnalyticModel::new(60, 0.65);
        // θ(1) = 59 replicas on one server blows any RAM budget.
        assert!(model.latency_at(1) > model.latency_at(8) * 10);
    }

    #[test]
    fn terms_are_probabilities() {
        let model = AnalyticModel::new(100, 0.7);
        for m in 1..=20 {
            let t = model.terms(m);
            assert!((0.0..=1.0).contains(&t.p_l2), "m={m}");
        }
    }
}
