//! Literal implementations of the paper's Equations 2–4.

use core::time::Duration;

/// Equation 3: per-MDS replica storage overhead `U(space) = (N − M)/M` —
/// the number of Bloom filter replicas each server holds.
///
/// Returns 0 when `m >= n` (one group holds everything locally).
#[must_use]
pub fn space_overhead(n: usize, m: usize) -> f64 {
    assert!(m > 0, "group size must be positive");
    if m >= n {
        return 0.0;
    }
    (n - m) as f64 / m as f64
}

/// The latency terms of Equation 4, measured or modelled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyTerms {
    /// `P_LRU`: unique hit rate in the LRU Bloom filters.
    pub p_lru: f64,
    /// `P_L2`: unique hit rate in the 2nd-level Bloom filters.
    pub p_l2: f64,
    /// `D_LRU`: latency of the LRU level.
    pub d_lru: Duration,
    /// `D_L2`: latency of the 2nd level.
    pub d_l2: Duration,
    /// `D_group`: latency of one group multicast round.
    pub d_group: Duration,
    /// `D_net`: latency across the entire multicast network.
    pub d_net: Duration,
}

/// Equation 4: the expected operation latency
///
/// `U = D_LRU + (1−P_LRU)·D_L2 + (1−P_LRU)(1−P_L2/M)·D_group
///    + (1−P_LRU)(1−P_L2/M)·M·D_net`
///
/// # Panics
///
/// Panics if `m == 0` or a probability is outside `[0, 1]`.
#[must_use]
pub fn operation_latency(terms: &LatencyTerms, m: usize) -> Duration {
    assert!(m > 0, "group size must be positive");
    assert!((0.0..=1.0).contains(&terms.p_lru), "P_LRU out of range");
    assert!((0.0..=1.0).contains(&terms.p_l2), "P_L2 out of range");
    let miss_l1 = 1.0 - terms.p_lru;
    let escalate = miss_l1 * (1.0 - terms.p_l2 / m as f64);
    terms.d_lru
        + terms.d_l2.mul_f64(miss_l1)
        + terms.d_group.mul_f64(escalate)
        + terms.d_net.mul_f64(escalate * m as f64)
}

/// Equation 2: the normalized throughput
/// `Γ = U(throughput)/U(space) = 1/(U(latency) · U(space))`.
///
/// `u_space` of zero (all-local) is treated as 1 own-filter unit so the
/// metric stays finite; latency of zero yields infinity.
#[must_use]
pub fn normalized_throughput(u_latency: Duration, u_space: f64) -> f64 {
    let space = u_space.max(1.0);
    let secs = u_latency.as_secs_f64();
    if secs == 0.0 {
        return f64::INFINITY;
    }
    1.0 / (secs * space)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_overhead_matches_paper_examples() {
        // N=30, M=6 → 4 replicas per MDS.
        assert_eq!(space_overhead(30, 6), 4.0);
        // N=100, M=9 → ~10.1 replicas.
        assert!((space_overhead(100, 9) - 91.0 / 9.0).abs() < 1e-9);
        assert_eq!(space_overhead(5, 10), 0.0);
    }

    #[test]
    fn latency_collapses_when_lru_absorbs_everything() {
        let terms = LatencyTerms {
            p_lru: 1.0,
            p_l2: 0.5,
            d_lru: Duration::from_micros(2),
            d_l2: Duration::from_micros(10),
            d_group: Duration::from_micros(500),
            d_net: Duration::from_micros(1000),
        };
        assert_eq!(operation_latency(&terms, 6), Duration::from_micros(2));
    }

    #[test]
    fn latency_grows_with_group_size_at_fixed_rates() {
        let terms = LatencyTerms {
            p_lru: 0.6,
            p_l2: 0.3,
            d_lru: Duration::from_micros(2),
            d_l2: Duration::from_micros(10),
            d_group: Duration::from_micros(500),
            d_net: Duration::from_micros(1000),
        };
        let small = operation_latency(&terms, 2);
        let large = operation_latency(&terms, 12);
        assert!(large > small, "{small:?} vs {large:?}");
    }

    #[test]
    fn lower_hit_rates_mean_higher_latency() {
        let base = LatencyTerms {
            p_lru: 0.8,
            p_l2: 0.5,
            d_lru: Duration::from_micros(2),
            d_l2: Duration::from_micros(10),
            d_group: Duration::from_micros(500),
            d_net: Duration::from_micros(1000),
        };
        let degraded = LatencyTerms {
            p_lru: 0.4,
            p_l2: 0.2,
            ..base
        };
        assert!(operation_latency(&degraded, 6) > operation_latency(&base, 6));
    }

    #[test]
    fn gamma_prefers_fast_and_small() {
        let fast_small = normalized_throughput(Duration::from_millis(1), 4.0);
        let slow_small = normalized_throughput(Duration::from_millis(10), 4.0);
        let fast_big = normalized_throughput(Duration::from_millis(1), 16.0);
        assert!(fast_small > slow_small);
        assert!(fast_small > fast_big);
    }

    #[test]
    fn gamma_edge_cases() {
        assert!(normalized_throughput(Duration::ZERO, 4.0).is_infinite());
        // Space below one own-filter unit is floored.
        assert_eq!(
            normalized_throughput(Duration::from_millis(1), 0.0),
            normalized_throughput(Duration::from_millis(1), 1.0)
        );
    }
}
