//! End-to-end tests of the threaded prototype: real threads, real
//! channels, real message counts.

use ghba_cluster::{PrototypeCluster, Scheme};
use ghba_core::{GhbaConfig, MdsId, QueryLevel};

fn config() -> GhbaConfig {
    GhbaConfig::default()
        .with_filter_capacity(2_000)
        .with_bits_per_file(16.0)
        .with_seed(31)
}

fn ghba(n: usize) -> PrototypeCluster {
    PrototypeCluster::spawn(Scheme::Ghba { max_group_size: 4 }, config(), n)
}

#[test]
fn create_then_lookup_roundtrip() {
    let mut cluster = ghba(8);
    let home = cluster.create("/proto/a");
    cluster.flush_updates();
    let reply = cluster.lookup("/proto/a");
    assert_eq!(reply.home, Some(home));
    assert!(reply.latency > std::time::Duration::ZERO);
    cluster.shutdown();
}

#[test]
fn many_files_all_findable() {
    let mut cluster = ghba(12);
    let mut homes = Vec::new();
    for i in 0..120 {
        homes.push(cluster.create(&format!("/many/f{i}")));
    }
    cluster.flush_updates();
    for (i, &home) in homes.iter().enumerate() {
        let reply = cluster.lookup(&format!("/many/f{i}"));
        assert_eq!(reply.home, Some(home), "file {i}");
    }
    cluster.shutdown();
}

#[test]
fn nonexistent_is_a_clean_miss() {
    let mut cluster = ghba(6);
    let reply = cluster.lookup("/ghost/file");
    assert_eq!(reply.home, None);
    assert_eq!(reply.level, QueryLevel::Nonexistent);
    // The miss must have swept the system.
    assert!(reply.messages >= 2 * 5);
    cluster.shutdown();
}

#[test]
fn repeated_lookup_from_same_entry_hits_l1() {
    let mut cluster = ghba(8);
    cluster.create("/hot/file");
    cluster.flush_updates();
    let entry = MdsId(0);
    let first = cluster.lookup_from(entry, "/hot/file");
    assert!(first.home.is_some());
    let second = cluster.lookup_from(entry, "/hot/file");
    assert_eq!(second.level, QueryLevel::L1Lru);
    cluster.shutdown();
}

#[test]
fn fresh_files_resolve_via_l4_until_flushed() {
    // Huge threshold: no automatic updates, so remote replicas stay stale.
    let mut cluster = PrototypeCluster::spawn(
        Scheme::Ghba { max_group_size: 3 },
        config().with_update_threshold(1_000_000),
        9,
    );
    let home = cluster.create_at("/stale/file", MdsId(0));
    // An entry in a different group can only find it via L4 (or L3 if the
    // home is a group-mate).
    let reply = cluster.lookup_from(MdsId(8), "/stale/file");
    assert_eq!(reply.home, Some(home));
    assert!(
        reply.level == QueryLevel::L4Global || reply.level == QueryLevel::L3Group,
        "level {:?}",
        reply.level
    );
    cluster.shutdown();
}

#[test]
fn ghba_insertion_messages_far_below_hba() {
    let mut ghba = PrototypeCluster::spawn(Scheme::Ghba { max_group_size: 7 }, config(), 30);
    let mut hba = PrototypeCluster::spawn(Scheme::Hba, config(), 30);
    let (_, ghba_msgs) = ghba.add_node();
    let (_, hba_msgs) = hba.add_node();
    // HBA: 2N transfer messages. G-HBA: one install per foreign group plus
    // light-weight rebalancing — several times fewer.
    assert_eq!(hba_msgs, 60);
    assert!(
        ghba_msgs * 2 < hba_msgs,
        "ghba {ghba_msgs} vs hba {hba_msgs}"
    );
    ghba.shutdown();
    hba.shutdown();
}

#[test]
fn hba_lookup_is_local_after_flush() {
    let mut cluster = PrototypeCluster::spawn(Scheme::Hba, config(), 8);
    cluster.create("/hba/file");
    cluster.flush_updates();
    let reply = cluster.lookup("/hba/file");
    assert!(reply.home.is_some());
    // Full mirror: resolution needs at most one verify round trip, never
    // a group multicast.
    assert!(reply.messages <= 2, "messages {}", reply.messages);
    cluster.shutdown();
}

#[test]
fn failed_node_leaves_service_available() {
    let mut cluster = ghba(9);
    for i in 0..40 {
        cluster.create(&format!("/avail/f{i}"));
    }
    cluster.flush_updates();
    let victim = MdsId(4);
    cluster.fail_node(victim);
    assert_eq!(cluster.node_count(), 8);
    // Files not homed on the victim are still served.
    let mut found = 0;
    for i in 0..40 {
        if cluster.lookup(&format!("/avail/f{i}")).home.is_some() {
            found += 1;
        }
    }
    assert!(found >= 25, "only {found}/40 files survive a failure");
    cluster.shutdown();
}

#[test]
fn remove_deletes_file() {
    let mut cluster = ghba(6);
    cluster.create("/del/me");
    cluster.flush_updates();
    assert!(cluster.remove("/del/me"));
    cluster.flush_updates();
    let reply = cluster.lookup("/del/me");
    assert_eq!(reply.home, None);
    assert!(!cluster.remove("/del/me"));
    cluster.shutdown();
}

#[test]
fn growth_to_double_size_stays_consistent() {
    let mut cluster = ghba(6);
    for i in 0..30 {
        cluster.create(&format!("/grow/f{i}"));
    }
    cluster.flush_updates();
    for _ in 0..6 {
        cluster.add_node();
    }
    assert_eq!(cluster.node_count(), 12);
    cluster.flush_updates();
    for i in 0..30 {
        let reply = cluster.lookup(&format!("/grow/f{i}"));
        assert!(reply.home.is_some(), "lost /grow/f{i} after growth");
    }
    cluster.shutdown();
}

/// Mixed batches stream: removes and renames no longer barrier the
/// dispatch loop, yet ops that touch a pending write's path still
/// observe it (the hazard stall), and unrelated ops interleaved between
/// writes resolve correctly.
#[test]
fn pipelined_writes_stream_through_mixed_batches() {
    use ghba_cluster::BatchOutcome;
    use ghba_core::OpBatch;

    let mut cluster = ghba(8);
    let mut setup = OpBatch::new();
    for i in 0..24 {
        setup.push_create(format!("/pipe/f{i}"));
    }
    cluster.execute(&setup);
    cluster.flush_updates();

    // Writes on some paths, lookups on *other* paths interleaved (these
    // stream past the in-flight removes), plus same-path reads that must
    // wait for their write.
    let mut batch = OpBatch::new();
    batch.push_remove("/pipe/f0"); // op 0
    batch.push_lookup("/pipe/f10"); // op 1: unrelated, streams
    batch.push_rename("/pipe/f1", "/pipe/moved"); // op 2
    batch.push_lookup("/pipe/f11"); // op 3: unrelated, streams
    batch.push_lookup("/pipe/f0"); // op 4: must see op 0's remove
    batch.push_lookup("/pipe/moved"); // op 5: must see op 2's create
    batch.push_remove("/pipe/ghost"); // op 6: remove of an absent path
    let outcomes = cluster.execute(&batch);

    assert_eq!(outcomes[0], BatchOutcome::Removed { removed: true });
    let BatchOutcome::Lookup(reply) = &outcomes[1] else {
        panic!("op 1 is a lookup");
    };
    assert!(reply.home.is_some(), "unrelated lookup resolves");
    let BatchOutcome::Renamed { removed, new_home } = &outcomes[2] else {
        panic!("op 2 is a rename");
    };
    assert!(removed);
    assert!(new_home.is_some());
    let BatchOutcome::Lookup(reply) = &outcomes[3] else {
        panic!("op 3 is a lookup");
    };
    assert!(reply.home.is_some(), "unrelated lookup resolves");
    let BatchOutcome::Lookup(reply) = &outcomes[4] else {
        panic!("op 4 is a lookup");
    };
    assert_eq!(reply.home, None, "read-your-remove on the same path");
    let BatchOutcome::Lookup(reply) = &outcomes[5] else {
        panic!("op 5 is a lookup");
    };
    assert_eq!(reply.home, *new_home, "read-your-rename on the target");
    assert_eq!(outcomes[6], BatchOutcome::Removed { removed: false });
    cluster.shutdown();
}

/// A rename whose destination nothing later touches resolves with its
/// continuation create drained only at the batch's end — and the create
/// really happened (the next batch finds the file at the reported home).
#[test]
fn rename_continuation_create_drains_at_batch_end() {
    use ghba_cluster::BatchOutcome;
    use ghba_core::OpBatch;

    let mut cluster = ghba(6);
    let mut setup = OpBatch::new();
    setup.push_create("/cont/src");
    cluster.execute(&setup);
    cluster.flush_updates();

    // No later op touches /cont/dst: the continuation's ack is drained
    // by the end-of-batch sweep, not by a hazard stall.
    let mut batch = OpBatch::new();
    batch.push_rename("/cont/src", "/cont/dst");
    batch.push_lookup("/cont/unrelated");
    let outcomes = cluster.execute(&batch);
    let BatchOutcome::Renamed { removed, new_home } = outcomes[0] else {
        panic!("expected Renamed, got {:?}", outcomes[0]);
    };
    assert!(removed);
    let home = new_home.expect("destination created");
    cluster.flush_updates();
    assert_eq!(cluster.lookup("/cont/dst").home, Some(home));
    assert_eq!(cluster.lookup("/cont/src").home, None);
    cluster.shutdown();
}

/// The op-mailbox drain dispatches its slab passes through the worker
/// pool when the node is configured with multiple workers: a pinned
/// burst above the parallel floor resolves bit-identically to the
/// single-threaded node.
#[test]
fn pooled_mailbox_drain_matches_sequential_node() {
    use ghba_cluster::BatchOutcome;
    use ghba_core::{EntryPolicy, OpBatch};

    let run = |workers: usize| {
        let config = config().with_workers(workers).with_executor(
            ghba_core::ExecutorConfig::default()
                .with_workers(workers)
                .with_min_parallel_batch(8),
        );
        let mut cluster = PrototypeCluster::spawn(Scheme::Ghba { max_group_size: 4 }, config, 8);
        let mut setup = OpBatch::new();
        for i in 0..48 {
            setup.push_create(format!("/pool/f{i}"));
        }
        let homes: Vec<MdsId> = cluster
            .execute(&setup)
            .into_iter()
            .map(|outcome| match outcome {
                BatchOutcome::Created { home } => home,
                other => panic!("expected Created, got {other:?}"),
            })
            .collect();
        cluster.flush_updates();
        let entry = cluster.node_ids()[0];
        let mut burst = OpBatch::new().with_entry(EntryPolicy::Pinned(entry));
        for i in 0..48 {
            burst.push_lookup(format!("/pool/f{i}"));
        }
        let resolved: Vec<Option<MdsId>> = cluster
            .execute(&burst)
            .into_iter()
            .map(|outcome| match outcome {
                BatchOutcome::Lookup(reply) => reply.home,
                other => panic!("expected Lookup, got {other:?}"),
            })
            .collect();
        cluster.shutdown();
        (homes, resolved)
    };
    let (homes_seq, resolved_seq) = run(1);
    let (homes_par, resolved_par) = run(4);
    assert_eq!(homes_seq, homes_par, "creates must agree across workers");
    assert_eq!(
        resolved_seq, resolved_par,
        "lookups must agree across workers"
    );
    for (i, home) in resolved_par.iter().enumerate() {
        assert_eq!(*home, Some(homes_par[i]), "file {i}");
    }
}

#[test]
fn vectored_batch_resolves_through_op_mailbox() {
    use ghba_cluster::BatchOutcome;
    use ghba_core::{EntryPolicy, OpBatch};

    let mut cluster = ghba(8);
    let mut setup = OpBatch::new();
    for i in 0..40 {
        setup.push_create(format!("/op/f{i}"));
    }
    let homes: Vec<MdsId> = cluster
        .execute(&setup)
        .into_iter()
        .map(|outcome| match outcome {
            BatchOutcome::Created { home } => home,
            other => panic!("expected Created, got {other:?}"),
        })
        .collect();
    cluster.flush_updates();

    // Pin every lookup of the burst to one node: all 40 queue in its
    // mailbox and the op-mailbox drain resolves them batched.
    let entry = cluster.node_ids()[0];
    let mut burst = OpBatch::new().with_entry(EntryPolicy::Pinned(entry));
    for i in 0..40 {
        burst.push_lookup(format!("/op/f{i}"));
    }
    for (i, outcome) in cluster.execute(&burst).into_iter().enumerate() {
        match outcome {
            BatchOutcome::Lookup(reply) => {
                assert_eq!(reply.home, Some(homes[i]), "file {i}");
            }
            other => panic!("expected Lookup, got {other:?}"),
        }
    }

    // Rename migrates end to end; the old path dies, the new resolves.
    let mut rename = OpBatch::new();
    rename.push_rename("/op/f0", "/op/renamed");
    rename.push_lookup("/op/renamed");
    rename.push_lookup("/op/f0");
    let outcomes = cluster.execute(&rename);
    let BatchOutcome::Renamed { removed, new_home } = outcomes[0] else {
        panic!("expected Renamed, got {:?}", outcomes[0]);
    };
    assert!(removed);
    match &outcomes[1] {
        BatchOutcome::Lookup(reply) => assert_eq!(reply.home, new_home),
        other => panic!("expected Lookup, got {other:?}"),
    }
    match &outcomes[2] {
        BatchOutcome::Lookup(reply) => assert_eq!(reply.home, None, "old path must miss"),
        other => panic!("expected Lookup, got {other:?}"),
    }
    cluster.shutdown();
}
