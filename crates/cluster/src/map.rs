//! The shared membership map and the reconfiguration planner.
//!
//! Real deployments distribute membership and replica-placement knowledge
//! through IDBFA multicasts; the prototype keeps one authoritative map
//! published through a lock-free [`SnapshotCell`] that every node pins
//! (node hot paths never contend with a reconfiguring runtime), and the
//! runtime counts the messages the distribution *would and does* cost
//! (IDBFA syncs, replica installs, drop notices) on the real channel
//! fabric.

use std::collections::HashMap;
use std::sync::Arc;

use ghba_core::{MdsId, SnapshotCell};

/// Which scheme the prototype cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// G-HBA with the given maximum group size.
    Ghba {
        /// Maximum MDSs per group (`M`).
        max_group_size: usize,
    },
    /// HBA: every node replicates to every other node.
    Hba,
}

/// One group's membership.
#[derive(Debug, Clone, Default)]
pub struct GroupView {
    /// Members in join order.
    pub members: Vec<MdsId>,
    /// origin → member holding that origin's replica.
    pub placement: HashMap<MdsId, MdsId>,
}

impl GroupView {
    fn held_by(&self, member: MdsId) -> usize {
        self.placement.values().filter(|&&h| h == member).count()
    }

    fn lightest(&self) -> Option<MdsId> {
        self.members
            .iter()
            .copied()
            .min_by_key(|&m| (self.held_by(m), m))
    }
}

/// The actions a reconfiguration requires, executed (and counted) by the
/// runtime over the channel fabric.
#[derive(Debug, Clone, Default)]
pub struct Plan {
    /// `(origin, to)`: install a fresh replica of `origin` at `to`.
    pub installs: Vec<(MdsId, MdsId)>,
    /// `(origin, from, to)`: move a replica between group members.
    pub moves: Vec<(MdsId, MdsId, MdsId)>,
    /// `(origin, at)`: drop `origin`'s replica held at `at`.
    pub drops: Vec<(MdsId, MdsId)>,
    /// Nodes that must receive an IDBFA refresh.
    pub idbfa_targets: Vec<MdsId>,
    /// Whether a group split happened.
    pub split: bool,
}

/// The authoritative cluster layout. Cloneable so the runtime can build
/// a successor off to the side and publish it wholesale through the
/// shared [`SnapshotCell`].
#[derive(Debug, Clone)]
pub struct ClusterMap {
    scheme: Scheme,
    groups: Vec<GroupView>,
}

/// Shared handle to the map: nodes pin the current immutable snapshot
/// on their query/update hot paths (lock-free, never blocked by a
/// reconfiguration), the runtime clones-mutates-publishes successors.
pub type SharedMap = Arc<SnapshotCell<ClusterMap>>;

impl ClusterMap {
    /// Creates an empty map for `scheme`.
    #[must_use]
    pub fn new(scheme: Scheme) -> Self {
        ClusterMap {
            scheme,
            groups: Vec::new(),
        }
    }

    /// The scheme in force.
    #[must_use]
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// All member ids, ascending.
    #[must_use]
    pub fn all_members(&self) -> Vec<MdsId> {
        let mut ids: Vec<MdsId> = self
            .groups
            .iter()
            .flat_map(|g| g.members.iter().copied())
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Group sizes in group order.
    #[must_use]
    pub fn group_sizes(&self) -> Vec<usize> {
        self.groups.iter().map(|g| g.members.len()).collect()
    }

    /// The index of the group containing `id`.
    #[must_use]
    pub fn group_index_of(&self, id: MdsId) -> Option<usize> {
        self.groups.iter().position(|g| g.members.contains(&id))
    }

    /// Members of `id`'s group, excluding `id` itself. Under HBA this is
    /// every other node (the "group" is the whole system).
    #[must_use]
    pub fn group_peers_of(&self, id: MdsId) -> Vec<MdsId> {
        match self.scheme {
            Scheme::Hba => self
                .all_members()
                .into_iter()
                .filter(|&m| m != id)
                .collect(),
            Scheme::Ghba { .. } => match self.group_index_of(id) {
                Some(g) => self.groups[g]
                    .members
                    .iter()
                    .copied()
                    .filter(|&m| m != id)
                    .collect(),
                None => Vec::new(),
            },
        }
    }

    /// Replica origins `holder` is responsible for. Under HBA: everyone
    /// else.
    #[must_use]
    pub fn replicas_held_by(&self, holder: MdsId) -> Vec<MdsId> {
        match self.scheme {
            Scheme::Hba => self
                .all_members()
                .into_iter()
                .filter(|&m| m != holder)
                .collect(),
            Scheme::Ghba { .. } => match self.group_index_of(holder) {
                Some(g) => {
                    let mut origins: Vec<MdsId> = self.groups[g]
                        .placement
                        .iter()
                        .filter(|(_, &h)| h == holder)
                        .map(|(&o, _)| o)
                        .collect();
                    origins.sort_unstable();
                    origins
                }
                None => Vec::new(),
            },
        }
    }

    /// For an update from `origin`: the set of nodes to contact — one
    /// holder per foreign group (G-HBA) or every other node (HBA).
    #[must_use]
    pub fn update_targets(&self, origin: MdsId) -> Vec<MdsId> {
        match self.scheme {
            Scheme::Hba => self
                .all_members()
                .into_iter()
                .filter(|&m| m != origin)
                .collect(),
            Scheme::Ghba { .. } => {
                let own = self.group_index_of(origin);
                self.groups
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| Some(*i) != own)
                    .filter_map(|(_, g)| g.placement.get(&origin).copied())
                    .collect()
            }
        }
    }

    /// Adds `id` to the layout and returns the execution plan.
    pub fn add_member(&mut self, id: MdsId) -> Plan {
        match self.scheme {
            Scheme::Hba => self.add_member_hba(id),
            Scheme::Ghba { max_group_size } => self.add_member_ghba(id, max_group_size),
        }
    }

    fn add_member_hba(&mut self, id: MdsId) -> Plan {
        let mut plan = Plan::default();
        if self.groups.is_empty() {
            self.groups.push(GroupView::default());
        }
        let existing = self.all_members();
        // The newcomer pulls every existing replica and everyone installs
        // the newcomer's filter.
        for &other in &existing {
            plan.installs.push((other, id));
            plan.installs.push((id, other));
        }
        self.groups[0].members.push(id);
        plan
    }

    fn add_member_ghba(&mut self, id: MdsId, m: usize) -> Plan {
        let mut plan = Plan::default();
        // Target: smallest group with room, else smallest group (split
        // will follow).
        let target = self
            .groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.members.len() < m)
            .min_by_key(|(i, g)| (g.members.len(), *i))
            .map(|(i, _)| i)
            .or_else(|| {
                self.groups
                    .iter()
                    .enumerate()
                    .min_by_key(|(i, g)| (g.members.len(), *i))
                    .map(|(i, _)| i)
            });
        let gi = match target {
            Some(gi) => gi,
            None => {
                self.groups.push(GroupView::default());
                self.groups.len() - 1
            }
        };
        self.groups[gi].members.push(id);

        // The newcomer's replica goes to every other group's lightest
        // member.
        for (i, group) in self.groups.iter_mut().enumerate() {
            if i == gi {
                continue;
            }
            if let Some(lightest) = group.lightest() {
                group.placement.insert(id, lightest);
                plan.installs.push((id, lightest));
            }
        }

        // Light-weight migration inside the joined group.
        plan.moves.extend(Self::rebalance(&mut self.groups[gi]));
        plan.idbfa_targets = self.groups[gi]
            .members
            .iter()
            .copied()
            .filter(|&p| p != id)
            .collect();

        if self.groups[gi].members.len() > m {
            plan.split = true;
            self.split_group(gi, m, &mut plan);
        }
        self.rebuild_all_coverage(&mut plan);
        plan
    }

    fn split_group(&mut self, gi: usize, m: usize, plan: &mut Plan) {
        let take = m / 2 + 1;
        let split_at = self.groups[gi].members.len() - take;
        let moving: Vec<MdsId> = self.groups[gi].members.split_off(split_at);
        let mut new_group = GroupView {
            members: moving.clone(),
            placement: HashMap::new(),
        };
        // Moving members keep their held replicas (free seeding).
        let old = &mut self.groups[gi];
        let kept: Vec<(MdsId, MdsId)> = old
            .placement
            .iter()
            .filter(|(_, h)| moving.contains(h))
            .map(|(&o, &h)| (o, h))
            .collect();
        for (origin, holder) in kept {
            old.placement.remove(&origin);
            if !new_group.members.contains(&origin) {
                new_group.placement.insert(origin, holder);
            }
        }
        plan.idbfa_targets.extend(new_group.members.iter().copied());
        self.groups.push(new_group);
    }

    /// Removes `id` (fail-stop departure) and returns the plan.
    pub fn remove_member(&mut self, id: MdsId) -> Plan {
        let mut plan = Plan::default();
        match self.scheme {
            Scheme::Hba => {
                for group in &mut self.groups {
                    group.members.retain(|&x| x != id);
                }
                for other in self.all_members() {
                    plan.drops.push((id, other));
                }
            }
            Scheme::Ghba { max_group_size } => {
                if let Some(gi) = self.group_index_of(id) {
                    let group = &mut self.groups[gi];
                    group.members.retain(|&x| x != id);
                    // Orphaned replicas move to the remaining members.
                    let orphans: Vec<MdsId> = group
                        .placement
                        .iter()
                        .filter(|(_, &h)| h == id)
                        .map(|(&o, _)| o)
                        .collect();
                    for origin in orphans {
                        group.placement.remove(&origin);
                        if let Some(lightest) = group.lightest() {
                            group.placement.insert(origin, lightest);
                            plan.installs.push((origin, lightest));
                        }
                    }
                    if group.members.is_empty() {
                        self.groups.remove(gi);
                    }
                }
                // Every group drops the departed node's replica.
                for group in &mut self.groups {
                    if let Some(holder) = group.placement.remove(&id) {
                        plan.drops.push((id, holder));
                    }
                }
                // Merge while two groups fit in one.
                loop {
                    let mut order: Vec<(usize, usize)> = self
                        .groups
                        .iter()
                        .enumerate()
                        .map(|(i, g)| (g.members.len(), i))
                        .collect();
                    order.sort_unstable();
                    if order.len() < 2 || order[0].0 + order[1].0 > max_group_size {
                        break;
                    }
                    let (small, big) = (order[0].1.max(order[1].1), order[0].1.min(order[1].1));
                    let absorbed = self.groups.remove(small);
                    let target = &mut self.groups[big];
                    target.members.extend(absorbed.members.iter().copied());
                    for (origin, holder) in absorbed.placement {
                        if !target.members.contains(&origin)
                            && !target.placement.contains_key(&origin)
                        {
                            target.placement.insert(origin, holder);
                        }
                    }
                    let members = target.members.clone();
                    target.placement.retain(|o, _| !members.contains(o));
                    plan.idbfa_targets.extend(members);
                }
                self.rebuild_all_coverage(&mut plan);
            }
        }
        plan
    }

    /// Ensures every group holds exactly one replica of every outsider.
    fn rebuild_all_coverage(&mut self, plan: &mut Plan) {
        let all = self.all_members();
        for group in &mut self.groups {
            // Drop replicas of servers that are now members or gone.
            let stale: Vec<MdsId> = group
                .placement
                .keys()
                .copied()
                .filter(|o| group.members.contains(o) || !all.contains(o))
                .collect();
            for origin in stale {
                if let Some(holder) = group.placement.remove(&origin) {
                    plan.drops.push((origin, holder));
                }
            }
            // Re-place replicas whose holder left the group.
            let orphaned: Vec<MdsId> = group
                .placement
                .iter()
                .filter(|(_, h)| !group.members.contains(h))
                .map(|(&o, _)| o)
                .collect();
            for origin in orphaned {
                group.placement.remove(&origin);
                if let Some(lightest) = group.lightest() {
                    group.placement.insert(origin, lightest);
                    plan.installs.push((origin, lightest));
                }
            }
            // Add missing coverage.
            for &origin in &all {
                if group.members.contains(&origin) || group.placement.contains_key(&origin) {
                    continue;
                }
                if let Some(lightest) = group.lightest() {
                    group.placement.insert(origin, lightest);
                    plan.installs.push((origin, lightest));
                }
            }
            plan.moves.extend(Self::rebalance(group));
        }
    }

    fn rebalance(group: &mut GroupView) -> Vec<(MdsId, MdsId, MdsId)> {
        let mut moves = Vec::new();
        if group.members.len() < 2 {
            return moves;
        }
        loop {
            let heaviest = group
                .members
                .iter()
                .copied()
                .max_by_key(|&m| (group.held_by(m), m))
                .expect("non-empty");
            let lightest = group
                .members
                .iter()
                .copied()
                .min_by_key(|&m| (group.held_by(m), m))
                .expect("non-empty");
            if group.held_by(heaviest) <= group.held_by(lightest) + 1 {
                return moves;
            }
            let origin = group
                .placement
                .iter()
                .find(|(_, &h)| h == heaviest)
                .map(|(&o, _)| o)
                .expect("heaviest holds something");
            group.placement.insert(origin, lightest);
            moves.push((origin, heaviest, lightest));
        }
    }

    /// Structural self-check: complete coverage, holders are members.
    pub fn check(&self) -> Result<(), String> {
        if matches!(self.scheme, Scheme::Hba) {
            return Ok(());
        }
        let all = self.all_members();
        for (i, group) in self.groups.iter().enumerate() {
            for &origin in &all {
                if group.members.contains(&origin) {
                    if group.placement.contains_key(&origin) {
                        return Err(format!("group {i} holds replica of own member"));
                    }
                    continue;
                }
                match group.placement.get(&origin) {
                    None => return Err(format!("group {i} missing replica of {origin}")),
                    Some(h) if !group.members.contains(h) => {
                        return Err(format!("group {i} replica of {origin} held by outsider"))
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_ghba(n: u16, m: usize) -> ClusterMap {
        let mut map = ClusterMap::new(Scheme::Ghba { max_group_size: m });
        for i in 0..n {
            map.add_member(MdsId(i));
        }
        map
    }

    #[test]
    fn ghba_grouping_and_coverage() {
        for n in [1u16, 4, 7, 12, 23] {
            let map = build_ghba(n, 4);
            assert_eq!(map.all_members().len(), n as usize);
            assert!(map.group_sizes().iter().all(|&s| s <= 4), "n={n}");
            map.check().unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn hba_everyone_holds_everyone() {
        let mut map = ClusterMap::new(Scheme::Hba);
        for i in 0..5 {
            map.add_member(MdsId(i));
        }
        assert_eq!(map.replicas_held_by(MdsId(2)).len(), 4);
        assert_eq!(map.update_targets(MdsId(0)).len(), 4);
        assert_eq!(map.group_peers_of(MdsId(1)).len(), 4);
    }

    #[test]
    fn ghba_update_targets_one_per_foreign_group() {
        let map = build_ghba(12, 4); // 3 groups
        let targets = map.update_targets(MdsId(0));
        assert_eq!(targets.len(), 2);
        let own_group = map.group_index_of(MdsId(0)).unwrap();
        for t in targets {
            assert_ne!(map.group_index_of(t), Some(own_group));
        }
    }

    #[test]
    fn hba_join_plan_is_2n_installs() {
        let mut map = ClusterMap::new(Scheme::Hba);
        for i in 0..10 {
            map.add_member(MdsId(i));
        }
        let plan = map.add_member(MdsId(10));
        assert_eq!(plan.installs.len(), 20);
    }

    #[test]
    fn ghba_join_plan_is_small() {
        let mut map = build_ghba(13, 4);
        let plan = map.add_member(MdsId(13));
        let hba_cost = 2 * 13;
        let ghba_cost = plan.installs.len() + plan.moves.len() + plan.idbfa_targets.len();
        assert!(
            ghba_cost < hba_cost / 2,
            "ghba {ghba_cost} vs hba {hba_cost}"
        );
        map.check().expect("coverage after join");
    }

    #[test]
    fn removal_restores_coverage() {
        let mut map = build_ghba(9, 4);
        let plan = map.remove_member(MdsId(3));
        assert!(!plan.drops.is_empty());
        map.check().expect("coverage after removal");
        assert_eq!(map.all_members().len(), 8);
    }

    #[test]
    fn merges_after_shrink() {
        let mut map = build_ghba(5, 4); // groups 4 + 1
        map.remove_member(MdsId(0));
        // 3 + 1 fit into one group of 4.
        assert_eq!(map.group_sizes(), vec![4]);
        map.check().expect("coverage after merge");
    }

    #[test]
    fn split_on_overflow() {
        let mut map = build_ghba(8, 4); // 4 + 4, both full
        let plan = map.add_member(MdsId(8));
        assert!(plan.split);
        assert_eq!(map.group_sizes().len(), 3);
        map.check().expect("coverage after split");
    }
}
