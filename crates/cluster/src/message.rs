//! Wire messages of the prototype cluster.
//!
//! These are **in-process** messages (channels, not sockets): filters
//! and reply senders travel by value. The real networked deployment in
//! `ghba-net` ports the same vocabulary to a binary wire format — its
//! `GroupProbe`/`ProbeReply` frames carry the fingerprint-only group
//! multicast, `Gossip` carries the membership/epoch announcements, and
//! the flush/drain control flow becomes explicit `Drain`/`DrainAck`
//! barrier frames (see `ghba_net::proto::NetMessage`).

use ghba_bloom::{BloomFilter, FilterDelta, Fingerprint};
use ghba_core::{MdsId, QueryLevel};
use std::sync::mpsc::Sender;

/// A query identifier, unique per coordinating node.
pub type QueryId = u64;

/// The reply a client receives for a lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupReply {
    /// The home MDS, or `None` when the file exists nowhere.
    pub home: Option<MdsId>,
    /// The level that resolved the query.
    pub level: QueryLevel,
    /// Wall-clock latency measured at the coordinating node.
    pub latency: std::time::Duration,
    /// Messages this query put on the network.
    pub messages: u32,
}

/// Messages exchanged between nodes (and from the runtime to nodes).
#[derive(Debug)]
pub enum Message {
    /// Client request: resolve `path`, answer on `reply`.
    ///
    /// Carries the pathname's [`Fingerprint`], computed once at batch
    /// admission (client side): the entry node and every multicast
    /// recipient derive all probe streams from it — the path bytes are
    /// hashed exactly once per operation, cluster-wide.
    Lookup {
        /// Pathname to resolve.
        path: String,
        /// Hash-once digest of the pathname.
        fp: Fingerprint,
        /// Channel for the final answer.
        reply: Sender<LookupReply>,
    },
    /// Client request: create `path` here; answer with this node's id.
    Create {
        /// Pathname to create.
        path: String,
        /// This node's write-sequencing token (see [`Message::Remove`]).
        seq: u64,
        /// Acknowledgement channel.
        reply: Sender<MdsId>,
    },
    /// Client request: remove `path` if homed here.
    ///
    /// Carries a **per-node sequencing token**: the runtime stamps every
    /// write it dispatches to a node with that node's next token, and
    /// the node checks tokens arrive strictly increasing. The channel
    /// fabric already delivers one sender's messages in order, so the
    /// token adds no synchronization — it makes the ordering discipline
    /// the pipelined write path relies on *explicit and checkable*,
    /// which is what lets mixed batches stream through
    /// `PrototypeCluster::execute` without the old cluster-wide
    /// synchronous barriers: a write is ordered before every later op
    /// dispatched to the same node by its token, and cross-node
    /// visibility is awaited only by ops that actually touch the
    /// written path.
    Remove {
        /// Pathname to remove.
        path: String,
        /// This node's write-sequencing token.
        seq: u64,
        /// `true` when the file was here and is now gone.
        reply: Sender<bool>,
    },
    /// Coordinator → group member: probe your replicas and live filter.
    ///
    /// Carries the pathname's [`Fingerprint`] instead of the pathname: the
    /// coordinator hashed the path once at L1, and every multicast
    /// recipient derives its filters' probe streams from the fingerprint by
    /// seed-mixing — no recipient re-hashes the path bytes.
    GroupProbe {
        /// Query id at the coordinator.
        qid: QueryId,
        /// Hash-once digest of the pathname under query.
        fp: Fingerprint,
        /// Who to answer.
        reply_to: MdsId,
    },
    /// Member → coordinator: the origins whose filters matched.
    ProbeReply {
        /// Query id at the coordinator.
        qid: QueryId,
        /// Matching filter origins (replica origins and/or the member
        /// itself).
        positives: Vec<MdsId>,
        /// Responding member.
        from: MdsId,
    },
    /// Coordinator → everyone: authoritative sweep.
    GlobalProbe {
        /// Query id at the coordinator.
        qid: QueryId,
        /// Pathname under query.
        path: String,
        /// Who to answer.
        reply_to: MdsId,
    },
    /// Node → coordinator: filter verdict and authoritative store verdict.
    GlobalReply {
        /// Query id at the coordinator.
        qid: QueryId,
        /// Responding node.
        from: MdsId,
        /// Whether the authoritative store holds the path.
        stores: bool,
    },
    /// Coordinator → candidate home: does your store really hold `path`?
    Verify {
        /// Query id at the coordinator.
        qid: QueryId,
        /// Pathname to verify.
        path: String,
        /// Who to answer.
        reply_to: MdsId,
    },
    /// Candidate → coordinator: verification verdict.
    VerifyReply {
        /// Query id at the coordinator.
        qid: QueryId,
        /// Whether the store holds the path.
        stores: bool,
        /// Responding candidate.
        from: MdsId,
    },
    /// Install (or replace) a full replica of `origin`'s filter.
    ReplicaInstall {
        /// The server the filter summarizes.
        origin: MdsId,
        /// Snapshot filter.
        filter: Box<BloomFilter>,
    },
    /// Apply a sparse update to `origin`'s replica.
    ReplicaDelta {
        /// The server whose replica to patch.
        origin: MdsId,
        /// The changed words.
        delta: FilterDelta,
    },
    /// Drop the replica of `origin` (server departed).
    ReplicaDrop {
        /// The departed server.
        origin: MdsId,
    },
    /// IDBFA refresh within a group (content elided; counted for the
    /// Figure 15 message tally).
    IdbfaSync,
    /// Runtime barrier: publish pending filter changes (fanning out the
    /// deltas), then acknowledge.
    Flush {
        /// Acknowledgement channel.
        reply: Sender<()>,
    },
    /// Orderly shutdown of the node thread.
    Shutdown,
}
