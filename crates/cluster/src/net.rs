//! The channel mesh standing in for the prototype's LAN, with message
//! accounting.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ghba_core::MdsId;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::RwLock;

use crate::message::Message;

/// A shared, counted message fabric: every inter-node send increments the
/// global counter (the quantity Figure 15 reports).
#[derive(Debug, Clone)]
pub struct Network {
    inner: Arc<NetworkInner>,
}

#[derive(Debug)]
struct NetworkInner {
    senders: RwLock<HashMap<MdsId, Sender<Message>>>,
    sent: AtomicU64,
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    /// Creates an empty fabric.
    #[must_use]
    pub fn new() -> Self {
        Network {
            inner: Arc::new(NetworkInner {
                senders: RwLock::new(HashMap::new()),
                sent: AtomicU64::new(0),
            }),
        }
    }

    fn read_senders(&self) -> std::sync::RwLockReadGuard<'_, HashMap<MdsId, Sender<Message>>> {
        self.inner.senders.read().expect("senders lock")
    }

    fn write_senders(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<MdsId, Sender<Message>>> {
        self.inner.senders.write().expect("senders lock")
    }

    /// Registers a node, returning the receiving end of its inbox.
    pub fn register(&self, id: MdsId) -> Receiver<Message> {
        let (tx, rx) = channel();
        self.write_senders().insert(id, tx);
        rx
    }

    /// Unregisters a node (its inbox closes once drained).
    pub fn unregister(&self, id: MdsId) {
        self.write_senders().remove(&id);
    }

    /// Sends `message` to `to`, counting it. Returns `false` if the node
    /// is gone (message dropped, still counted as network traffic).
    pub fn send(&self, to: MdsId, message: Message) -> bool {
        self.inner.sent.fetch_add(1, Ordering::Relaxed);
        match self.read_senders().get(&to) {
            Some(tx) => tx.send(message).is_ok(),
            None => false,
        }
    }

    /// Total messages put on the fabric since the last reset.
    #[must_use]
    pub fn messages_sent(&self) -> u64 {
        self.inner.sent.load(Ordering::Relaxed)
    }

    /// Resets the message counter.
    pub fn reset_counter(&self) {
        self.inner.sent.store(0, Ordering::Relaxed);
    }

    /// Registered node ids, ascending.
    #[must_use]
    pub fn node_ids(&self) -> Vec<MdsId> {
        let mut ids: Vec<MdsId> = self.read_senders().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Number of registered nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.read_senders().len()
    }

    /// `true` when no node is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.read_senders().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_send_receive() {
        let net = Network::new();
        let rx = net.register(MdsId(1));
        assert!(net.send(MdsId(1), Message::IdbfaSync));
        assert!(matches!(rx.recv().unwrap(), Message::IdbfaSync));
        assert_eq!(net.messages_sent(), 1);
    }

    #[test]
    fn send_to_missing_node_is_counted_but_dropped() {
        let net = Network::new();
        assert!(!net.send(MdsId(9), Message::IdbfaSync));
        assert_eq!(net.messages_sent(), 1);
    }

    #[test]
    fn counter_resets() {
        let net = Network::new();
        let _rx = net.register(MdsId(1));
        net.send(MdsId(1), Message::IdbfaSync);
        net.reset_counter();
        assert_eq!(net.messages_sent(), 0);
    }

    #[test]
    fn node_ids_sorted() {
        let net = Network::new();
        let _a = net.register(MdsId(5));
        let _b = net.register(MdsId(2));
        assert_eq!(net.node_ids(), vec![MdsId(2), MdsId(5)]);
        assert_eq!(net.len(), 2);
        net.unregister(MdsId(5));
        assert_eq!(net.len(), 1);
    }
}
