//! The prototype runtime: spawns node threads, drives clients, executes
//! reconfiguration plans, and counts every message.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ghba_bloom::Fingerprint;
use ghba_core::{EntryPolicy, GhbaConfig, MdsId, MetadataOp, OpBatch};
use ghba_simnet::DetRng;
use std::sync::mpsc::{channel, Receiver};
use std::sync::RwLock;

use crate::map::{ClusterMap, Plan, Scheme, SharedMap};
use crate::message::{LookupReply, Message};
use crate::net::Network;
use crate::node::{Node, PublishedRegistry};
use ghba_core::SnapshotCell;

/// How long client calls wait before concluding the cluster wedged.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// Per-op result of [`PrototypeCluster::execute`] (`outcomes[i]` answers
/// `batch.ops()[i]`): the prototype's wall-clock analogue of
/// `ghba_core::OpOutcome`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOutcome {
    /// A lookup's reply, measured at the coordinating node.
    Lookup(LookupReply),
    /// A create landed at `home`.
    Created {
        /// The node now homing the file.
        home: MdsId,
    },
    /// Whether a remove found (and deleted) the path anywhere.
    Removed {
        /// `true` when some node stored the path.
        removed: bool,
    },
    /// A rename migrated the path (`removed` = the source existed;
    /// `new_home` = where the new path was created, when it did).
    Renamed {
        /// Whether the source path existed.
        removed: bool,
        /// The new path's home node.
        new_home: Option<MdsId>,
    },
}

/// One pipelined remove/rename in flight during a batch dispatch: its
/// per-node remove fan-out is on the wire, its acknowledgements drain
/// lazily — at the batch's end, or earlier if a later op touches one of
/// its paths (the hazard stall). A rename's deferred create is a
/// **conditional continuation on this ack channel**: draining the
/// remove acks decides whether the create fires, dispatches it
/// non-blocking when it does, and parks the create's own
/// acknowledgement here to drain just as lazily — no client-side
/// synchronous round trip remains anywhere in the write path.
struct InFlightWrite {
    /// The removed (or rename-source) path — the hazard key.
    from: String,
    /// Outstanding per-node remove acknowledgements.
    acks: Vec<Receiver<bool>>,
    /// Rename destination and its op index (`None` for plain removes);
    /// the destination is also a hazard key.
    rename: Option<(String, usize)>,
    /// The deferred create's acknowledgement, once the continuation
    /// fired (rename whose source existed). The new home is known at
    /// dispatch (the policy chose it), so the outcome is already
    /// recorded; this channel only confirms the mailbox processed the
    /// create before the batch completes.
    create_ack: Option<Receiver<MdsId>>,
    /// The final outcome, once the remove acks drained.
    outcome: Option<BatchOutcome>,
}

/// A running prototype cluster: one OS thread per MDS, std mpsc channels
/// as the LAN.
///
/// # Examples
///
/// ```
/// use ghba_cluster::{PrototypeCluster, Scheme};
/// use ghba_core::GhbaConfig;
///
/// let config = GhbaConfig::default().with_filter_capacity(1_000);
/// let mut cluster = PrototypeCluster::spawn(
///     Scheme::Ghba { max_group_size: 4 },
///     config,
///     8,
/// );
/// let home = cluster.create("/proto/file");
/// cluster.flush_updates();
/// assert_eq!(cluster.lookup("/proto/file").home, Some(home));
/// cluster.shutdown();
/// ```
#[derive(Debug)]
pub struct PrototypeCluster {
    scheme: Scheme,
    config: GhbaConfig,
    net: Network,
    map: SharedMap,
    registry: PublishedRegistry,
    handles: HashMap<MdsId, JoinHandle<()>>,
    next_id: u16,
    rng: DetRng,
    /// Per-node write-sequencing tokens (see [`Message::Remove`]): every
    /// write dispatched to a node carries that node's next token, so the
    /// node can check writes arrive in dispatch order without any
    /// cluster-wide barrier.
    write_seq: HashMap<MdsId, u64>,
}

impl PrototypeCluster {
    /// Spawns a cluster of `servers` nodes. Construction traffic is not
    /// counted (the counter is reset before returning).
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    #[must_use]
    pub fn spawn(scheme: Scheme, config: GhbaConfig, servers: usize) -> Self {
        assert!(servers > 0, "cluster needs at least one server");
        let mut cluster = PrototypeCluster {
            scheme,
            rng: DetRng::new(config.seed).fork(0x9907),
            config,
            net: Network::new(),
            map: Arc::new(SnapshotCell::new(ClusterMap::new(scheme), ())),
            registry: Arc::new(RwLock::new(HashMap::new())),
            handles: HashMap::new(),
            next_id: 0,
            write_seq: HashMap::new(),
        };
        for _ in 0..servers {
            cluster.add_node();
        }
        cluster.net.reset_counter();
        cluster
    }

    /// The scheme in force.
    #[must_use]
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Number of live nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.handles.len()
    }

    /// Live node ids, ascending.
    #[must_use]
    pub fn node_ids(&self) -> Vec<MdsId> {
        let mut ids: Vec<MdsId> = self.handles.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Messages on the fabric since the last reset.
    #[must_use]
    pub fn messages_sent(&self) -> u64 {
        self.net.messages_sent()
    }

    /// Resets the fabric's message counter.
    pub fn reset_message_counter(&self) {
        self.net.reset_counter();
    }

    fn spawn_node(&mut self, id: MdsId, initial_replicas: Vec<MdsId>) {
        let inbox = self.net.register(id);
        let node = Node::new(
            id,
            self.config.clone(),
            Arc::clone(&self.map),
            self.net.clone(),
            Arc::clone(&self.registry),
            inbox,
            initial_replicas,
        );
        let handle = std::thread::Builder::new()
            .name(format!("mds-{}", id.0))
            .spawn(move || node.run())
            .expect("spawn node thread");
        self.handles.insert(id, handle);
    }

    fn execute_plan(&self, plan: &Plan) {
        let registry = self.registry.read().expect("registry lock");
        for &(origin, to) in &plan.installs {
            let filter = registry
                .get(&origin)
                .cloned()
                .unwrap_or_else(|| panic!("no published filter for {origin}"));
            self.net.send(
                to,
                Message::ReplicaInstall {
                    origin,
                    filter: Box::new(filter),
                },
            );
        }
        for &(origin, from, to) in &plan.moves {
            let filter = registry
                .get(&origin)
                .cloned()
                .unwrap_or_else(|| panic!("no published filter for {origin}"));
            self.net.send(
                to,
                Message::ReplicaInstall {
                    origin,
                    filter: Box::new(filter),
                },
            );
            self.net.send(from, Message::ReplicaDrop { origin });
        }
        for &(origin, at) in &plan.drops {
            self.net.send(at, Message::ReplicaDrop { origin });
        }
        for &target in &plan.idbfa_targets {
            self.net.send(target, Message::IdbfaSync);
        }
    }

    /// Adds one node, executing the scheme's reconfiguration protocol over
    /// the fabric. Returns the new id and the number of messages the
    /// insertion cost (the Figure 15 metric).
    pub fn add_node(&mut self) -> (MdsId, u64) {
        let before = self.net.messages_sent();
        let id = MdsId(self.next_id);
        self.next_id += 1;

        // Plan first (so the map is current), then spawn, then execute.
        // Build the successor map off to the side and publish it with
        // one pointer swap: nodes mid-query keep the map they pinned.
        let (plan, held) = {
            let mut writer = self.map.edit();
            let mut work = (*writer.base()).clone();
            let plan = work.add_member(id);
            let held = work.replicas_held_by(id);
            writer.publish(work);
            (plan, held)
        };
        self.spawn_node(id, held);
        self.execute_plan(&plan);
        (id, self.net.messages_sent() - before)
    }

    /// Fail-stops a node (per §4.5: peers drop its filters; its files
    /// become unavailable until higher-level recovery re-creates them).
    /// Returns the message cost of the membership change.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or is the last node.
    pub fn fail_node(&mut self, id: MdsId) -> u64 {
        assert!(self.handles.contains_key(&id), "unknown node");
        assert!(self.handles.len() > 1, "cannot fail the last node");
        let before = self.net.messages_sent();
        self.net.send(id, Message::Shutdown);
        self.net.unregister(id);
        if let Some(handle) = self.handles.remove(&id) {
            let _ = handle.join();
        }
        let plan = {
            let mut writer = self.map.edit();
            let mut work = (*writer.base()).clone();
            let plan = work.remove_member(id);
            writer.publish(work);
            plan
        };
        self.registry.write().expect("registry lock").remove(&id);
        self.write_seq.remove(&id);
        self.execute_plan(&plan);
        // §4.5 fail-over: every surviving node drops the failed server's
        // filters (including stale LRU entries naming it as a home).
        for survivor in self.node_ids() {
            self.net.send(survivor, Message::ReplicaDrop { origin: id });
        }
        self.net.messages_sent() - before
    }

    fn random_node(&mut self) -> MdsId {
        let ids = self.node_ids();
        *self.rng.choose(&ids).expect("non-empty cluster")
    }

    /// Creates `path` at a random node, returning its home.
    pub fn create(&mut self, path: &str) -> MdsId {
        let target = self.random_node();
        self.create_at(path, target)
    }

    /// The next write-sequencing token for `node`.
    fn next_write_seq(&mut self, node: MdsId) -> u64 {
        let seq = self.write_seq.entry(node).or_insert(0);
        *seq += 1;
        *seq
    }

    /// Dispatches a create to `target` without waiting, returning the
    /// acknowledgement channel — the primitive both the synchronous
    /// [`create_at`](PrototypeCluster::create_at) and the rename
    /// continuation build on, so the two create paths cannot diverge.
    fn dispatch_create(&mut self, path: &str, target: MdsId) -> Receiver<MdsId> {
        let (tx, rx) = channel();
        let seq = self.next_write_seq(target);
        self.net.send(
            target,
            Message::Create {
                path: path.to_owned(),
                seq,
                reply: tx,
            },
        );
        rx
    }

    /// Creates `path` at a specific node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not answer within the client timeout.
    pub fn create_at(&mut self, path: &str, target: MdsId) -> MdsId {
        self.dispatch_create(path, target)
            .recv_timeout(CLIENT_TIMEOUT)
            .expect("create acknowledged")
    }

    /// Looks `path` up from a random entry node.
    ///
    /// # Panics
    ///
    /// Panics if the cluster does not answer within the client timeout.
    pub fn lookup(&mut self, path: &str) -> LookupReply {
        let entry = self.random_node();
        self.lookup_from(entry, path)
    }

    /// Looks `path` up from a chosen entry node.
    ///
    /// # Panics
    ///
    /// Panics if the cluster does not answer within the client timeout.
    pub fn lookup_from(&mut self, entry: MdsId, path: &str) -> LookupReply {
        let (tx, rx) = channel();
        // Hash once at admission; the fingerprint rides the wire.
        self.net.send(
            entry,
            Message::Lookup {
                path: path.to_owned(),
                fp: Fingerprint::of(path),
                reply: tx,
            },
        );
        rx.recv_timeout(CLIENT_TIMEOUT).expect("lookup answered")
    }

    /// Resolves the target node for op `op_index` under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the cluster is empty or a pinned node is unknown.
    fn policy_node(&mut self, policy: EntryPolicy, op_index: usize) -> MdsId {
        if policy == EntryPolicy::Random {
            return self.random_node();
        }
        policy
            .resolve_deterministic(&self.node_ids(), op_index)
            .expect("non-random policy resolves deterministically")
    }

    /// Executes a typed op batch against the prototype.
    ///
    /// Every op kind is **dispatched without a cluster-wide stall** and
    /// the replies are collected afterwards, in op order. Lookups and
    /// creates go straight to their policy-chosen nodes — concurrent ops
    /// of one batch queue in node mailboxes, where the op-mailbox drain
    /// resolves queued lookups in one batched replica-slab pass per
    /// node. Removes and renames, formerly synchronous cluster sweeps
    /// that barriered the whole batch, now **stream** too: the remove
    /// fans out to every node carrying each node's write-sequencing
    /// token (per-node mailbox order makes the write visible to every
    /// later op dispatched to that node; the token checks it), and its
    /// acknowledgements are drained lazily. A rename's create at the
    /// policy-chosen new home is deferred until its remove
    /// acknowledgements confirm the source existed.
    ///
    /// The only ops that wait mid-dispatch are those that *touch a
    /// pending write's path*: a lookup/create/remove naming a path with
    /// an unresolved remove or rename in flight resolves that write
    /// first, so within-batch read-your-writes on the same path behaves
    /// exactly as the old barrier did, while ops on unrelated paths
    /// stream straight through. Beyond that, ops of one batch model
    /// concurrent client requests: cross-node ordering between them is
    /// not defined.
    ///
    /// Routing follows the simulated pipeline's **pin-once** rule at
    /// node granularity: each node pins the shared cluster map once per
    /// mailbox drain (see [`crate::node::Node::run`]) and routes every
    /// escalation admitted in that drain against the one pinned
    /// snapshot, so a reconfiguration swapping the map mid-batch lands
    /// between drains — never between the L3 multicast and the L4
    /// broadcast of one query.
    ///
    /// # Panics
    ///
    /// Panics if a node does not answer within the client timeout.
    pub fn execute(&mut self, batch: &OpBatch) -> Vec<BatchOutcome> {
        enum Pending {
            Lookup(Receiver<LookupReply>),
            Created(Receiver<MdsId>),
            /// Index into the in-flight write list.
            Write(usize),
        }
        let policy = batch.entry_policy();
        let mut pending: Vec<Pending> = Vec::with_capacity(batch.len());
        let mut writes: Vec<InFlightWrite> = Vec::new();
        for (i, op) in batch.ops().iter().enumerate() {
            match op {
                MetadataOp::Lookup(key) => {
                    self.resolve_writes_touching(&mut writes, policy, &[key.path()]);
                    let target = self.policy_node(policy, i);
                    let (tx, rx) = channel();
                    self.net.send(
                        target,
                        Message::Lookup {
                            path: key.path().to_owned(),
                            fp: *key.fingerprint(),
                            reply: tx,
                        },
                    );
                    pending.push(Pending::Lookup(rx));
                }
                MetadataOp::Create(key) => {
                    self.resolve_writes_touching(&mut writes, policy, &[key.path()]);
                    let target = self.policy_node(policy, i);
                    let (tx, rx) = channel();
                    let seq = self.next_write_seq(target);
                    self.net.send(
                        target,
                        Message::Create {
                            path: key.path().to_owned(),
                            seq,
                            reply: tx,
                        },
                    );
                    pending.push(Pending::Created(rx));
                }
                MetadataOp::Remove(key) => {
                    self.resolve_writes_touching(&mut writes, policy, &[key.path()]);
                    let acks = self.fan_out_remove(key.path());
                    writes.push(InFlightWrite {
                        from: key.path().to_owned(),
                        acks,
                        rename: None,
                        create_ack: None,
                        outcome: None,
                    });
                    pending.push(Pending::Write(writes.len() - 1));
                }
                MetadataOp::Rename { from, to } => {
                    self.resolve_writes_touching(&mut writes, policy, &[from.path(), to.path()]);
                    let acks = self.fan_out_remove(from.path());
                    writes.push(InFlightWrite {
                        from: from.path().to_owned(),
                        acks,
                        rename: Some((to.path().to_owned(), i)),
                        create_ack: None,
                        outcome: None,
                    });
                    pending.push(Pending::Write(writes.len() - 1));
                }
            }
        }
        // Drain the stragglers in op order (remove acks first, then any
        // continuation creates they fired), then assemble the outcomes.
        for write in &mut writes {
            self.resolve_write(write, policy);
        }
        for write in &mut writes {
            Self::drain_create_ack(write);
        }
        pending
            .into_iter()
            .map(|entry| match entry {
                Pending::Lookup(rx) => {
                    BatchOutcome::Lookup(rx.recv_timeout(CLIENT_TIMEOUT).expect("lookup answered"))
                }
                Pending::Created(rx) => BatchOutcome::Created {
                    home: rx
                        .recv_timeout(CLIENT_TIMEOUT)
                        .expect("create acknowledged"),
                },
                Pending::Write(idx) => writes[idx]
                    .outcome
                    .clone()
                    .expect("writes resolved just above"),
            })
            .collect()
    }

    /// Resolves, in dispatch order, every still-pending write up to and
    /// including the last one whose paths intersect `paths` (the hazard
    /// stall of the pipelined batch path: only path-conflicting ops
    /// wait).
    fn resolve_writes_touching(
        &mut self,
        writes: &mut [InFlightWrite],
        policy: EntryPolicy,
        paths: &[&str],
    ) {
        let last_conflict = writes.iter().rposition(|w| {
            (w.outcome.is_none() || w.create_ack.is_some())
                && paths
                    .iter()
                    .any(|&p| w.from == p || matches!(&w.rename, Some((to, _)) if to == p))
        });
        let Some(last) = last_conflict else {
            return;
        };
        for w in &mut writes[..=last] {
            self.resolve_write(w, policy);
            // An op touching this write's paths must also observe its
            // continuation create (read-your-writes on the rename
            // destination), so the create ack drains here too.
            Self::drain_create_ack(w);
        }
    }

    /// Drains an in-flight write's remove acknowledgements (OR-ing the
    /// per-node verdicts) and, for a rename whose source existed, fires
    /// the deferred create as a **continuation**: the create is
    /// dispatched to the policy-chosen new home without waiting for its
    /// acknowledgement (the home is the dispatch target, so the outcome
    /// is complete immediately); the ack parks on the write and drains
    /// lazily — at the batch's end, or earlier under a destination-path
    /// hazard. The old path blocked here for the create's round trip,
    /// the last client-side synchronous wait in the write pipeline.
    ///
    /// # Panics
    ///
    /// Panics if a node does not answer within the client timeout.
    fn resolve_write(&mut self, write: &mut InFlightWrite, policy: EntryPolicy) {
        if write.outcome.is_some() {
            return;
        }
        let mut removed = false;
        for rx in write.acks.drain(..) {
            removed |= rx.recv_timeout(CLIENT_TIMEOUT).expect("remove answered");
        }
        let rename = write.rename.clone();
        write.outcome = Some(match rename {
            None => BatchOutcome::Removed { removed },
            Some((to, op_index)) => {
                // Draw the new home only when the source existed, like
                // the simulated pipeline's rename migration.
                let new_home = removed.then(|| {
                    let target = self.policy_node(policy, op_index);
                    write.create_ack = Some(self.dispatch_create(&to, target));
                    target
                });
                BatchOutcome::Renamed { removed, new_home }
            }
        });
    }

    /// Drains a fired continuation create's acknowledgement, if any.
    ///
    /// # Panics
    ///
    /// Panics if the node does not answer within the client timeout (or
    /// acknowledges a different home than the dispatch target).
    fn drain_create_ack(write: &mut InFlightWrite) {
        let Some(rx) = write.create_ack.take() else {
            return;
        };
        let home = rx
            .recv_timeout(CLIENT_TIMEOUT)
            .expect("continuation create acknowledged");
        debug_assert!(
            matches!(
                &write.outcome,
                Some(BatchOutcome::Renamed {
                    new_home: Some(target),
                    ..
                }) if *target == home
            ),
            "continuation create landed at an unexpected home"
        );
    }

    /// Dispatches `Remove(path)` to every node (stamped with each node's
    /// write-sequencing token), returning the acknowledgement channels.
    /// The caller drains them to learn whether any node stored the path.
    fn fan_out_remove(&mut self, path: &str) -> Vec<Receiver<bool>> {
        let ids = self.node_ids();
        let mut acks = Vec::with_capacity(ids.len());
        for id in ids {
            let (tx, rx) = channel();
            let seq = self.next_write_seq(id);
            self.net.send(
                id,
                Message::Remove {
                    path: path.to_owned(),
                    seq,
                    reply: tx,
                },
            );
            acks.push(rx);
        }
        acks
    }

    /// Removes `path` wherever it lives: one parallel fan-out over the
    /// nodes (each probes its authoritative store concurrently) instead
    /// of the old one-node-at-a-time sequential sweep.
    pub fn remove(&mut self, path: &str) -> bool {
        let mut removed = false;
        for rx in self.fan_out_remove(path) {
            removed |= rx.recv_timeout(CLIENT_TIMEOUT).expect("remove answered");
        }
        removed
    }

    /// Barrier: every node publishes pending filter changes and fans the
    /// deltas out; returns once all nodes acknowledged (deltas are then
    /// ordered before any later client request on each channel).
    pub fn flush_updates(&mut self) {
        let mut acks = Vec::new();
        for id in self.node_ids() {
            let (tx, rx) = channel();
            self.net.send(id, Message::Flush { reply: tx });
            acks.push(rx);
        }
        for rx in acks {
            rx.recv_timeout(CLIENT_TIMEOUT).expect("flush acknowledged");
        }
    }

    /// Shuts every node down and joins the threads.
    pub fn shutdown(&mut self) {
        for id in self.node_ids() {
            self.net.send(id, Message::Shutdown);
            self.net.unregister(id);
        }
        for (_, handle) in self.handles.drain() {
            let _ = handle.join();
        }
    }
}

impl Drop for PrototypeCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}
