//! Threaded message-passing prototype of G-HBA and HBA.
//!
//! The paper validates its simulations with a 60-node Linux prototype
//! (Figures 14–15). This crate reproduces that axis with one OS thread per
//! MDS and std mpsc channels as the network: queries run the real
//! multi-level protocol as message exchanges, replica installs and deltas
//! travel the fabric, and the [`Network`] counts every send — the
//! quantity Figure 15 reports for node insertions.
//!
//! * [`PrototypeCluster`] — spawn/drive/reconfigure a live cluster;
//! * [`Scheme`] — G-HBA (grouped) or HBA (full mirror) replication;
//! * [`Network`] — the counted channel mesh;
//! * [`LookupReply`] — per-query level, wall-clock latency, messages.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod map;
mod message;
mod net;
mod node;
mod runtime;

pub use map::{ClusterMap, GroupView, Plan, Scheme, SharedMap};
pub use message::{LookupReply, Message, QueryId};
pub use net::Network;
pub use node::{Node, PublishedRegistry};
pub use runtime::{BatchOutcome, PrototypeCluster};
