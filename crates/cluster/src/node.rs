//! The per-MDS node thread: owns its metadata, filters, and replicas;
//! communicates only through the channel fabric.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use ghba_bloom::{BloomFilter, Fingerprint, Hit, ProbeBatch, SharedShapeArray};
use ghba_core::exec::run_chunked;
use ghba_core::{published_shape, GhbaConfig, Mds, MdsId, QueryLevel};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::RwLock;

use crate::map::{ClusterMap, SharedMap};
use crate::message::{LookupReply, Message, QueryId};
use crate::net::Network;

/// Latest published filter per origin, readable by the runtime when it
/// must seed a fresh replica during reconfiguration (the stand-in for a
/// holder-to-holder transfer; the transfer message itself is still sent
/// and counted on the fabric).
pub type PublishedRegistry = Arc<RwLock<HashMap<MdsId, BloomFilter>>>;

struct Pending {
    path: String,
    fp: Fingerprint,
    reply: Sender<LookupReply>,
    start: Instant,
    messages: u32,
    awaiting: usize,
    positives: Vec<MdsId>,
    stage: Stage,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Waiting for a VerifyReply; on failure continue at the given level.
    Verify {
        level: QueryLevel,
        on_fail: Escalation,
    },
    Group,
    Global,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Escalation {
    L2,
    Group,
    Global,
}

/// One metadata server node of the prototype cluster.
pub struct Node {
    id: MdsId,
    mds: Mds,
    /// Held replicas, bit-sliced: every origin's published filter shares
    /// one shape, so group/global probes are one hash-once slab query.
    replicas: SharedShapeArray<MdsId>,
    config: GhbaConfig,
    map: SharedMap,
    /// The map snapshot pinned for the current mailbox drain iteration
    /// (the prototype's pin-once rule): every escalation and update
    /// fan-out admitted in one drain routes against this one snapshot
    /// instead of re-pinning the cell per query; the pin refreshes at
    /// the top of each outer receive iteration, so reconfiguration
    /// lands between drains, never inside one.
    pinned_map: Arc<ClusterMap>,
    net: Network,
    registry: PublishedRegistry,
    inbox: Receiver<Message>,
    pending: HashMap<QueryId, Pending>,
    next_qid: QueryId,
    /// Last write-sequencing token observed (tokens start at 1). The
    /// runtime stamps every write it dispatches to this node with a
    /// strictly increasing token; the mailbox's FIFO delivery is what
    /// *enforces* the order, this counter is what *checks* it — the
    /// invariant the pipelined (barrier-free) write path rests on.
    last_write_seq: u64,
    /// Writes whose token arrived out of order (stays 0; a violation is
    /// reported on stderr — once per node — and trips a debug assert).
    write_reorders: u64,
    /// Per-worker probe arenas for pool-dispatched mailbox slab passes
    /// (see [`Node::slab_hits`]); grown lazily, reused across drains.
    probe_arenas: Vec<(ProbeBatch, Vec<Hit<MdsId>>)>,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("id", &self.id)
            .field("files", &self.mds.file_count())
            .field("replicas", &self.replicas.len())
            .finish()
    }
}

impl Node {
    /// Creates a node; `initial_replicas` are the origins whose (empty)
    /// filters it starts out holding.
    #[must_use]
    pub fn new(
        id: MdsId,
        config: GhbaConfig,
        map: SharedMap,
        net: Network,
        registry: PublishedRegistry,
        inbox: Receiver<Message>,
        initial_replicas: Vec<MdsId>,
    ) -> Self {
        let mds = Mds::new(id, &config);
        let mut replicas = SharedShapeArray::new(published_shape(&config));
        for origin in initial_replicas {
            replicas
                .push(origin)
                .expect("initial replica origins are distinct");
        }
        registry
            .write()
            .expect("registry lock")
            .insert(id, mds.published().clone());
        let pinned_map = map.pin();
        Node {
            id,
            mds,
            replicas,
            config,
            map,
            pinned_map,
            net,
            registry,
            inbox,
            pending: HashMap::new(),
            next_qid: 0,
            last_write_seq: 0,
            write_reorders: 0,
            probe_arenas: Vec::new(),
        }
    }

    /// Probes the replica slab with a drained burst of fingerprints,
    /// dispatching through the process-wide worker pool when the burst
    /// is large enough (the node-side analogue of the simulated
    /// pipeline's parallel read phase, gated by the same
    /// [`ghba_core::ExecutorConfig`]): one contiguous chunk per worker, each with
    /// its own persistent `ProbeBatch` arena against the shared
    /// read-only slab, verdicts concatenated in burst order —
    /// bit-identical to the single-pass probe.
    fn slab_hits(&mut self, fps: &[Fingerprint]) -> Vec<Hit<MdsId>> {
        if fps.is_empty() {
            return Vec::new();
        }
        let executor = self.config.executor;
        let mut arenas = std::mem::take(&mut self.probe_arenas);
        let used = {
            let replicas = &self.replicas;
            run_chunked(fps, executor, &mut arenas, |chunk, (batch, hits)| {
                batch.clear();
                for fp in chunk {
                    batch.push(*fp);
                }
                *hits = replicas.query_batch(batch);
            })
        };
        let mut out = Vec::with_capacity(fps.len());
        for (_, hits) in arenas.iter_mut().take(used) {
            out.append(hits);
        }
        self.probe_arenas = arenas;
        out
    }

    /// Records a write's sequencing token, checking it arrived in
    /// dispatch order (strictly increasing per node). A violation —
    /// which would mean the FIFO-delivery invariant the barrier-free
    /// write path rests on broke — is reported on stderr (once per
    /// node, so release builds surface it too) and trips a debug
    /// assert.
    fn observe_write_seq(&mut self, seq: u64) {
        if seq <= self.last_write_seq {
            self.write_reorders += 1;
            if self.write_reorders == 1 {
                eprintln!(
                    "{}: write token {seq} arrived after {} — per-node write ordering violated",
                    self.id, self.last_write_seq
                );
            }
            debug_assert!(
                false,
                "write token {seq} arrived after {} at {}",
                self.last_write_seq, self.id
            );
        }
        self.last_write_seq = seq;
    }

    /// Runs the node until `Shutdown` arrives or every sender is gone.
    ///
    /// The receive loop is an **op mailbox**: it drains everything waiting
    /// in the queue before handling anything, collecting the two
    /// batchable op kinds —
    ///
    /// * queued `GroupProbe`s (multicast probes from coordinators) are
    ///   answered with one batched slab pass
    ///   ([`SharedShapeArray::query_batch`]);
    /// * queued client `Lookup` ops are admitted together: each runs its
    ///   L1 check, and every op escalating to L2 joins one batched probe
    ///   of the replica slab —
    ///
    /// so a burst of concurrent operations costs one sorted, prefetched
    /// walk of the replica slab per kind instead of one dependent
    /// `k × stride` row walk per op. Writes and protocol messages are
    /// handled in arrival order, flushing both op queues first.
    pub fn run(mut self) {
        let mut probes: Vec<(QueryId, Fingerprint, MdsId)> = Vec::new();
        let mut lookups: Vec<(String, Fingerprint, Sender<LookupReply>)> = Vec::new();
        'recv: while let Ok(first) = self.inbox.recv() {
            // Pin once per drain: everything admitted below routes
            // against this one map snapshot.
            self.pinned_map = self.map.pin();
            let mut message = first;
            loop {
                match message {
                    Message::GroupProbe { qid, fp, reply_to } => {
                        probes.push((qid, fp, reply_to));
                    }
                    Message::Lookup { path, fp, reply } => {
                        lookups.push((path, fp, reply));
                    }
                    other => {
                        // Answer queued ops first: they were received
                        // earlier, and their replies never depend on the
                        // message that follows them.
                        self.flush_group_probes(&mut probes);
                        self.flush_lookups(&mut lookups);
                        if !self.handle(other) {
                            break 'recv;
                        }
                    }
                }
                match self.inbox.try_recv() {
                    Ok(next) => message = next,
                    Err(_) => break,
                }
            }
            self.flush_group_probes(&mut probes);
            self.flush_lookups(&mut lookups);
        }
    }

    /// Admits every queued client lookup: L1 per op, then one batched
    /// replica-slab pass for all ops that escalate to L2 (duplicate
    /// fingerprints within the burst are deduped inside the pass), then
    /// the per-op escalation machinery (verify / group / global) as
    /// usual.
    fn flush_lookups(&mut self, lookups: &mut Vec<(String, Fingerprint, Sender<LookupReply>)>) {
        match lookups.len() {
            0 => {}
            1 => {
                let (path, fp, reply) = lookups.pop().expect("len checked");
                self.start_lookup(path, fp, reply);
            }
            _ => {
                let mut fps: Vec<Fingerprint> = Vec::with_capacity(lookups.len());
                let mut active: Vec<QueryId> = Vec::with_capacity(lookups.len());
                for (path, fp, reply) in lookups.drain(..) {
                    let qid = self.admit_lookup(path, fp, reply);
                    // L1: the LRU array.
                    let l1 = self.mds.lru().map(|lru| lru.query_fp(&fp));
                    if let Some(Hit::Unique(candidate)) = l1 {
                        self.verify(qid, candidate, QueryLevel::L1Lru, Escalation::L2);
                        continue;
                    }
                    fps.push(fp);
                    active.push(qid);
                }
                // L2 for the whole burst: one (pool-dispatched when the
                // burst is large) slab pass over the held replicas, then
                // per-op classification.
                let hits = self.slab_hits(&fps);
                for (qid, hit) in active.into_iter().zip(hits) {
                    let fp = self.pending[&qid].fp;
                    let mut positives = hit.candidates().to_vec();
                    if self.mds.probe_live_fp(&fp) {
                        positives.push(self.id);
                    }
                    if positives.len() == 1 {
                        self.verify(qid, positives[0], QueryLevel::L2Segment, Escalation::Group);
                    } else {
                        self.start_group(qid);
                    }
                }
            }
        }
    }

    /// Answers every queued `GroupProbe` with one batched probe of the
    /// replica slab (plus one live-filter probe per fingerprint).
    fn flush_group_probes(&mut self, probes: &mut Vec<(QueryId, Fingerprint, MdsId)>) {
        match probes.len() {
            0 => return,
            1 => {
                // No batch to amortize; keep the single-probe path.
                let (qid, fp, reply_to) = probes[0];
                let positives = self.local_positives(&fp);
                self.net.send(
                    reply_to,
                    Message::ProbeReply {
                        qid,
                        positives,
                        from: self.id,
                    },
                );
            }
            _ => {
                let fps: Vec<Fingerprint> = probes.iter().map(|&(_, fp, _)| fp).collect();
                let hits = self.slab_hits(&fps);
                for (&(qid, fp, reply_to), hit) in probes.iter().zip(hits) {
                    let mut positives = hit.candidates().to_vec();
                    if self.mds.probe_live_fp(&fp) {
                        positives.push(self.id);
                    }
                    self.net.send(
                        reply_to,
                        Message::ProbeReply {
                            qid,
                            positives,
                            from: self.id,
                        },
                    );
                }
            }
        }
        probes.clear();
    }

    fn handle(&mut self, message: Message) -> bool {
        match message {
            Message::Shutdown => return false,
            Message::Lookup { path, fp, reply } => self.start_lookup(path, fp, reply),
            Message::Create { path, seq, reply } => {
                self.observe_write_seq(seq);
                self.mds.create_local(&path);
                self.maybe_publish();
                let _ = reply.send(self.id);
            }
            Message::Remove { path, seq, reply } => {
                self.observe_write_seq(seq);
                let removed = self.mds.remove_local(&path);
                if removed {
                    self.maybe_publish();
                }
                let _ = reply.send(removed);
            }
            Message::GroupProbe { qid, fp, reply_to } => {
                // Reached only for probes arriving outside the drain loop;
                // the drain path batches them.
                let positives = self.local_positives(&fp);
                self.net.send(
                    reply_to,
                    Message::ProbeReply {
                        qid,
                        positives,
                        from: self.id,
                    },
                );
            }
            Message::ProbeReply { qid, positives, .. } => self.on_probe_reply(qid, positives),
            Message::GlobalProbe {
                qid,
                path,
                reply_to,
            } => {
                let stores = self.mds.stores(&path);
                self.net.send(
                    reply_to,
                    Message::GlobalReply {
                        qid,
                        from: self.id,
                        stores,
                    },
                );
            }
            Message::GlobalReply { qid, from, stores } => self.on_global_reply(qid, from, stores),
            Message::Verify {
                qid,
                path,
                reply_to,
            } => {
                let stores = self.mds.stores(&path);
                self.net.send(
                    reply_to,
                    Message::VerifyReply {
                        qid,
                        stores,
                        from: self.id,
                    },
                );
            }
            Message::VerifyReply { qid, stores, from } => self.on_verify_reply(qid, stores, from),
            Message::ReplicaInstall { origin, filter } => {
                self.install_replica(origin, &filter);
            }
            Message::ReplicaDelta { origin, delta } => {
                // Sparse apply straight into the slab column. A delta for
                // an unknown origin or mismatching shape (e.g. raced with
                // a re-install) is dropped; the next full install repairs
                // it.
                let _ = self.replicas.apply_delta(origin, &delta);
            }
            Message::ReplicaDrop { origin } => {
                self.replicas.remove(origin);
                if let Some(lru) = self.mds.lru_mut() {
                    lru.purge_home(origin);
                }
            }
            Message::IdbfaSync => {}
            Message::Flush { reply } => {
                self.publish_now();
                let _ = reply.send(());
            }
        }
        true
    }

    /// Installs (or refreshes) the replica of `origin`.
    fn install_replica(&mut self, origin: MdsId, filter: &BloomFilter) {
        if self.replicas.contains_id(origin) {
            self.replicas
                .replace_filter(origin, filter)
                .expect("origin slot exists");
        } else {
            self.replicas
                .push_filter(origin, filter)
                .expect("uniform cluster config implies a matching shape");
        }
    }

    /// Origins (replica origins and/or self) whose filters match the
    /// fingerprinted path — one bit-sliced slab probe plus the live filter.
    fn local_positives(&self, fp: &Fingerprint) -> Vec<MdsId> {
        let mut positives: Vec<MdsId> = self.replicas.query_fp(fp).candidates().to_vec();
        if self.mds.probe_live_fp(fp) {
            positives.push(self.id);
        }
        positives
    }

    /// Registers a pending query for an admitted lookup, returning its id.
    /// The fingerprint arrived with the op (hashed once at batch
    /// admission) and rides the whole escalation, including the group
    /// multicast messages.
    fn admit_lookup(
        &mut self,
        path: String,
        fp: Fingerprint,
        reply: Sender<LookupReply>,
    ) -> QueryId {
        let qid = self.next_qid;
        self.next_qid += 1;
        let pending = Pending {
            path,
            fp,
            reply,
            start: Instant::now(),
            messages: 0,
            awaiting: 0,
            positives: Vec::new(),
            stage: Stage::Group, // placeholder; set by the escalation
        };
        self.pending.insert(qid, pending);
        qid
    }

    fn start_lookup(&mut self, path: String, fp: Fingerprint, reply: Sender<LookupReply>) {
        let qid = self.admit_lookup(path, fp, reply);
        // L1: the LRU array.
        let l1 = self.mds.lru().map(|lru| lru.query_fp(&fp));
        if let Some(ghba_bloom::Hit::Unique(candidate)) = l1 {
            self.verify(qid, candidate, QueryLevel::L1Lru, Escalation::L2);
            return;
        }
        self.continue_l2(qid);
    }

    fn continue_l2(&mut self, qid: QueryId) {
        let fp = self.pending[&qid].fp;
        let positives = self.local_positives(&fp);
        if positives.len() == 1 {
            self.verify(qid, positives[0], QueryLevel::L2Segment, Escalation::Group);
        } else {
            self.start_group(qid);
        }
    }

    fn verify(&mut self, qid: QueryId, candidate: MdsId, level: QueryLevel, on_fail: Escalation) {
        if candidate == self.id {
            let stores = {
                let pending = &self.pending[&qid];
                self.mds.stores(&pending.path)
            };
            if stores {
                self.succeed(qid, self.id, level);
            } else {
                self.escalate(qid, on_fail);
            }
            return;
        }
        let path = {
            let pending = self.pending.get_mut(&qid).expect("pending query");
            pending.stage = Stage::Verify { level, on_fail };
            pending.messages += 2; // request + reply
            pending.path.clone()
        };
        let delivered = self.net.send(
            candidate,
            Message::Verify {
                qid,
                path,
                reply_to: self.id,
            },
        );
        if !delivered {
            // Candidate died (e.g. a stale LRU entry naming a failed
            // node): treat as a failed verification and escalate.
            self.escalate(qid, on_fail);
        }
    }

    fn on_verify_reply(&mut self, qid: QueryId, stores: bool, from: MdsId) {
        let Some(pending) = self.pending.get(&qid) else {
            return;
        };
        let Stage::Verify { level, on_fail } = pending.stage else {
            return;
        };
        if stores {
            self.succeed(qid, from, level);
        } else {
            self.escalate(qid, on_fail);
        }
    }

    fn escalate(&mut self, qid: QueryId, to: Escalation) {
        match to {
            Escalation::L2 => self.continue_l2(qid),
            Escalation::Group => self.start_group(qid),
            Escalation::Global => self.start_global(qid),
        }
    }

    fn start_group(&mut self, qid: QueryId) {
        let peers = self.pinned_map.group_peers_of(self.id);
        if peers.is_empty() {
            self.start_global(qid);
            return;
        }
        let fp = self.pending[&qid].fp;
        let own_positives = self.local_positives(&fp);
        // Count only *delivered* probes: a peer that died mid-query must
        // not wedge the coordinator.
        let mut delivered = 0usize;
        for &peer in &peers {
            if self.net.send(
                peer,
                Message::GroupProbe {
                    qid,
                    fp,
                    reply_to: self.id,
                },
            ) {
                delivered += 1;
            }
        }
        {
            let pending = self.pending.get_mut(&qid).expect("pending query");
            pending.stage = Stage::Group;
            pending.awaiting = delivered;
            pending.positives = own_positives;
            pending.messages += 2 * peers.len() as u32;
        }
        if delivered == 0 {
            self.complete_group(qid);
        }
    }

    fn on_probe_reply(&mut self, qid: QueryId, positives: Vec<MdsId>) {
        let Some(pending) = self.pending.get_mut(&qid) else {
            return;
        };
        if pending.stage != Stage::Group {
            return;
        }
        for p in positives {
            if !pending.positives.contains(&p) {
                pending.positives.push(p);
            }
        }
        pending.awaiting -= 1;
        if pending.awaiting == 0 {
            self.complete_group(qid);
        }
    }

    fn complete_group(&mut self, qid: QueryId) {
        let Some(pending) = self.pending.get_mut(&qid) else {
            return;
        };
        let positives = std::mem::take(&mut pending.positives);
        if positives.len() == 1 {
            self.verify(qid, positives[0], QueryLevel::L3Group, Escalation::Global);
        } else {
            self.start_global(qid);
        }
    }

    fn start_global(&mut self, qid: QueryId) {
        let others: Vec<MdsId> = self
            .pinned_map
            .all_members()
            .into_iter()
            .filter(|&m| m != self.id)
            .collect();
        if others.is_empty() {
            let stores = self.mds.stores(&self.pending[&qid].path);
            if stores {
                self.succeed(qid, self.id, QueryLevel::L4Global);
            } else {
                self.fail(qid);
            }
            return;
        }
        let path = self.pending[&qid].path.clone();
        let mut delivered = 0usize;
        for &node in &others {
            if self.net.send(
                node,
                Message::GlobalProbe {
                    qid,
                    path: path.clone(),
                    reply_to: self.id,
                },
            ) {
                delivered += 1;
            }
        }
        {
            let pending = self.pending.get_mut(&qid).expect("pending query");
            pending.stage = Stage::Global;
            pending.awaiting = delivered;
            pending.positives.clear();
            pending.messages += 2 * others.len() as u32;
        }
        if delivered == 0 {
            self.complete_global(qid);
        }
    }

    fn on_global_reply(&mut self, qid: QueryId, from: MdsId, stores: bool) {
        let Some(pending) = self.pending.get_mut(&qid) else {
            return;
        };
        if pending.stage != Stage::Global {
            return;
        }
        if stores {
            pending.positives.push(from);
        }
        pending.awaiting -= 1;
        if pending.awaiting == 0 {
            self.complete_global(qid);
        }
    }

    fn complete_global(&mut self, qid: QueryId) {
        let Some(pending) = self.pending.get_mut(&qid) else {
            return;
        };
        // The global sweep is authoritative: also check ourselves.
        let own = self.mds.stores(&pending.path);
        let home = pending.positives.first().copied();
        match (home, own) {
            (Some(h), _) => self.succeed(qid, h, QueryLevel::L4Global),
            (None, true) => self.succeed(qid, self.id, QueryLevel::L4Global),
            (None, false) => self.fail(qid),
        }
    }

    fn succeed(&mut self, qid: QueryId, home: MdsId, level: QueryLevel) {
        let Some(pending) = self.pending.remove(&qid) else {
            return;
        };
        if let Some(lru) = self.mds.lru_mut() {
            lru.record_fp(&pending.fp, home);
        }
        let _ = pending.reply.send(LookupReply {
            home: Some(home),
            level,
            latency: pending.start.elapsed(),
            messages: pending.messages,
        });
    }

    fn fail(&mut self, qid: QueryId) {
        let Some(pending) = self.pending.remove(&qid) else {
            return;
        };
        let _ = pending.reply.send(LookupReply {
            home: None,
            level: QueryLevel::Nonexistent,
            latency: pending.start.elapsed(),
            messages: pending.messages,
        });
    }

    fn maybe_publish(&mut self) {
        // Exact O(m) drift checks run at the gated cadence, not per
        // mutation (same protocol as `GhbaCluster::maybe_publish`; the
        // prototype keeps no stats, so no exact-check counter here).
        let threshold = self.config.update_threshold_bits;
        let gate = self.config.publish_gate();
        if self.mds.drift_exceeds(gate, threshold) == Some(true) {
            self.publish_now();
        }
    }

    /// Forces a publish + delta fan-out (one holder per foreign group, or
    /// everyone under HBA).
    fn publish_now(&mut self) {
        let Some(delta) = self.mds.publish() else {
            return;
        };
        self.registry
            .write()
            .expect("registry lock")
            .insert(self.id, self.mds.published().clone());
        let targets = self.pinned_map.update_targets(self.id);
        for target in targets {
            self.net.send(
                target,
                Message::ReplicaDelta {
                    origin: self.id,
                    delta: delta.clone(),
                },
            );
        }
    }
}
