//! Virtual time for the discrete-event simulator.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};
use core::time::Duration;

/// An instant on the simulation's virtual clock, in nanoseconds since the
/// simulation epoch.
///
/// `SimTime` is totally ordered and combines with [`core::time::Duration`]
/// for spans, so simulation code reads like wall-clock code:
///
/// ```
/// use core::time::Duration;
/// use ghba_simnet::SimTime;
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + Duration::from_micros(250);
/// assert!(t1 > t0);
/// assert_eq!(t1 - t0, Duration::from_micros(250));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `nanos` nanoseconds after the epoch.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after the epoch.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after the epoch.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after the epoch.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch (truncating).
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since the epoch (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the epoch as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference: `self − earlier`, or zero if `earlier` is
    /// later.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        SimTime(
            self.0
                .checked_add(u64::try_from(rhs.as_nanos()).expect("duration fits u64 nanos"))
                .expect("simulation clock overflow"),
        )
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`; use
    /// [`saturating_since`](SimTime::saturating_since) when that is
    /// expected.
    fn sub(self, rhs: SimTime) -> Duration {
        Duration::from_nanos(
            self.0
                .checked_sub(rhs.0)
                .expect("subtracted a later SimTime"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}µs", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_millis(5) + Duration::from_micros(250);
        assert_eq!(t.as_micros(), 5_250);
        assert_eq!(t - SimTime::from_millis(5), Duration::from_micros(250));
    }

    #[test]
    fn saturating_since_never_panics() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(50);
        assert_eq!(early.saturating_since(late), Duration::ZERO);
        assert_eq!(late.saturating_since(early), Duration::from_nanos(40));
    }

    #[test]
    #[should_panic(expected = "later SimTime")]
    fn sub_earlier_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_nanos(42).to_string(), "42ns");
        assert_eq!(SimTime::from_micros(42).to_string(), "42.000µs");
        assert_eq!(SimTime::from_millis(42).to_string(), "42.000ms");
        assert_eq!(SimTime::from_secs(42).to_string(), "42.000s");
    }

    #[test]
    fn ordering_and_max() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }
}
