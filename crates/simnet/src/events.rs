//! A minimal deterministic event queue for discrete-event simulation.
//!
//! Events are ordered by `(time, insertion sequence)` so that ties break in
//! FIFO order — a requirement for reproducible simulations.

use core::time::Duration;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::clock::SimTime;

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A virtual-time event queue.
///
/// Popping an event advances [`now`](EventQueue::now) to the event's
/// timestamp; scheduling into the past is rejected.
///
/// # Examples
///
/// ```
/// use core::time::Duration;
/// use ghba_simnet::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_in(Duration::from_millis(2), "later");
/// q.schedule_in(Duration::from_millis(1), "sooner");
/// assert_eq!(q.pop().unwrap().1, "sooner");
/// assert_eq!(q.now(), SimTime::from_millis(1));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
        }
    }

    /// Current virtual time (timestamp of the last popped event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`now`](EventQueue::now) — scheduling
    /// into the past indicates a simulation bug.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedules `event` `delay` after the current time.
    pub fn schedule_in(&mut self, delay: Duration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Timestamp of the next event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let scheduled = self.heap.pop()?;
        self.now = scheduled.at;
        Some((scheduled.at, scheduled.event))
    }

    /// Drains and processes events until the queue empties or `until` is
    /// reached; events scheduled during processing are honoured.
    ///
    /// Returns the number of events processed.
    pub fn run_until(
        &mut self,
        until: SimTime,
        mut handler: impl FnMut(SimTime, E, &mut Self),
    ) -> usize {
        let mut processed = 0;
        while let Some(at) = self.peek_time() {
            if at > until {
                break;
            }
            let (at, event) = self.pop().expect("peeked");
            handler(at, event, self);
            processed += 1;
        }
        // Advance the clock to the horizon even if the queue ran dry early.
        self.now = self.now.max(until);
        processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(3), 'c');
        q.schedule(SimTime::from_millis(1), 'a');
        q.schedule(SimTime::from_millis(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        q.schedule(t, 1);
        q.schedule(t, 2);
        q.schedule(t, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn pop_advances_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(7));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), ());
        q.pop();
        q.schedule(SimTime::from_millis(1), ());
    }

    #[test]
    fn run_until_processes_cascading_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 0u32);
        let mut seen = Vec::new();
        let processed = q.run_until(SimTime::from_millis(10), |_, depth, q| {
            seen.push(depth);
            if depth < 3 {
                q.schedule_in(Duration::from_millis(1), depth + 1);
            }
        });
        assert_eq!(processed, 4);
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert_eq!(q.now(), SimTime::from_millis(10));
    }

    #[test]
    fn run_until_leaves_later_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 'x');
        q.schedule(SimTime::from_millis(20), 'y');
        let processed = q.run_until(SimTime::from_millis(10), |_, _, _| {});
        assert_eq!(processed, 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(20)));
    }
}
