//! Deterministic pseudo-randomness for reproducible simulations.
//!
//! Every experiment in this workspace is seeded, so a figure regenerated
//! twice produces byte-identical numbers. The generator is xoshiro256++
//! (public-domain constants) seeded through splitmix64, with cheap stream
//! forking so independent subsystems (workload generation, jitter, placement)
//! never share a sequence.

/// `splitmix64` step used for seeding and stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator.
///
/// Not cryptographic. Identical seeds yield identical sequences on every
/// platform and build.
///
/// # Examples
///
/// ```
/// use ghba_simnet::DetRng;
///
/// let mut a = DetRng::new(7);
/// let mut b = DetRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Derives an independent generator for substream `stream`.
    ///
    /// Forked streams are statistically independent of the parent and of
    /// each other, and forking does not advance the parent.
    #[must_use]
    pub fn fork(&self, stream: u64) -> DetRng {
        let mixed =
            self.s[0] ^ self.s[3].rotate_left(17) ^ stream.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        DetRng::new(mixed)
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of a u64.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(bound);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(bound);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform integer in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn range_u64(&mut self, low: u64, high: u64) -> u64 {
        assert!(low < high, "empty range");
        low + self.below(high - low)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed value with the given mean (inter-arrival
    /// modelling).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn sample_exp(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        let u = 1.0 - self.next_f64(); // (0, 1]
        -mean * u.ln()
    }

    /// Picks a uniformly random element of `slice`.
    ///
    /// Returns `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.index(slice.len())])
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = DetRng::new(123);
        let mut b = DetRng::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_are_independent_and_stable() {
        let parent = DetRng::new(9);
        let mut f1 = parent.fork(1);
        let mut f1_again = parent.fork(1);
        let mut f2 = parent.fork(2);
        assert_eq!(f1.next_u64(), f1_again.next_u64());
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = DetRng::new(5);
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = DetRng::new(5);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.index(10)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (8_500..11_500).contains(&c),
                "bucket {i} count {c} far from uniform"
            );
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = DetRng::new(11);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn sample_exp_has_right_mean() {
        let mut rng = DetRng::new(13);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.sample_exp(4.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(17);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(19);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = DetRng::new(23);
        let empty: &[u8] = &[];
        assert!(rng.choose(empty).is_none());
        assert!(rng.choose(&[42]).is_some());
    }

    #[test]
    fn range_u64_bounds() {
        let mut rng = DetRng::new(29);
        for _ in 0..1000 {
            let x = rng.range_u64(10, 20);
            assert!((10..20).contains(&x));
        }
    }
}
