//! Deterministic discrete-event simulation substrate for the G-HBA
//! reproduction.
//!
//! The paper evaluates metadata-management schemes with trace-driven
//! simulations over clusters of up to 200 metadata servers. This crate
//! provides the simulation plumbing those experiments stand on:
//!
//! * [`SimTime`] / [`EventQueue`] — a virtual clock and deterministic
//!   event scheduling (FIFO tie-breaking, no wall-clock dependence);
//! * [`DetRng`] — seeded xoshiro256++ randomness with independent stream
//!   forking, so every figure regenerates byte-identically;
//! * [`LatencyModel`] — the memory-probe / LAN / multicast / disk cost
//!   model that gives simulated operations their latencies;
//! * [`MemoryBudget`] — per-node RAM accounting with priority spill, the
//!   mechanism behind the paper's memory-pressure experiments
//!   (Figures 8–10);
//! * [`LatencyStats`] / [`Counters`] — run statistics.
//!
//! Design note: the original work drove a Linux prototype; we replace the
//! asynchronous runtime with *deterministic* simulation so results are
//! reproducible in CI, and cover real concurrency separately in
//! `ghba-cluster`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clock;
mod events;
mod latency;
mod memory;
mod rng;
mod stats;

pub use clock::SimTime;
pub use events::EventQueue;
pub use latency::LatencyModel;
pub use memory::{gib, mib, MemoryBudget};
pub use rng::DetRng;
pub use stats::{Counters, LatencyStats};
