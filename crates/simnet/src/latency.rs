//! The network and storage latency model behind every simulated figure.
//!
//! The paper's evaluation compares operation latencies whose magnitudes are
//! set by four physical effects, ordered here from fastest to slowest:
//!
//! 1. probing Bloom filters resident in **memory** (sub-microsecond each),
//! 2. a **LAN round trip** to one peer (hundreds of microseconds in 2007),
//! 3. a **multicast** round within a group or across the system (a round
//!    trip plus per-member fan-out/aggregation overhead),
//! 4. a **disk access** for spilled replicas or on-disk metadata
//!    verification (milliseconds — the cliff that Figures 8–10 expose).
//!
//! Absolute values are configurable; the defaults reproduce the *ordering*
//! and rough ratios of the paper's testbed rather than its exact hardware.

use core::time::Duration;

use crate::rng::DetRng;

/// Tunable latency parameters for the simulated cluster.
///
/// Construct via [`LatencyModel::default`] and override fields, builder
/// style, with the `with_*` methods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyModel {
    /// Cost of probing one Bloom filter resident in memory.
    pub memory_probe: Duration,
    /// One-way LAN latency between two MDS nodes.
    pub lan_one_way: Duration,
    /// Per-member processing overhead during a multicast round
    /// (fan-out, filter probe scheduling, reply aggregation).
    pub multicast_per_member: Duration,
    /// One random disk access (seek + rotation + transfer for a metadata
    /// block or a spilled Bloom filter page).
    pub disk_access: Duration,
    /// Fixed CPU cost of hashing a pathname and dispatching a query.
    pub dispatch: Duration,
}

impl Default for LatencyModel {
    /// Defaults sized for a 2007-era gigabit LAN cluster:
    /// 2 µs memory probe, 200 µs one-way LAN, 20 µs per multicast member,
    /// 8 ms disk access, 1 µs dispatch.
    fn default() -> Self {
        LatencyModel {
            memory_probe: Duration::from_micros(2),
            lan_one_way: Duration::from_micros(200),
            multicast_per_member: Duration::from_micros(20),
            disk_access: Duration::from_millis(8),
            dispatch: Duration::from_micros(1),
        }
    }
}

impl LatencyModel {
    /// Returns `self` with a different disk access cost.
    #[must_use]
    pub fn with_disk_access(mut self, d: Duration) -> Self {
        self.disk_access = d;
        self
    }

    /// Returns `self` with a different one-way LAN latency.
    #[must_use]
    pub fn with_lan_one_way(mut self, d: Duration) -> Self {
        self.lan_one_way = d;
        self
    }

    /// Returns `self` with a different per-probe memory cost.
    #[must_use]
    pub fn with_memory_probe(mut self, d: Duration) -> Self {
        self.memory_probe = d;
        self
    }

    /// Cost of probing `filters` Bloom filters, of which `spilled` are on
    /// disk rather than in memory.
    ///
    /// # Panics
    ///
    /// Panics if `spilled > filters`.
    #[must_use]
    pub fn array_probe(&self, filters: usize, spilled: usize) -> Duration {
        assert!(spilled <= filters, "cannot spill more filters than exist");
        let in_memory = filters - spilled;
        self.dispatch
            + self.memory_probe * u32::try_from(in_memory).unwrap_or(u32::MAX)
            + self.disk_access * u32::try_from(spilled).unwrap_or(u32::MAX)
    }

    /// One LAN round trip (query + reply).
    #[must_use]
    pub fn unicast_rtt(&self) -> Duration {
        self.lan_one_way * 2
    }

    /// A multicast round to `members` peers: one round trip (the query
    /// fans out in parallel) plus per-member aggregation overhead.
    #[must_use]
    pub fn multicast_rtt(&self, members: usize) -> Duration {
        if members == 0 {
            return Duration::ZERO;
        }
        self.unicast_rtt() + self.multicast_per_member * u32::try_from(members).unwrap_or(u32::MAX)
    }

    /// A disk verification at the home MDS (local metadata lookup of a
    /// positive filter response).
    #[must_use]
    pub fn disk(&self) -> Duration {
        self.disk_access
    }

    /// Applies deterministic multiplicative jitter of ±`frac` to `d`.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is not within `[0, 1)`.
    #[must_use]
    pub fn jittered(&self, d: Duration, frac: f64, rng: &mut DetRng) -> Duration {
        assert!((0.0..1.0).contains(&frac), "jitter fraction out of range");
        if frac == 0.0 {
            return d;
        }
        let scale = 1.0 + frac * (2.0 * rng.next_f64() - 1.0);
        d.mul_f64(scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_preserve_ordering() {
        let m = LatencyModel::default();
        assert!(m.memory_probe < m.lan_one_way);
        assert!(m.unicast_rtt() < m.multicast_rtt(5));
        assert!(m.multicast_rtt(100) < m.disk_access);
    }

    #[test]
    fn array_probe_scales_with_spill() {
        let m = LatencyModel::default();
        let all_memory = m.array_probe(100, 0);
        let one_disk = m.array_probe(100, 1);
        assert!(one_disk > all_memory);
        assert!(one_disk >= m.disk_access);
    }

    #[test]
    #[should_panic(expected = "spill")]
    fn array_probe_rejects_excess_spill() {
        let _ = LatencyModel::default().array_probe(1, 2);
    }

    #[test]
    fn multicast_grows_with_members() {
        let m = LatencyModel::default();
        assert!(m.multicast_rtt(10) > m.multicast_rtt(2));
        assert_eq!(m.multicast_rtt(0), Duration::ZERO);
    }

    #[test]
    fn builders_override_fields() {
        let m = LatencyModel::default()
            .with_disk_access(Duration::from_millis(1))
            .with_lan_one_way(Duration::from_micros(50))
            .with_memory_probe(Duration::from_nanos(500));
        assert_eq!(m.disk_access, Duration::from_millis(1));
        assert_eq!(m.lan_one_way, Duration::from_micros(50));
        assert_eq!(m.memory_probe, Duration::from_nanos(500));
    }

    #[test]
    fn jitter_stays_within_band() {
        let m = LatencyModel::default();
        let mut rng = DetRng::new(3);
        let base = Duration::from_micros(1000);
        for _ in 0..1000 {
            let j = m.jittered(base, 0.1, &mut rng);
            assert!(j >= Duration::from_micros(900), "{j:?}");
            assert!(j <= Duration::from_micros(1100), "{j:?}");
        }
    }

    #[test]
    fn zero_jitter_is_identity() {
        let m = LatencyModel::default();
        let mut rng = DetRng::new(3);
        let base = Duration::from_micros(123);
        assert_eq!(m.jittered(base, 0.0, &mut rng), base);
    }
}
