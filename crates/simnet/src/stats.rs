//! Lightweight statistics collection for simulation runs.

use core::fmt;
use core::time::Duration;

/// An online accumulator of latency samples with logarithmic buckets for
/// percentile estimation.
///
/// Buckets span 1 ns to ~18 s in ×2 steps (64 buckets), which is ample for
/// metadata-operation latencies ranging from microsecond memory probes to
/// multi-millisecond disk storms.
///
/// # Examples
///
/// ```
/// use core::time::Duration;
/// use ghba_simnet::LatencyStats;
///
/// let mut stats = LatencyStats::new();
/// stats.record(Duration::from_micros(100));
/// stats.record(Duration::from_micros(300));
/// assert_eq!(stats.count(), 2);
/// assert_eq!(stats.mean(), Duration::from_micros(200));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyStats {
    count: u64,
    sum_nanos: u128,
    min_nanos: u64,
    max_nanos: u64,
    buckets: [u64; 64],
}

impl Default for LatencyStats {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        LatencyStats {
            count: 0,
            sum_nanos: 0,
            min_nanos: u64::MAX,
            max_nanos: 0,
            buckets: [0; 64],
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: Duration) {
        let nanos = u64::try_from(sample.as_nanos()).unwrap_or(u64::MAX);
        self.count += 1;
        self.sum_nanos += u128::from(nanos);
        self.min_nanos = self.min_nanos.min(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
        let bucket = if nanos == 0 {
            0
        } else {
            (63 - nanos.leading_zeros()) as usize
        };
        self.buckets[bucket.min(63)] += 1;
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or zero when empty.
    #[must_use]
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(
            u64::try_from(self.sum_nanos / u128::from(self.count)).unwrap_or(u64::MAX),
        )
    }

    /// Smallest sample, or zero when empty.
    #[must_use]
    pub fn min(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(self.min_nanos)
        }
    }

    /// Largest sample, or zero when empty.
    #[must_use]
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos)
    }

    /// Bucketed percentile estimate (`p` in `[0, 100]`): upper bound of the
    /// bucket containing the `p`-th percentile sample, clamped into
    /// `[min, max]` of the recorded samples. Returns zero when empty.
    ///
    /// Monotone in `p`, with `percentile(0) == min` and
    /// `percentile(100) <= max` exact at the edges: rank 1 *is* the
    /// recorded minimum, so the estimate must not report its bucket's
    /// upper bound (which can exceed the minimum by almost 2×).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Duration {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        if rank <= 1 {
            // The rank-1 sample is known exactly: it is the minimum.
            return Duration::from_nanos(self.min_nanos);
        }
        let mut cumulative = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                // Upper bound of bucket i is 2^{i+1} − 1.
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                // Clamp the low edge to the recorded minimum so the
                // estimate never dips below it (the min's bucket spans
                // values smaller than the min itself).
                return Duration::from_nanos(upper.clamp(self.min_nanos, self.max_nanos));
            }
        }
        self.max()
    }

    /// Merges raw accumulator fields collected elsewhere — the bridge for
    /// atomic (lock-free) recorders that mirror this accumulator's layout
    /// word by word and fold into the owning `LatencyStats` at a drain
    /// point. `min_nanos` must be `u64::MAX` (not zero) when `count == 0`,
    /// matching [`LatencyStats::new`]; `buckets` uses the same ×2
    /// logarithmic geometry as [`record`](LatencyStats::record).
    pub fn merge_parts(
        &mut self,
        count: u64,
        sum_nanos: u128,
        min_nanos: u64,
        max_nanos: u64,
        buckets: &[u64; 64],
    ) {
        if count == 0 {
            return;
        }
        self.count += count;
        self.sum_nanos += sum_nanos;
        self.min_nanos = self.min_nanos.min(min_nanos);
        self.max_nanos = self.max_nanos.max(max_nanos);
        for (a, b) in self.buckets.iter_mut().zip(buckets) {
            *a += b;
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.sum_nanos += other.sum_nanos;
        self.min_nanos = self.min_nanos.min(other.min_nanos);
        self.max_nanos = self.max_nanos.max(other.max_nanos);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

impl fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "no samples");
        }
        write!(
            f,
            "n={} mean={:?} min={:?} p50≈{:?} p99≈{:?} max={:?}",
            self.count,
            self.mean(),
            self.min(),
            self.percentile(50.0),
            self.percentile(99.0),
            self.max()
        )
    }
}

/// A labelled monotonic counter set, used for message and event counting.
///
/// Lives on per-lookup hot paths (`l1_false_hits` and friends fire on
/// every query), so label resolution is an O(1) hash lookup into the
/// entry list rather than a linear scan; iteration still reports counters
/// in first-touch order.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    /// `(label, value)` in first-touch order (the reporting order).
    entries: Vec<(String, u64)>,
    /// label → position in `entries`.
    index: std::collections::HashMap<String, usize>,
}

impl Counters {
    /// Creates an empty counter set.
    #[must_use]
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `amount` to the counter under `label`, creating it at zero.
    pub fn add(&mut self, label: &str, amount: u64) {
        if let Some(&at) = self.index.get(label) {
            self.entries[at].1 += amount;
        } else {
            self.index.insert(label.to_owned(), self.entries.len());
            self.entries.push((label.to_owned(), amount));
        }
    }

    /// Increments the counter under `label` by one.
    pub fn incr(&mut self, label: &str) {
        self.add(label, 1);
    }

    /// Current value of `label` (zero if never touched).
    #[must_use]
    pub fn get(&self, label: &str) -> u64 {
        self.index.get(label).map_or(0, |&at| self.entries[at].1)
    }

    /// Sum over all counters.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|(_, v)| v).sum()
    }

    /// Iterates `(label, value)` pairs in first-touch order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(l, v)| (l.as_str(), *v))
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        for (label, value) in other.iter() {
            self.add(label, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = LatencyStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), Duration::ZERO);
        assert_eq!(s.min(), Duration::ZERO);
        assert_eq!(s.max(), Duration::ZERO);
        assert_eq!(s.percentile(99.0), Duration::ZERO);
        assert_eq!(s.to_string(), "no samples");
    }

    #[test]
    fn mean_min_max() {
        let mut s = LatencyStats::new();
        for us in [100u64, 200, 300] {
            s.record(Duration::from_micros(us));
        }
        assert_eq!(s.mean(), Duration::from_micros(200));
        assert_eq!(s.min(), Duration::from_micros(100));
        assert_eq!(s.max(), Duration::from_micros(300));
    }

    #[test]
    fn percentile_bounds_sample() {
        let mut s = LatencyStats::new();
        for us in 1..=1000u64 {
            s.record(Duration::from_micros(us));
        }
        let p50 = s.percentile(50.0);
        // True median is 500 µs; bucketed estimate must bracket it within
        // a power of two.
        assert!(p50 >= Duration::from_micros(250), "{p50:?}");
        assert!(p50 <= Duration::from_micros(1100), "{p50:?}");
        assert!(s.percentile(100.0) >= s.percentile(50.0));
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_out_of_range() {
        let _ = LatencyStats::new().percentile(101.0);
    }

    #[test]
    fn percentile_zero_is_exactly_min() {
        let mut s = LatencyStats::new();
        // 300 ns lands in bucket [256, 511]; the bug returned the bucket's
        // upper bound (511 ns) for p=0, exceeding the recorded minimum.
        for ns in [300u64, 320, 10_000] {
            s.record(Duration::from_nanos(ns));
        }
        assert_eq!(s.percentile(0.0), s.min());
        assert!(s.percentile(0.0) <= s.min());
        assert!(s.min() <= s.percentile(100.0));
    }

    #[test]
    fn single_sample_percentiles_collapse_to_it() {
        let mut s = LatencyStats::new();
        s.record(Duration::from_nanos(300));
        for p in [0.0, 25.0, 50.0, 99.0, 100.0] {
            assert_eq!(s.percentile(p), Duration::from_nanos(300), "p={p}");
        }
    }

    #[test]
    fn percentiles_are_monotone_and_bracketed() {
        let mut s = LatencyStats::new();
        for ns in (1..=999u64).map(|i| i * 37 % 50_000 + 3) {
            s.record(Duration::from_nanos(ns));
        }
        let mut last = Duration::ZERO;
        for p in 0..=100 {
            let v = s.percentile(f64::from(p));
            assert!(v >= last, "percentile dipped at p={p}");
            assert!(v >= s.min() || p == 0);
            assert!(v <= s.max());
            last = v;
        }
        assert_eq!(s.percentile(0.0), s.min());
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyStats::new();
        a.record(Duration::from_micros(10));
        let mut b = LatencyStats::new();
        b.record(Duration::from_micros(30));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), Duration::from_micros(20));
        assert_eq!(a.max(), Duration::from_micros(30));
    }

    #[test]
    fn zero_duration_sample() {
        let mut s = LatencyStats::new();
        s.record(Duration::ZERO);
        assert_eq!(s.count(), 1);
        assert_eq!(s.min(), Duration::ZERO);
    }

    #[test]
    fn counters_basics() {
        let mut c = Counters::new();
        c.incr("msg");
        c.add("msg", 4);
        c.incr("other");
        assert_eq!(c.get("msg"), 5);
        assert_eq!(c.get("other"), 1);
        assert_eq!(c.get("ghost"), 0);
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn counters_merge() {
        let mut a = Counters::new();
        a.add("x", 2);
        let mut b = Counters::new();
        b.add("x", 3);
        b.add("y", 1);
        a.merge(&b);
        assert_eq!(a.get("x"), 5);
        assert_eq!(a.get("y"), 1);
    }

    #[test]
    fn counters_preserve_first_touch_order() {
        let mut c = Counters::new();
        c.incr("b");
        c.incr("a");
        let labels: Vec<&str> = c.iter().map(|(l, _)| l).collect();
        assert_eq!(labels, vec!["b", "a"]);
    }

    #[test]
    fn counters_order_stable_under_interleaved_updates() {
        let mut c = Counters::new();
        for label in ["z", "m", "a", "z", "a", "q", "m", "z"] {
            c.incr(label);
        }
        let entries: Vec<(&str, u64)> = c.iter().collect();
        assert_eq!(entries, vec![("z", 3), ("m", 2), ("a", 2), ("q", 1)]);
        assert_eq!(c.get("z"), 3);
        assert_eq!(c.get("never"), 0);
    }
}
