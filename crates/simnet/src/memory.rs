//! Per-node memory accounting and replica residency.
//!
//! Figures 8–10 of the paper hinge on one mechanism: when the Bloom filter
//! replicas an MDS must hold outgrow its RAM, the excess spills to disk and
//! every probe of a spilled replica pays a disk access. HBA (N−1 replicas
//! per node) hits this wall long before G-HBA ((N−M′)/M′ replicas per node).
//!
//! [`MemoryBudget`] models a node's RAM as a byte budget consumed by
//! prioritized charges; anything that does not fit is reported as spilled.

use core::fmt;

/// A byte budget with priority-ordered residency.
///
/// Charges are registered with a label and a priority; when the budget
/// overflows, the *lowest-priority* charges spill first (mirroring a real
/// MDS that pins its own filter and hot structures, letting cold replicas
/// page out).
///
/// # Examples
///
/// ```
/// use ghba_simnet::MemoryBudget;
///
/// let mut ram = MemoryBudget::new(1_000);
/// ram.charge("local-filter", 0, 400);   // priority 0 = most precious
/// ram.charge("replicas", 1, 900);       // cold: only 600 of 900 fit
/// assert_eq!(ram.spilled_bytes(), 300);
/// assert_eq!(ram.resident_fraction("replicas"), 600.0 / 900.0);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryBudget {
    capacity: usize,
    charges: Vec<Charge>,
}

#[derive(Debug, Clone)]
struct Charge {
    label: String,
    priority: u8,
    bytes: usize,
}

impl MemoryBudget {
    /// Creates a budget of `capacity` bytes.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        MemoryBudget {
            capacity,
            charges: Vec::new(),
        }
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Registers (or replaces) a charge under `label` with `priority`
    /// (0 = most precious, spills last).
    pub fn charge(&mut self, label: &str, priority: u8, bytes: usize) {
        if let Some(existing) = self.charges.iter_mut().find(|c| c.label == label) {
            existing.priority = priority;
            existing.bytes = bytes;
        } else {
            self.charges.push(Charge {
                label: label.to_owned(),
                priority,
                bytes,
            });
        }
    }

    /// Removes the charge under `label`, returning its size.
    pub fn release(&mut self, label: &str) -> Option<usize> {
        let pos = self.charges.iter().position(|c| c.label == label)?;
        Some(self.charges.remove(pos).bytes)
    }

    /// Sum of all registered charges, resident or not.
    #[must_use]
    pub fn charged_bytes(&self) -> usize {
        self.charges.iter().map(|c| c.bytes).sum()
    }

    /// Bytes that do not fit in RAM (spilled to disk).
    #[must_use]
    pub fn spilled_bytes(&self) -> usize {
        self.charged_bytes().saturating_sub(self.capacity)
    }

    /// `true` when everything fits in memory.
    #[must_use]
    pub fn fits(&self) -> bool {
        self.charged_bytes() <= self.capacity
    }

    /// Bytes of the charge under `label` that are resident in RAM, under
    /// priority-ordered placement (stable within equal priority by
    /// registration order).
    ///
    /// Returns 0 for an unknown label.
    #[must_use]
    pub fn resident_bytes(&self, label: &str) -> usize {
        let mut order: Vec<&Charge> = self.charges.iter().collect();
        order.sort_by_key(|c| c.priority);
        let mut remaining = self.capacity;
        for charge in order {
            let resident = charge.bytes.min(remaining);
            remaining -= resident;
            if charge.label == label {
                return resident;
            }
        }
        0
    }

    /// Fraction of the charge under `label` that is resident, in `[0, 1]`.
    ///
    /// Returns 1.0 for an unknown or zero-sized label (nothing to spill).
    #[must_use]
    pub fn resident_fraction(&self, label: &str) -> f64 {
        let total = self
            .charges
            .iter()
            .find(|c| c.label == label)
            .map_or(0, |c| c.bytes);
        if total == 0 {
            return 1.0;
        }
        self.resident_bytes(label) as f64 / total as f64
    }

    /// Given a charge under `label` consisting of `items` equal-sized
    /// items, how many are fully resident.
    ///
    /// This is the primitive the cluster simulators use: "of my R replica
    /// filters, how many can be probed at memory speed?"
    #[must_use]
    pub fn resident_items(&self, label: &str, items: usize) -> usize {
        if items == 0 {
            return 0;
        }
        let total = self
            .charges
            .iter()
            .find(|c| c.label == label)
            .map_or(0, |c| c.bytes);
        if total == 0 {
            return items;
        }
        let per_item = total / items;
        if per_item == 0 {
            return items;
        }
        (self.resident_bytes(label) / per_item).min(items)
    }
}

impl fmt::Display for MemoryBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} bytes charged ({} spilled)",
            self.charged_bytes(),
            self.capacity,
            self.spilled_bytes()
        )
    }
}

/// Convenience: bytes in `mib` mebibytes (the unit the paper's figures use,
/// e.g. "800MB").
#[must_use]
pub const fn mib(mib: usize) -> usize {
    mib * 1024 * 1024
}

/// Convenience: bytes in `gib` gibibytes.
#[must_use]
pub const fn gib(gib: usize) -> usize {
    gib * 1024 * 1024 * 1024
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everything_fits_under_capacity() {
        let mut ram = MemoryBudget::new(1000);
        ram.charge("a", 0, 300);
        ram.charge("b", 1, 300);
        assert!(ram.fits());
        assert_eq!(ram.spilled_bytes(), 0);
        assert_eq!(ram.resident_fraction("a"), 1.0);
        assert_eq!(ram.resident_fraction("b"), 1.0);
    }

    #[test]
    fn lowest_priority_spills_first() {
        let mut ram = MemoryBudget::new(1000);
        ram.charge("precious", 0, 800);
        ram.charge("cold", 5, 800);
        assert_eq!(ram.resident_bytes("precious"), 800);
        assert_eq!(ram.resident_bytes("cold"), 200);
        assert_eq!(ram.spilled_bytes(), 600);
    }

    #[test]
    fn recharging_replaces() {
        let mut ram = MemoryBudget::new(100);
        ram.charge("x", 0, 50);
        ram.charge("x", 0, 70);
        assert_eq!(ram.charged_bytes(), 70);
    }

    #[test]
    fn release_returns_bytes() {
        let mut ram = MemoryBudget::new(100);
        ram.charge("x", 0, 50);
        assert_eq!(ram.release("x"), Some(50));
        assert_eq!(ram.release("x"), None);
        assert_eq!(ram.charged_bytes(), 0);
    }

    #[test]
    fn resident_items_counts_whole_filters() {
        let mut ram = MemoryBudget::new(1000);
        ram.charge("replicas", 1, 1600); // 8 items × 200 B
        assert_eq!(ram.resident_items("replicas", 8), 5); // 1000/200
        ram.charge("pinned", 0, 500);
        assert_eq!(ram.resident_items("replicas", 8), 2); // 500/200
    }

    #[test]
    fn resident_items_unknown_label_all_resident() {
        let ram = MemoryBudget::new(10);
        assert_eq!(ram.resident_items("ghost", 4), 4);
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(mib(1), 1_048_576);
        assert_eq!(gib(1), 1_073_741_824);
    }

    #[test]
    fn display_mentions_spill() {
        let mut ram = MemoryBudget::new(10);
        ram.charge("z", 0, 25);
        let text = ram.to_string();
        assert!(text.contains("15 spilled"), "{text}");
    }
}
