//! Synthetic metadata workloads standing in for the paper's traces.
//!
//! The G-HBA evaluation replays three traces — INS and RES (Roselli et
//! al., USENIX ATC 2000) and the HP File System trace (Riedel et al.,
//! FAST 2002) — intensified by the TIF procedure of §4. The raw traces are
//! not redistributable, so this crate synthesizes statistically equivalent
//! streams:
//!
//! * [`WorkloadProfile`] — the published aggregate statistics of each
//!   trace (Tables 3–4) as generator parameters;
//! * [`WorkloadGenerator`] — an infinite, deterministic record stream
//!   realizing a profile (op mix, Zipf popularity, LRU-stack locality,
//!   open/close pairing);
//! * [`intensify`] / [`IntensifiedTrace`] — the paper's spatial+temporal
//!   scale-up: TIF concurrent subtraces with disjoint namespaces, users,
//!   and hosts, merged in timestamp order;
//! * [`ClientPartition`] — the "intensified Zipf, K-client partition"
//!   profile: per-client streams for a networked load-generator fleet,
//!   write-disjoint but overlapping on the shared Zipf-hot head;
//! * [`LoadCurve`] — time-varying intensity and skew phases (the
//!   diurnal + flash-crowd curve driving the adaptive-control bench);
//! * [`Namespace`], [`Zipf`], [`LocalityStack`] — the building blocks;
//! * [`TraceRecord`], [`MetaOp`], [`TraceStats`] — the replayable unit and
//!   its aggregate statistics.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod generator;
mod intensify;
pub mod io;
mod loadcurve;
mod namespace;
mod partition;
mod profiles;
mod record;
mod zipf;

pub use generator::WorkloadGenerator;
pub use intensify::{intensify, IntensifiedTrace};
pub use loadcurve::{LoadCurve, LoadPhase};
pub use namespace::Namespace;
pub use partition::{ClientPartition, ClientWorkload, DEFAULT_SHARED_READ_RATIO};
pub use profiles::{OpMix, WorkloadProfile};
pub use record::{MetaOp, TraceRecord, TraceStats};
pub use zipf::{LocalityStack, Zipf};
