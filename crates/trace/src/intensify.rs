//! TIF trace intensification (§4 of the paper).
//!
//! To emulate ultra large-scale I/O behaviour from modest traces, the paper
//! decomposes a trace into subtraces with **disjoint** user ids, host ids,
//! and working directories, then replays all subtraces **concurrently from
//! the same start time**, preserving timing *within* each subtrace. The
//! number of concurrent subtraces is the Trace Intensifying Factor (TIF):
//! the combined stream keeps the original histogram of file-system calls
//! but multiplies the load.
//!
//! [`intensify`] realizes exactly that construction over synthetic
//! subtrace generators: subtrace `k` gets namespace prefix `/tk`, user ids
//! offset by `k·users`, host ids offset by `k·hosts`, and an independent
//! RNG stream, and the merged iterator interleaves records in global
//! timestamp order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use ghba_simnet::SimTime;

use crate::generator::WorkloadGenerator;
use crate::profiles::WorkloadProfile;
use crate::record::TraceRecord;

struct HeapEntry {
    timestamp: SimTime,
    tiebreak: u32,
    record: TraceRecord,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.timestamp == other.timestamp && self.tiebreak == other.tiebreak
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by (timestamp, subtrace index).
        other
            .timestamp
            .cmp(&self.timestamp)
            .then_with(|| other.tiebreak.cmp(&self.tiebreak))
    }
}

/// A k-way timestamp-ordered merge of TIF subtrace generators.
///
/// Created by [`intensify`]; yields an infinite stream (bound it with
/// [`Iterator::take`]).
pub struct IntensifiedTrace {
    generators: Vec<WorkloadGenerator>,
    heap: BinaryHeap<HeapEntry>,
}

impl std::fmt::Debug for IntensifiedTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IntensifiedTrace")
            .field("subtraces", &self.generators.len())
            .field("pending", &self.heap.len())
            .finish()
    }
}

impl IntensifiedTrace {
    /// Number of concurrent subtraces (the TIF).
    #[must_use]
    pub fn tif(&self) -> u32 {
        self.generators.len() as u32
    }

    /// Total files assumed to exist before replay, across all subtraces.
    #[must_use]
    pub fn initial_population(&self) -> u64 {
        self.generators
            .iter()
            .map(WorkloadGenerator::initial_population)
            .sum()
    }

    /// Enumerates `(subtrace, file index, path)` for the pre-population
    /// set; experiments feed these to the metadata cluster before replay.
    pub fn initial_paths(&self) -> impl Iterator<Item = String> + '_ {
        self.generators
            .iter()
            .flat_map(|g| (0..g.initial_population()).map(move |i| g.path_of(i)))
    }

    /// The `per_subtrace` most popular files of **every** subtrace —
    /// the practical pre-population set when replaying only a slice of
    /// the namespace (Zipf rank 0 is file index 0, so low indices are the
    /// hot head).
    pub fn hot_paths(&self, per_subtrace: u64) -> impl Iterator<Item = String> + '_ {
        self.generators.iter().flat_map(move |g| {
            (0..per_subtrace.min(g.initial_population())).map(move |i| g.path_of(i))
        })
    }
}

impl Iterator for IntensifiedTrace {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        let entry = self.heap.pop()?;
        let idx = entry.record.subtrace as usize;
        if let Some(next) = self.generators[idx].next() {
            self.heap.push(HeapEntry {
                timestamp: next.timestamp,
                tiebreak: next.subtrace,
                record: next,
            });
        }
        Some(entry.record)
    }
}

/// Builds the TIF-intensified stream for `profile` with `tif` concurrent
/// subtraces, seeded by `seed`.
///
/// # Panics
///
/// Panics if `tif == 0`.
#[must_use]
pub fn intensify(profile: &WorkloadProfile, tif: u32, seed: u64) -> IntensifiedTrace {
    assert!(tif > 0, "TIF must be at least 1");
    let mut generators: Vec<WorkloadGenerator> = (0..tif)
        .map(|k| WorkloadGenerator::subtrace(profile.clone(), seed, k))
        .collect();
    let mut heap = BinaryHeap::with_capacity(tif as usize);
    for generator in &mut generators {
        if let Some(record) = generator.next() {
            heap.push(HeapEntry {
                timestamp: record.timestamp,
                tiebreak: record.subtrace,
                record,
            });
        }
    }
    IntensifiedTrace { generators, heap }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{MetaOp, TraceStats};

    #[test]
    fn merged_stream_is_time_ordered() {
        let records: Vec<_> = intensify(&WorkloadProfile::res(), 8, 3)
            .take(5_000)
            .collect();
        assert!(records.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    }

    #[test]
    fn all_subtraces_contribute() {
        let tif = 10;
        let stats = TraceStats::collect(intensify(&WorkloadProfile::ins(), tif, 3).take(20_000));
        assert_eq!(stats.subtraces, u64::from(tif));
    }

    #[test]
    fn intensification_preserves_op_histogram() {
        // The paper: "the combined trace maintains the same histogram of
        // file system calls as the original trace".
        let profile = WorkloadProfile::hp();
        let base = TraceStats::collect(WorkloadGenerator::new(profile.clone(), 5).take(40_000));
        let scaled = TraceStats::collect(intensify(&profile, 20, 5).take(40_000));
        for op in MetaOp::ALL {
            let b = base.count(op) as f64 / base.records as f64;
            let s = scaled.count(op) as f64 / scaled.records as f64;
            assert!((b - s).abs() < 0.01, "{op}: base {b:.4} vs scaled {s:.4}");
        }
    }

    #[test]
    fn intensification_multiplies_entity_counts() {
        let profile = WorkloadProfile::ins();
        let tif = 30;
        let stats = TraceStats::collect(intensify(&profile, tif, 7).take(200_000));
        // Table 3: INS at TIF=30 has 570 hosts and 9 780 users available;
        // a finite sample must stay within those and reach most hosts.
        assert!(stats.hosts <= u64::from(profile.hosts * tif));
        assert!(stats.users <= u64::from(profile.users * tif));
        assert!(stats.hosts > u64::from(profile.hosts * tif) * 8 / 10);
    }

    #[test]
    fn intensification_increases_load_density() {
        // Same wall-clock span must contain ~TIF× more operations.
        let profile = WorkloadProfile::res();
        let horizon = ghba_simnet::SimTime::from_secs(5);
        let base = WorkloadGenerator::new(profile.clone(), 9)
            .take_while(|r| r.timestamp <= horizon)
            .count();
        let scaled = intensify(&profile, 10, 9)
            .take_while(|r| r.timestamp <= horizon)
            .count();
        let ratio = scaled as f64 / base as f64;
        assert!((8.0..12.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn initial_population_sums_subtraces() {
        let profile = WorkloadProfile::res();
        let trace = intensify(&profile, 4, 1);
        assert_eq!(trace.initial_population(), profile.active_files * 4);
        let first = trace.initial_paths().next().unwrap();
        assert!(first.starts_with("/t0/"));
    }

    #[test]
    #[should_panic(expected = "TIF")]
    fn zero_tif_panics() {
        let _ = intensify(&WorkloadProfile::hp(), 0, 1);
    }
}
