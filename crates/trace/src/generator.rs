//! The synthetic workload generator.
//!
//! A [`WorkloadGenerator`] is an infinite iterator of [`TraceRecord`]s
//! whose aggregate statistics converge to a [`WorkloadProfile`]: op mix,
//! Zipf-skewed popularity, LRU-stack temporal locality, exponential
//! inter-arrivals, and realistic open/close pairing.

use std::collections::VecDeque;

use ghba_simnet::{DetRng, SimTime};

use crate::namespace::Namespace;
use crate::profiles::WorkloadProfile;
use crate::record::{MetaOp, TraceRecord};
use crate::zipf::LocalityStack;

/// Deterministic, profile-driven trace synthesis.
///
/// # Examples
///
/// ```
/// use ghba_trace::{WorkloadGenerator, WorkloadProfile};
///
/// let generator = WorkloadGenerator::new(WorkloadProfile::hp(), 42);
/// let records: Vec<_> = generator.take(1_000).collect();
/// assert_eq!(records.len(), 1_000);
/// // Timestamps are non-decreasing.
/// assert!(records.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    profile: WorkloadProfile,
    namespace: Namespace,
    locality: LocalityStack,
    rng: DetRng,
    clock: SimTime,
    subtrace: u32,
    user_offset: u32,
    host_offset: u32,
    /// Recently opened files awaiting a close, most recent last.
    open_files: VecDeque<u64>,
    /// Next unused file index for `create` operations.
    next_new_file: u64,
    cumulative_mix: [(MetaOp, f64); 7],
}

impl WorkloadGenerator {
    /// Creates a generator for `profile` seeded by `seed`, emitting
    /// subtrace 0 with no entity offsets.
    #[must_use]
    pub fn new(profile: WorkloadProfile, seed: u64) -> Self {
        Self::subtrace(profile, seed, 0)
    }

    /// Creates the generator for subtrace `index` of an intensified
    /// replay: its namespace, user ids, and host ids are disjoint from
    /// every other subtrace (the paper's TIF construction), and its RNG is
    /// an independent fork of `seed`.
    #[must_use]
    pub fn subtrace(profile: WorkloadProfile, seed: u64, index: u32) -> Self {
        let rng = DetRng::new(seed).fork(u64::from(index));
        let namespace = Namespace::new(&format!("t{index}"), profile.total_files.max(1), 16, 64);
        let locality = LocalityStack::new(
            profile.active_files.max(1),
            profile.zipf_exponent,
            profile.reuse_probability,
            profile.locality_stack,
        );
        let mut cumulative = 0.0;
        let cumulative_mix = MetaOp::ALL.map(|op| {
            cumulative += profile.op_mix.probability(op);
            (op, cumulative)
        });
        WorkloadGenerator {
            user_offset: index * profile.users,
            host_offset: index * profile.hosts,
            next_new_file: profile.active_files,
            profile,
            namespace,
            locality,
            rng,
            clock: SimTime::ZERO,
            subtrace: index,
            open_files: VecDeque::with_capacity(256),
            cumulative_mix,
        }
    }

    /// The profile this generator realizes.
    #[must_use]
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// The namespace file indices `0..initial_population()` are assumed to
    /// exist before replay starts; experiments pre-populate the metadata
    /// cluster with exactly these files.
    #[must_use]
    pub fn initial_population(&self) -> u64 {
        self.profile.active_files
    }

    /// Pathname of pre-population file `index` (see
    /// [`initial_population`](WorkloadGenerator::initial_population)).
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the namespace.
    #[must_use]
    pub fn path_of(&self, index: u64) -> String {
        self.namespace.path_of(index)
    }

    fn draw_op(&mut self) -> MetaOp {
        let u = self.rng.next_f64();
        for (op, cum) in self.cumulative_mix {
            if u < cum {
                return op;
            }
        }
        MetaOp::Stat
    }

    /// Allocates a fresh (never-referenced) file index; wraps back into
    /// the reference set when the namespace is exhausted (documented
    /// degenerate case for extremely long runs).
    fn fresh_file_index(&mut self) -> u64 {
        let idx = if self.next_new_file < self.namespace.len() {
            let idx = self.next_new_file;
            self.next_new_file += 1;
            idx
        } else {
            self.locality.sample(&mut self.rng)
        };
        self.locality.touch(idx);
        idx
    }

    fn draw_file_for(&mut self, op: MetaOp) -> u64 {
        match op {
            MetaOp::Create => self.fresh_file_index(),
            MetaOp::Close => {
                // Pair with a recent open when possible.
                match self.open_files.pop_back() {
                    Some(idx) => idx,
                    None => self.locality.sample(&mut self.rng),
                }
            }
            _ => self.locality.sample(&mut self.rng),
        }
    }
}

impl Iterator for WorkloadGenerator {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        let gap = self.rng.sample_exp(self.profile.mean_interarrival_us);
        self.clock += core::time::Duration::from_nanos((gap * 1_000.0) as u64);
        let op = self.draw_op();
        let file = self.draw_file_for(op);
        if op == MetaOp::Open {
            self.open_files.push_back(file);
            if self.open_files.len() > 1_024 {
                self.open_files.pop_front();
            }
        }
        // Renames move the drawn (popular) file to a fresh pathname —
        // real namespaces rename *into* new names, so the target comes
        // from the same untouched index range creates use.
        let rename_to = (op == MetaOp::Rename).then(|| {
            let target = self.fresh_file_index();
            self.namespace.path_of(target)
        });
        let user = self.user_offset + self.rng.below(u64::from(self.profile.users.max(1))) as u32;
        let host = self.host_offset + self.rng.below(u64::from(self.profile.hosts.max(1))) as u32;
        Some(TraceRecord {
            timestamp: self.clock,
            op,
            path: self.namespace.path_of(file),
            rename_to,
            user,
            host,
            subtrace: self.subtrace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceStats;

    #[test]
    fn deterministic_across_runs() {
        let a: Vec<_> = WorkloadGenerator::new(WorkloadProfile::ins(), 7)
            .take(500)
            .collect();
        let b: Vec<_> = WorkloadGenerator::new(WorkloadProfile::ins(), 7)
            .take(500)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = WorkloadGenerator::new(WorkloadProfile::ins(), 7)
            .take(100)
            .collect();
        let b: Vec<_> = WorkloadGenerator::new(WorkloadProfile::ins(), 8)
            .take(100)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn timestamps_monotone() {
        let records: Vec<_> = WorkloadGenerator::new(WorkloadProfile::res(), 3)
            .take(2_000)
            .collect();
        assert!(records.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
        assert!(records.last().unwrap().timestamp > SimTime::ZERO);
    }

    #[test]
    fn op_mix_converges_to_profile() {
        let profile = WorkloadProfile::hp();
        let stats = TraceStats::collect(WorkloadGenerator::new(profile.clone(), 11).take(100_000));
        for op in MetaOp::ALL {
            let expected = profile.op_mix.probability(op);
            let observed = stats.count(op) as f64 / stats.records as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "{op}: observed {observed:.4} vs expected {expected:.4}"
            );
        }
    }

    #[test]
    fn entities_respect_profile_bounds() {
        let profile = WorkloadProfile::ins();
        let stats = TraceStats::collect(WorkloadGenerator::new(profile.clone(), 13).take(50_000));
        assert!(stats.users <= u64::from(profile.users));
        assert!(stats.hosts <= u64::from(profile.hosts));
        // With 50k samples, essentially all users/hosts should appear.
        assert!(stats.users >= u64::from(profile.users) * 9 / 10);
        assert!(stats.hosts == u64::from(profile.hosts));
    }

    #[test]
    fn popularity_is_skewed() {
        use std::collections::HashMap;
        let mut counts: HashMap<String, u32> = HashMap::new();
        for r in WorkloadGenerator::new(WorkloadProfile::hp(), 17).take(50_000) {
            *counts.entry(r.path).or_default() += 1;
        }
        let mut freqs: Vec<u32> = counts.into_values().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top_100: u32 = freqs.iter().take(100).sum();
        let total: u32 = freqs.iter().sum();
        // Zipf + locality: the hottest 100 files draw far more than their
        // uniform share (which would be ~100/active_files ≈ 0.01 %).
        assert!(
            f64::from(top_100) / f64::from(total) > 0.10,
            "top-100 share {}",
            f64::from(top_100) / f64::from(total)
        );
    }

    #[test]
    fn subtraces_are_disjoint() {
        let a: Vec<_> = WorkloadGenerator::subtrace(WorkloadProfile::res(), 5, 0)
            .take(200)
            .collect();
        let b: Vec<_> = WorkloadGenerator::subtrace(WorkloadProfile::res(), 5, 1)
            .take(200)
            .collect();
        let paths_a: std::collections::HashSet<_> = a.iter().map(|r| &r.path).collect();
        assert!(b.iter().all(|r| !paths_a.contains(&r.path)));
        let users_a: std::collections::HashSet<_> = a.iter().map(|r| r.user).collect();
        assert!(b.iter().all(|r| !users_a.contains(&r.user)));
        assert!(b.iter().all(|r| r.subtrace == 1));
    }

    #[test]
    fn creates_reference_fresh_paths() {
        let profile = WorkloadProfile::hp();
        let population = profile.active_files;
        let gen = WorkloadGenerator::new(profile, 23);
        let creates: Vec<_> = gen
            .take(200_000)
            .filter(|r| r.op == MetaOp::Create)
            .collect();
        assert!(!creates.is_empty());
        // Created paths must come from beyond the initial population.
        for r in &creates {
            let file_part = r.path.rsplit("/f").next().unwrap();
            let idx: u64 = file_part.parse().unwrap();
            assert!(idx >= population, "create hit pre-populated file {idx}");
        }
        // And all distinct.
        let distinct: std::collections::HashSet<_> = creates.iter().map(|r| &r.path).collect();
        assert_eq!(distinct.len(), creates.len());
    }

    #[test]
    fn mean_interarrival_matches_profile() {
        let profile = WorkloadProfile::res();
        let n = 50_000usize;
        let last = WorkloadGenerator::new(profile.clone(), 29)
            .take(n)
            .last()
            .unwrap();
        let mean_us = last.timestamp.as_micros() as f64 / n as f64;
        let expected = profile.mean_interarrival_us;
        assert!(
            (mean_us - expected).abs() / expected < 0.05,
            "mean inter-arrival {mean_us} vs {expected}"
        );
    }
}
