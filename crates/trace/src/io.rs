//! Saving and loading trace slices in a simple line-oriented text format.
//!
//! Synthetic traces are cheap to regenerate, but freezing a slice to disk
//! makes experiments portable across machines and lets external tools
//! inspect exactly what was replayed. One record per line:
//!
//! ```text
//! <timestamp-ns> <op> <user> <host> <subtrace> <path>
//! ```
//!
//! `rename` records carrying a destination write it after the source
//! path, separated by a single tab:
//!
//! ```text
//! <timestamp-ns> rename <user> <host> <subtrace> <old-path>\t<new-path>
//! ```
//!
//! Pathnames may contain spaces (the path field is the rest of the line)
//! but must not contain tabs or newlines.

use std::io::{self, BufRead, Write};

use ghba_simnet::SimTime;

use crate::record::{MetaOp, TraceRecord};

fn op_token(op: MetaOp) -> &'static str {
    match op {
        MetaOp::Open => "open",
        MetaOp::Close => "close",
        MetaOp::Stat => "stat",
        MetaOp::Create => "create",
        MetaOp::Unlink => "unlink",
        MetaOp::Readdir => "readdir",
        MetaOp::Rename => "rename",
    }
}

fn parse_op(token: &str) -> Option<MetaOp> {
    Some(match token {
        "open" => MetaOp::Open,
        "close" => MetaOp::Close,
        "stat" => MetaOp::Stat,
        "create" => MetaOp::Create,
        "unlink" => MetaOp::Unlink,
        "readdir" => MetaOp::Readdir,
        "rename" => MetaOp::Rename,
        _ => return None,
    })
}

/// Writes `records` to `out`, one per line.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_trace<W: Write>(
    out: &mut W,
    records: impl IntoIterator<Item = TraceRecord>,
) -> io::Result<u64> {
    let mut written = 0;
    for r in records {
        write!(
            out,
            "{} {} {} {} {} {}",
            r.timestamp.as_nanos(),
            op_token(r.op),
            r.user,
            r.host,
            r.subtrace,
            r.path
        )?;
        match &r.rename_to {
            Some(to) => writeln!(out, "\t{to}")?,
            None => writeln!(out)?,
        }
        written += 1;
    }
    Ok(written)
}

/// Reads records from `input` (as written by [`write_trace`]).
///
/// # Errors
///
/// Returns `InvalidData` on malformed lines; propagates reader errors.
pub fn read_trace<R: BufRead>(input: R) -> io::Result<Vec<TraceRecord>> {
    let mut records = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.splitn(6, ' ');
        let parse = |field: Option<&str>, what: &str| {
            field.map(str::to_owned).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: missing {what}", lineno + 1),
                )
            })
        };
        let bad = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: bad {what}", lineno + 1),
            )
        };
        let nanos: u64 = parse(parts.next(), "timestamp")?
            .parse()
            .map_err(|_| bad("timestamp"))?;
        let op = parse_op(&parse(parts.next(), "op")?).ok_or_else(|| bad("op"))?;
        let user: u32 = parse(parts.next(), "user")?
            .parse()
            .map_err(|_| bad("user"))?;
        let host: u32 = parse(parts.next(), "host")?
            .parse()
            .map_err(|_| bad("host"))?;
        let subtrace: u32 = parse(parts.next(), "subtrace")?
            .parse()
            .map_err(|_| bad("subtrace"))?;
        let path_field = parse(parts.next(), "path")?;
        // A rename destination rides after the source, tab-separated.
        let (path, rename_to) = match path_field.split_once('\t') {
            Some((path, to)) => (path.to_owned(), Some(to.to_owned())),
            None => (path_field, None),
        };
        records.push(TraceRecord {
            timestamp: SimTime::from_nanos(nanos),
            op,
            path,
            rename_to,
            user,
            host,
            subtrace,
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadGenerator;
    use crate::profiles::WorkloadProfile;

    #[test]
    fn roundtrip_preserves_records() {
        let records: Vec<TraceRecord> = WorkloadGenerator::new(WorkloadProfile::hp(), 5)
            .take(500)
            .collect();
        let mut buffer = Vec::new();
        let written = write_trace(&mut buffer, records.clone()).unwrap();
        assert_eq!(written, 500);
        let decoded = read_trace(buffer.as_slice()).unwrap();
        assert_eq!(decoded, records);
    }

    #[test]
    fn every_op_token_roundtrips() {
        for op in MetaOp::ALL {
            assert_eq!(parse_op(op_token(op)), Some(op));
        }
        assert_eq!(parse_op("chmod"), None);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "\n\n0 stat 1 2 0 /a\n\n";
        let decoded = read_trace(text.as_bytes()).unwrap();
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].path, "/a");
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(read_trace("garbage".as_bytes()).is_err());
        assert!(read_trace("0 chmod 1 2 0 /a".as_bytes()).is_err());
        assert!(read_trace("x stat 1 2 0 /a".as_bytes()).is_err());
        assert!(read_trace("0 stat 1 2 0".as_bytes()).is_err());
    }

    #[test]
    fn paths_with_spaces_survive() {
        let record = TraceRecord {
            timestamp: SimTime::from_nanos(7),
            op: MetaOp::Open,
            path: "/dir with spaces/file name".to_owned(),
            rename_to: None,
            user: 1,
            host: 2,
            subtrace: 3,
        };
        let mut buffer = Vec::new();
        write_trace(&mut buffer, [record.clone()]).unwrap();
        let decoded = read_trace(buffer.as_slice()).unwrap();
        assert_eq!(decoded, vec![record]);
    }

    #[test]
    fn rename_targets_roundtrip() {
        let record = TraceRecord {
            timestamp: SimTime::from_nanos(9),
            op: MetaOp::Rename,
            path: "/old dir/old name".to_owned(),
            rename_to: Some("/new dir/new name".to_owned()),
            user: 4,
            host: 5,
            subtrace: 6,
        };
        let mut buffer = Vec::new();
        write_trace(&mut buffer, [record.clone()]).unwrap();
        let text = String::from_utf8(buffer.clone()).unwrap();
        assert!(text.contains("/old dir/old name\t/new dir/new name"));
        let decoded = read_trace(buffer.as_slice()).unwrap();
        assert_eq!(decoded, vec![record]);
        // Legacy rename lines (no destination) still parse.
        let legacy = read_trace("3 rename 1 2 0 /just/source".as_bytes()).unwrap();
        assert_eq!(legacy[0].rename_to, None);
        assert_eq!(legacy[0].path, "/just/source");
    }
}
