//! Synthetic file-system namespaces.
//!
//! A [`Namespace`] maps a dense file index `0..total_files` to a stable
//! pathname inside a balanced directory tree, without materializing the
//! tree. This keeps multi-million-file namespaces free: the path of file
//! `i` is a pure function of `i` and the namespace geometry.
//!
//! Under TIF intensification every subtrace gets its own namespace prefix
//! (`/t<k>/…`), which realizes the paper's requirement that subtraces have
//! *disjoint working directories*.

use core::fmt;

/// A deterministic, computed directory tree.
///
/// Files are grouped `files_per_dir` to a leaf directory; leaf directories
/// are arranged under a radix-`dirs_per_level` interior tree. Both knobs
/// shape path length and directory fan-out but not correctness.
///
/// # Examples
///
/// ```
/// use ghba_trace::Namespace;
///
/// let ns = Namespace::new("t0", 1_000_000, 16, 64);
/// let p = ns.path_of(123_456);
/// assert!(p.starts_with("/t0/"));
/// assert_eq!(ns.path_of(123_456), p); // stable
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Namespace {
    prefix: String,
    total_files: u64,
    dirs_per_level: u32,
    files_per_dir: u32,
}

impl Namespace {
    /// Creates a namespace rooted at `/{prefix}` holding `total_files`
    /// files, with the given tree geometry.
    ///
    /// # Panics
    ///
    /// Panics if `total_files == 0`, `dirs_per_level < 2`, or
    /// `files_per_dir == 0`.
    #[must_use]
    pub fn new(prefix: &str, total_files: u64, dirs_per_level: u32, files_per_dir: u32) -> Self {
        assert!(total_files > 0, "namespace cannot be empty");
        assert!(dirs_per_level >= 2, "tree radix must be at least 2");
        assert!(files_per_dir > 0, "directories must hold at least one file");
        Namespace {
            prefix: prefix.to_owned(),
            total_files,
            dirs_per_level,
            files_per_dir,
        }
    }

    /// Namespace prefix (the subtrace discriminator under TIF).
    #[must_use]
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// Number of files in the namespace.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.total_files
    }

    /// `false` — namespaces are never empty (enforced at construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of leaf directories.
    #[must_use]
    pub fn leaf_dirs(&self) -> u64 {
        self.total_files.div_ceil(u64::from(self.files_per_dir))
    }

    /// Depth of the interior tree above the leaf directories.
    #[must_use]
    pub fn depth(&self) -> u32 {
        let mut depth = 1;
        let mut reach = u64::from(self.dirs_per_level);
        while reach < self.leaf_dirs() {
            depth += 1;
            reach = reach.saturating_mul(u64::from(self.dirs_per_level));
        }
        depth
    }

    /// The pathname of file `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[must_use]
    pub fn path_of(&self, index: u64) -> String {
        assert!(index < self.total_files, "file index out of range");
        let mut dir = index / u64::from(self.files_per_dir);
        let depth = self.depth();
        let radix = u64::from(self.dirs_per_level);
        let mut components = Vec::with_capacity(depth as usize);
        for _ in 0..depth {
            components.push(dir % radix);
            dir /= radix;
        }
        components.reverse();
        let mut path = String::with_capacity(self.prefix.len() + 8 * components.len() + 16);
        path.push('/');
        path.push_str(&self.prefix);
        for c in components {
            path.push_str("/d");
            path.push_str(&c.to_string());
        }
        path.push_str("/f");
        path.push_str(&index.to_string());
        path
    }

    /// Extends the namespace by one file (used when replaying `create`
    /// operations past the initial population), returning its index.
    pub fn push_file(&mut self) -> u64 {
        let idx = self.total_files;
        self.total_files += 1;
        idx
    }
}

impl fmt::Display for Namespace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "/{} ({} files, {} leaf dirs, depth {})",
            self.prefix,
            self.total_files,
            self.leaf_dirs(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn paths_are_unique() {
        let ns = Namespace::new("t0", 10_000, 8, 32);
        let mut seen = HashSet::new();
        for i in 0..10_000 {
            assert!(seen.insert(ns.path_of(i)), "duplicate path for {i}");
        }
    }

    #[test]
    fn paths_are_stable() {
        let ns = Namespace::new("t1", 1_000, 8, 32);
        assert_eq!(ns.path_of(77), ns.path_of(77));
    }

    #[test]
    fn prefix_isolates_subtraces() {
        let a = Namespace::new("t0", 1_000, 8, 32);
        let b = Namespace::new("t1", 1_000, 8, 32);
        for i in (0..1_000).step_by(97) {
            assert_ne!(a.path_of(i), b.path_of(i));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let ns = Namespace::new("t0", 10, 8, 32);
        let _ = ns.path_of(10);
    }

    #[test]
    fn depth_covers_all_leaf_dirs() {
        let ns = Namespace::new("t0", 1_000_000, 16, 64);
        // leaf dirs = 15625; 16^4 = 65536 ≥ 15625 ≥ 16^3.
        assert_eq!(ns.leaf_dirs(), 15_625);
        assert_eq!(ns.depth(), 4);
    }

    #[test]
    fn small_namespace_depth_is_one() {
        let ns = Namespace::new("t0", 10, 8, 32);
        assert_eq!(ns.depth(), 1);
        assert!(ns.path_of(3).starts_with("/t0/d0/"));
    }

    #[test]
    fn push_file_extends() {
        let mut ns = Namespace::new("t0", 5, 8, 32);
        let idx = ns.push_file();
        assert_eq!(idx, 5);
        assert_eq!(ns.len(), 6);
        let _ = ns.path_of(5);
    }

    #[test]
    fn display_summarizes() {
        let ns = Namespace::new("hp", 100, 4, 10);
        let text = ns.to_string();
        assert!(text.contains("100 files"), "{text}");
    }
}
