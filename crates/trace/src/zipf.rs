//! Popularity and temporal-locality models for synthetic workloads.
//!
//! File-system metadata traffic is famously skewed: a small set of files
//! absorbs most operations, and recently touched files are touched again
//! soon. [`Zipf`] supplies the skew; [`LocalityStack`] supplies the
//! recency, producing the LRU-friendly reference streams that make the
//! paper's L1 hit rates (Figure 13) reproducible.

use ghba_simnet::DetRng;

/// A Zipf-distributed sampler over ranks `0..n` using Hörmann's
/// rejection-inversion method (the same algorithm as `rand_distr`),
/// exact for all exponents `s > 0`, `s ≠ 1` handled analytically and
/// `s = 1` via the logarithmic integral.
///
/// Rank 0 is the most popular item.
///
/// # Examples
///
/// ```
/// use ghba_simnet::DetRng;
/// use ghba_trace::Zipf;
///
/// let zipf = Zipf::new(1_000, 0.9);
/// let mut rng = DetRng::new(7);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    n: u64,
    s: f64,
    h_x1: f64,
    h_n: f64,
    cutoff: f64,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite and positive.
    #[must_use]
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "rank space cannot be empty");
        assert!(s.is_finite() && s > 0.0, "exponent must be positive");
        let h_x1 = Self::h_integral(1.5, s) - 1.0;
        let h_n = Self::h_integral(n as f64 + 0.5, s);
        let cutoff = 2.0 - Self::h_integral_inv(Self::h_integral(2.5, s) - Self::h(2.0, s), s);
        Zipf {
            n,
            s,
            h_x1,
            h_n,
            cutoff,
        }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.n
    }

    /// `false`; the rank space is never empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The exponent `s`.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.s
    }

    fn h_integral(x: f64, s: f64) -> f64 {
        let log_x = x.ln();
        if (s - 1.0).abs() < 1e-9 {
            log_x
        } else {
            ((1.0 - s) * log_x).exp_m1() / (1.0 - s)
        }
    }

    fn h(x: f64, s: f64) -> f64 {
        (-s * x.ln()).exp()
    }

    fn h_integral_inv(x: f64, s: f64) -> f64 {
        if (s - 1.0).abs() < 1e-9 {
            x.exp()
        } else {
            let t = (x * (1.0 - s)).max(-1.0 + 1e-15);
            (t.ln_1p() / (1.0 - s)).exp()
        }
    }

    /// Draws a rank in `0..n` (0 = most popular).
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        loop {
            let u = self.h_n + rng.next_f64() * (self.h_x1 - self.h_n);
            let x = Self::h_integral_inv(u, self.s);
            let k = x.clamp(1.0, self.n as f64).round();
            if k - x <= self.cutoff || u >= Self::h_integral(k + 0.5, self.s) - Self::h(k, self.s) {
                return (k as u64).min(self.n) - 1;
            }
        }
    }
}

/// An LRU-stack temporal-locality model layered over a [`Zipf`] popularity
/// base.
///
/// Each draw either *reuses* a recently referenced item (probability
/// `reuse_prob`, with stack positions themselves Zipf-skewed so the most
/// recent items dominate) or draws *fresh* from the global popularity
/// distribution. This mimics the stack-distance profiles measured for the
/// INS/RES/HP traces.
#[derive(Debug, Clone)]
pub struct LocalityStack {
    global: Zipf,
    stack_ranks: Zipf,
    stack: Vec<u64>,
    capacity: usize,
    reuse_prob: f64,
}

impl LocalityStack {
    /// Creates a locality model over `population` items with global skew
    /// `zipf_s`, reuse probability `reuse_prob`, and a recency stack of
    /// `stack_capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `stack_capacity == 0` or `reuse_prob` is outside `[0, 1]`.
    #[must_use]
    pub fn new(population: u64, zipf_s: f64, reuse_prob: f64, stack_capacity: usize) -> Self {
        assert!(stack_capacity > 0, "stack must hold at least one entry");
        assert!(
            (0.0..=1.0).contains(&reuse_prob),
            "reuse probability out of range"
        );
        LocalityStack {
            global: Zipf::new(population, zipf_s),
            stack_ranks: Zipf::new(stack_capacity as u64, 1.2),
            stack: Vec::with_capacity(stack_capacity),
            capacity: stack_capacity,
            reuse_prob,
        }
    }

    /// Number of items currently in the recency stack.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.stack.len()
    }

    /// Draws the next referenced item id in `0..population`.
    pub fn sample(&mut self, rng: &mut DetRng) -> u64 {
        if !self.stack.is_empty() && rng.chance(self.reuse_prob) {
            let pos = (self.stack_ranks.sample(rng) as usize).min(self.stack.len() - 1);
            // Stack index 0 = most recent (stored at the end of the Vec).
            let idx = self.stack.len() - 1 - pos;
            let item = self.stack.remove(idx);
            self.stack.push(item);
            item
        } else {
            let item = self.global.sample(rng);
            self.touch(item);
            item
        }
    }

    /// Records an externally chosen reference (e.g. a `create`) in the
    /// recency stack.
    pub fn touch(&mut self, item: u64) {
        if let Some(pos) = self.stack.iter().position(|&x| x == item) {
            self.stack.remove(pos);
        } else if self.stack.len() == self.capacity {
            self.stack.remove(0);
        }
        self.stack.push(item);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_in_range() {
        let zipf = Zipf::new(100, 0.8);
        let mut rng = DetRng::new(1);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let zipf = Zipf::new(1_000, 1.0);
        let mut rng = DetRng::new(2);
        let mut counts = vec![0u32; 1_000];
        for _ in 0..200_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[9]);
        assert!(counts[0] > counts[99]);
        assert!(counts[9] > counts[499]);
    }

    #[test]
    fn rank_one_frequency_matches_theory() {
        // For s=1, n=1000: P(rank 0) = 1/H(1000) ≈ 1/7.485 ≈ 0.1336.
        let zipf = Zipf::new(1_000, 1.0);
        let mut rng = DetRng::new(3);
        let trials = 300_000;
        let hits = (0..trials).filter(|_| zipf.sample(&mut rng) == 0).count();
        let freq = hits as f64 / f64::from(trials);
        assert!((freq - 0.1336).abs() < 0.01, "freq={freq}");
    }

    #[test]
    fn non_unit_exponent_works() {
        let zipf = Zipf::new(500, 0.75);
        let mut rng = DetRng::new(4);
        let mean: f64 = (0..50_000)
            .map(|_| zipf.sample(&mut rng) as f64)
            .sum::<f64>()
            / 50_000.0;
        // With s<1 the tail is heavy: mean rank well above zero but below
        // uniform (249.5).
        assert!(mean > 20.0 && mean < 249.5, "mean={mean}");
    }

    #[test]
    fn single_rank_always_zero() {
        let zipf = Zipf::new(1, 1.5);
        let mut rng = DetRng::new(5);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }

    #[test]
    fn determinism_across_instances() {
        let zipf = Zipf::new(1_000, 0.9);
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut a), zipf.sample(&mut b));
        }
    }

    #[test]
    fn locality_increases_reuse() {
        let population = 100_000;
        let mut rng = DetRng::new(6);
        let mut no_locality = LocalityStack::new(population, 0.9, 0.0, 512);
        let mut high_locality = LocalityStack::new(population, 0.9, 0.8, 512);

        let reuse_fraction = |stack: &mut LocalityStack, rng: &mut DetRng| {
            let mut seen = std::collections::HashSet::new();
            let mut reuses = 0;
            for _ in 0..20_000 {
                if !seen.insert(stack.sample(rng)) {
                    reuses += 1;
                }
            }
            reuses as f64 / 20_000.0
        };

        let low = reuse_fraction(&mut no_locality, &mut rng);
        let high = reuse_fraction(&mut high_locality, &mut rng);
        assert!(
            high > low + 0.2,
            "locality model ineffective: low={low} high={high}"
        );
    }

    #[test]
    fn touch_moves_to_front() {
        let mut stack = LocalityStack::new(1_000, 1.0, 1.0, 4);
        for i in 0..4 {
            stack.touch(i);
        }
        stack.touch(0); // refresh 0
        stack.touch(99); // evicts 1 (the oldest)
        assert_eq!(stack.resident(), 4);
        let mut rng = DetRng::new(7);
        // With reuse_prob=1.0 every sample comes from the stack.
        for _ in 0..100 {
            let s = stack.sample(&mut rng);
            assert!([0, 2, 3, 99].contains(&s), "unexpected {s}");
        }
    }
}
