//! Statistical profiles of the paper's three workloads.
//!
//! The INS and RES traces (Roselli, Lorch & Anderson, USENIX ATC 2000) and
//! the HP File System trace (Riedel, Kallahalla & Swaminathan, FAST 2002)
//! are not redistributable, so this module encodes their *published
//! aggregate statistics* — the numbers in Tables 3–4 of the G-HBA paper and
//! the op-mix ratios reported by the original trace studies — and the
//! generator in [`crate::WorkloadGenerator`] synthesizes streams matching
//! them.
//!
//! Substitution note (also recorded in `DESIGN.md`): the evaluation consumes
//! only the op mix, skew, temporal locality, and entity counts of these
//! traces. All are reproduced here; per-record verbatim contents are not
//! needed by any experiment.

use crate::record::MetaOp;

/// Relative frequencies of metadata operations in a workload.
///
/// Weights need not sum to one; the generator normalizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Weight of `open`.
    pub open: f64,
    /// Weight of `close`.
    pub close: f64,
    /// Weight of `stat`.
    pub stat: f64,
    /// Weight of `create`.
    pub create: f64,
    /// Weight of `unlink`.
    pub unlink: f64,
    /// Weight of `readdir`.
    pub readdir: f64,
    /// Weight of `rename`.
    pub rename: f64,
}

impl OpMix {
    /// Total weight.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.open + self.close + self.stat + self.create + self.unlink + self.readdir + self.rename
    }

    /// The weight of one op kind.
    #[must_use]
    pub fn weight(&self, op: MetaOp) -> f64 {
        match op {
            MetaOp::Open => self.open,
            MetaOp::Close => self.close,
            MetaOp::Stat => self.stat,
            MetaOp::Create => self.create,
            MetaOp::Unlink => self.unlink,
            MetaOp::Readdir => self.readdir,
            MetaOp::Rename => self.rename,
        }
    }

    /// The normalized probability of one op kind.
    ///
    /// # Panics
    ///
    /// Panics if the total weight is zero.
    #[must_use]
    pub fn probability(&self, op: MetaOp) -> f64 {
        let total = self.total();
        assert!(total > 0.0, "op mix has zero total weight");
        self.weight(op) / total
    }
}

/// The statistical fingerprint of one base (un-intensified) workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Short name ("INS", "RES", "HP").
    pub name: &'static str,
    /// Hosts issuing requests in the base trace.
    pub hosts: u32,
    /// Users active in the base trace.
    pub users: u32,
    /// Operation mix.
    pub op_mix: OpMix,
    /// Total files in the traced volume.
    pub total_files: u64,
    /// Files actually referenced (the hot set the generator draws from).
    pub active_files: u64,
    /// Zipf exponent of file popularity.
    pub zipf_exponent: f64,
    /// Probability that a reference reuses a recently accessed file.
    pub reuse_probability: f64,
    /// Recency-stack capacity backing the reuse model.
    pub locality_stack: usize,
    /// Mean inter-arrival time between operations, in microseconds, for
    /// the base trace.
    pub mean_interarrival_us: f64,
    /// The trace-intensifying factor the paper uses for this workload
    /// (Tables 3–4: RES×100, INS×30, HP×40).
    pub paper_tif: u32,
}

impl WorkloadProfile {
    /// The INS (Instructional) workload: HP-UX machines in instructional
    /// labs. Per Table 3 at TIF=30: 570 hosts, 9 780 users, 1 196.37 M
    /// opens, 1 215.33 M closes, 4 076.58 M stats — i.e. base ≈ 19 hosts,
    /// 326 users, mix ≈ open 18 % / close 19 % / stat 63 %.
    #[must_use]
    pub fn ins() -> Self {
        WorkloadProfile {
            name: "INS",
            hosts: 19,
            users: 326,
            op_mix: OpMix {
                open: 0.182,
                close: 0.185,
                stat: 0.621,
                create: 0.006,
                unlink: 0.003,
                readdir: 0.002,
                rename: 0.001,
            },
            total_files: 2_000_000,
            active_files: 400_000,
            zipf_exponent: 1.25,
            reuse_probability: 0.75,
            locality_stack: 2_048,
            mean_interarrival_us: 900.0,
            paper_tif: 30,
        }
    }

    /// The RES (Research) workload: HP-UX workstations of a research
    /// group. Per Table 3 at TIF=100: 1 300 hosts, 5 000 users, 497.2 M
    /// opens, 558.2 M closes, 7 983.9 M stats — base ≈ 13 hosts, 50 users,
    /// mix ≈ open 5.5 % / close 6.2 % / stat 88 %.
    #[must_use]
    pub fn res() -> Self {
        WorkloadProfile {
            name: "RES",
            hosts: 13,
            users: 50,
            op_mix: OpMix {
                open: 0.055,
                close: 0.061,
                stat: 0.874,
                create: 0.005,
                unlink: 0.003,
                readdir: 0.001,
                rename: 0.001,
            },
            total_files: 1_500_000,
            active_files: 250_000,
            zipf_exponent: 1.3,
            reuse_probability: 0.78,
            locality_stack: 2_048,
            mean_interarrival_us: 1_200.0,
            paper_tif: 100,
        }
    }

    /// The HP File System workload: a 10-day, 500 GB-volume trace. Per
    /// Table 4: base 94.7 M requests, 32 active users (207 accounts),
    /// 0.969 M active of 4.0 M total files; at TIF=40: 3 788 M requests,
    /// 1 280 users, 38.76 M active of 160 M files.
    ///
    /// The published table does not break requests down by kind, so the mix
    /// here follows the FAST'02 characterization (metadata traffic
    /// dominated by lookups/stats with a moderate open/close share).
    #[must_use]
    pub fn hp() -> Self {
        WorkloadProfile {
            name: "HP",
            hosts: 32,
            users: 32,
            op_mix: OpMix {
                open: 0.26,
                close: 0.26,
                stat: 0.42,
                create: 0.03,
                unlink: 0.02,
                readdir: 0.008,
                rename: 0.002,
            },
            total_files: 4_000_000,
            active_files: 969_000,
            zipf_exponent: 1.3,
            reuse_probability: 0.8,
            locality_stack: 4_096,
            mean_interarrival_us: 700.0,
            paper_tif: 40,
        }
    }

    /// All three profiles in the order the paper's figures enumerate them.
    #[must_use]
    pub fn all() -> [WorkloadProfile; 3] {
        [Self::hp(), Self::ins(), Self::res()]
    }

    /// Looks a profile up by case-insensitive name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<WorkloadProfile> {
        match name.to_ascii_lowercase().as_str() {
            "ins" => Some(Self::ins()),
            "res" => Some(Self::res()),
            "hp" => Some(Self::hp()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_are_normalized_probabilities() {
        for profile in WorkloadProfile::all() {
            let total: f64 = MetaOp::ALL
                .iter()
                .map(|&op| profile.op_mix.probability(op))
                .sum();
            assert!((total - 1.0).abs() < 1e-9, "{}: {total}", profile.name);
        }
    }

    #[test]
    fn stat_dominates_every_trace() {
        // Roselli et al.: metadata reads (stat) are >50 % of operations.
        for profile in WorkloadProfile::all() {
            assert!(
                profile.op_mix.probability(MetaOp::Stat) > profile.op_mix.probability(MetaOp::Open),
                "{}",
                profile.name
            );
        }
    }

    #[test]
    fn table3_scaled_host_and_user_counts() {
        let ins = WorkloadProfile::ins();
        assert_eq!(ins.hosts * ins.paper_tif, 570);
        assert_eq!(ins.users * ins.paper_tif, 9_780);
        let res = WorkloadProfile::res();
        assert_eq!(res.hosts * res.paper_tif, 1_300);
        assert_eq!(res.users * res.paper_tif, 5_000);
    }

    #[test]
    fn table4_scaled_file_counts() {
        let hp = WorkloadProfile::hp();
        assert_eq!(hp.total_files * u64::from(hp.paper_tif), 160_000_000);
        assert_eq!(hp.active_files * u64::from(hp.paper_tif), 38_760_000);
        assert_eq!(hp.users * hp.paper_tif, 1_280);
    }

    #[test]
    fn ins_open_close_stat_ratios_match_table3() {
        // Table 3 (TIF=30): open 1196.37, close 1215.33, stat 4076.58 (M).
        let ins = WorkloadProfile::ins();
        let open = ins.op_mix.probability(MetaOp::Open);
        let close = ins.op_mix.probability(MetaOp::Close);
        let stat = ins.op_mix.probability(MetaOp::Stat);
        let close_open = 1215.33 / 1196.37;
        let stat_open = 4076.58 / 1196.37;
        assert!((close / open - close_open).abs() < 0.05, "close/open");
        assert!((stat / open - stat_open).abs() < 0.12, "stat/open");
    }

    #[test]
    fn res_stat_share_matches_table3() {
        // Table 3 (TIF=100): open 497.2, close 558.2, stat 7983.9 (M)
        // → stat share ≈ 88 % of (open+close+stat).
        let res = WorkloadProfile::res();
        let named = res.op_mix.probability(MetaOp::Open)
            + res.op_mix.probability(MetaOp::Close)
            + res.op_mix.probability(MetaOp::Stat);
        let share = res.op_mix.probability(MetaOp::Stat) / named;
        assert!((share - 7983.9 / (497.2 + 558.2 + 7983.9)).abs() < 0.02);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(WorkloadProfile::by_name("hp").unwrap().name, "HP");
        assert_eq!(WorkloadProfile::by_name("INS").unwrap().name, "INS");
        assert!(WorkloadProfile::by_name("nope").is_none());
    }
}
