//! The "intensified Zipf, K-client partition" profile: per-client
//! workload streams for a networked load-generator fleet.
//!
//! [`intensify`](crate::intensify) merges TIF subtraces into **one**
//! stream — right for a single replay driver, wrong for a fleet of K
//! independent clients hammering the same cluster over connections of
//! their own. A fleet needs per-client streams that are:
//!
//! * **write-disjoint** — no two clients ever mutate the same pathname,
//!   so replies stay deterministic regardless of how the server
//!   interleaves concurrent batches (the property the loopback
//!   end-to-end test leans on);
//! * **read-overlapping** — all clients hammer the *same* Zipf-hot head
//!   of a shared namespace, because metadata lookup traffic in the wild
//!   converges on the same hot files no matter which client asks.
//!
//! [`ClientPartition`] realizes both: client `k` replays TIF subtrace
//! `k + 1` (namespace `/t{k+1}`, private by the TIF construction — all
//! its creates, unlinks, and renames stay there), and a configurable
//! fraction of its *reads* is redirected onto the shared subtrace-0
//! namespace through an independently seeded Zipf/locality sampler —
//! same hot head, different arrival order, per client. Redirection
//! keeps the private record's timestamp, user, and host, so per-client
//! timing stays the profile's exponential inter-arrival process and
//! timestamps stay monotone.
//!
//! Replays pre-populate [`initial_paths`](ClientPartition::initial_paths):
//! the shared active set plus every client's private active set.

use ghba_simnet::DetRng;

use crate::generator::WorkloadGenerator;
use crate::profiles::WorkloadProfile;
use crate::record::TraceRecord;

/// Mixing salt separating the shared-read sampler streams from the
/// private subtrace streams (and from each other, per client).
const SHARED_STREAM_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Default fraction of each client's reads redirected onto the shared
/// hot namespace.
pub const DEFAULT_SHARED_READ_RATIO: f64 = 0.6;

/// The K-client partition of an intensified Zipf workload (see the
/// module docs).
///
/// # Examples
///
/// ```
/// use ghba_trace::{ClientPartition, WorkloadProfile};
///
/// let fleet = ClientPartition::new(WorkloadProfile::res(), 4, 7);
/// let records: Vec<_> = fleet.client(0).take(100).collect();
/// assert_eq!(records.len(), 100);
/// // Mutations stay in client 0's private namespace.
/// assert!(records
///     .iter()
///     .filter(|r| r.op.is_mutation())
///     .all(|r| r.path.starts_with("/t1/")));
/// ```
#[derive(Debug, Clone)]
pub struct ClientPartition {
    profile: WorkloadProfile,
    clients: u32,
    seed: u64,
    shared_read_ratio: f64,
    /// Subtrace-0 reference generator: never iterated, only consulted
    /// for the shared namespace layout (`path_of`, population size).
    shared_ref: WorkloadGenerator,
}

impl ClientPartition {
    /// Builds the partition for `clients` concurrent clients of
    /// `profile`, seeded by `seed`, at the
    /// [`DEFAULT_SHARED_READ_RATIO`].
    ///
    /// # Panics
    ///
    /// Panics if `clients == 0`.
    #[must_use]
    pub fn new(profile: WorkloadProfile, clients: u32, seed: u64) -> Self {
        assert!(clients > 0, "a fleet needs at least one client");
        let shared_ref = WorkloadGenerator::subtrace(profile.clone(), seed, 0);
        ClientPartition {
            profile,
            clients,
            seed,
            shared_read_ratio: DEFAULT_SHARED_READ_RATIO,
            shared_ref,
        }
    }

    /// Sets the fraction of each client's reads redirected onto the
    /// shared hot namespace (builder style). `0.0` makes the streams
    /// fully disjoint; `1.0` makes every read shared.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= ratio <= 1.0`.
    #[must_use]
    pub fn with_shared_read_ratio(mut self, ratio: f64) -> Self {
        assert!((0.0..=1.0).contains(&ratio), "ratio must be in [0, 1]");
        self.shared_read_ratio = ratio;
        self
    }

    /// Number of clients in the fleet.
    #[must_use]
    pub fn clients(&self) -> u32 {
        self.clients
    }

    /// The stream client `k` replays. Deterministic: the same
    /// `(profile, clients, seed, k)` always yields the same records.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not a client index.
    #[must_use]
    pub fn client(&self, k: u32) -> ClientWorkload {
        assert!(k < self.clients, "client {k} outside the fleet");
        ClientWorkload {
            client: k,
            private: WorkloadGenerator::subtrace(self.profile.clone(), self.seed, k + 1),
            shared: WorkloadGenerator::subtrace(
                self.profile.clone(),
                self.seed ^ SHARED_STREAM_SALT.wrapping_mul(u64::from(k) + 1),
                0,
            ),
            mix_rng: DetRng::new(self.seed ^ SHARED_STREAM_SALT).fork(u64::from(k)),
            shared_read_ratio: self.shared_read_ratio,
        }
    }

    /// Files of the shared namespace assumed to exist before replay
    /// (its active set — the Zipf-hot head is the low indices).
    pub fn shared_initial_paths(&self) -> impl Iterator<Item = String> + '_ {
        (0..self.shared_ref.initial_population()).map(|i| self.shared_ref.path_of(i))
    }

    /// Files of client `k`'s private namespace assumed to exist before
    /// replay.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not a client index.
    pub fn client_initial_paths(&self, k: u32) -> impl Iterator<Item = String> {
        assert!(k < self.clients, "client {k} outside the fleet");
        let private = WorkloadGenerator::subtrace(self.profile.clone(), self.seed, k + 1);
        (0..private.initial_population()).map(move |i| private.path_of(i))
    }

    /// The full pre-population set: the shared active set plus every
    /// client's private active set.
    pub fn initial_paths(&self) -> impl Iterator<Item = String> + '_ {
        let clients = 0..self.clients;
        self.shared_initial_paths()
            .chain(clients.flat_map(|k| self.client_initial_paths(k)))
    }
}

/// One client's record stream (created by [`ClientPartition::client`]).
///
/// Infinite; bound it with [`Iterator::take`]. Every emitted record
/// carries `subtrace == k` (the client index), mutations target only
/// the client's private namespace, and redirected reads target the
/// shared namespace under the private stream's timing.
#[derive(Debug, Clone)]
pub struct ClientWorkload {
    client: u32,
    private: WorkloadGenerator,
    shared: WorkloadGenerator,
    mix_rng: DetRng,
    shared_read_ratio: f64,
}

impl ClientWorkload {
    /// The client index this stream belongs to.
    #[must_use]
    pub fn client(&self) -> u32 {
        self.client
    }

    /// Pulls the next *read* record off the shared sampler, discarding
    /// the mutations it interleaves (those belong to no client).
    fn next_shared_read(&mut self) -> TraceRecord {
        loop {
            let record = self
                .shared
                .next()
                .expect("workload generators are infinite");
            if record.op.is_read() {
                return record;
            }
        }
    }
}

impl Iterator for ClientWorkload {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        let mut record = self
            .private
            .next()
            .expect("workload generators are infinite");
        if record.op.is_read() && self.mix_rng.next_f64() < self.shared_read_ratio {
            // Redirect onto the shared hot namespace: take the shared
            // sample's op and path, keep the private record's timing
            // and issuing entities.
            let shared = self.next_shared_read();
            record.op = shared.op;
            record.path = shared.path;
            record.rename_to = None;
        }
        record.subtrace = self.client;
        Some(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn fleet() -> ClientPartition {
        ClientPartition::new(WorkloadProfile::res(), 3, 11)
    }

    #[test]
    fn deterministic_per_client() {
        let a: Vec<_> = fleet().client(1).take(500).collect();
        let b: Vec<_> = fleet().client(1).take(500).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn mutations_are_write_disjoint_across_clients() {
        let fleet = fleet();
        let mut write_sets: Vec<HashSet<String>> = Vec::new();
        for k in 0..fleet.clients() {
            let mut writes = HashSet::new();
            for r in fleet.client(k).take(5_000) {
                if r.op.is_mutation() {
                    assert!(
                        r.path.starts_with(&format!("/t{}/", k + 1)),
                        "client {k} mutated outside its namespace: {}",
                        r.path
                    );
                    writes.insert(r.path.clone());
                    if let Some(to) = &r.rename_to {
                        assert!(to.starts_with(&format!("/t{}/", k + 1)));
                        writes.insert(to.clone());
                    }
                }
            }
            for earlier in &write_sets {
                assert!(earlier.is_disjoint(&writes), "write sets overlap");
            }
            write_sets.push(writes);
        }
    }

    #[test]
    fn hot_read_sets_overlap_on_the_shared_namespace() {
        let fleet = fleet();
        let reads = |k: u32| -> Vec<String> {
            fleet
                .client(k)
                .take(5_000)
                .filter(|r| r.op.is_read() && r.path.starts_with("/t0/"))
                .map(|r| r.path)
                .collect()
        };
        let a: HashSet<String> = reads(0).into_iter().collect();
        let b = reads(1);
        assert!(!a.is_empty() && !b.is_empty(), "no shared reads drawn");
        // Zipf concentration: weighted by accesses, the majority of
        // client 1's shared reads land on paths client 0 also read
        // (tail paths are singletons and each client's recency stack
        // re-reads its own recent picks, but the hot head dominates).
        let hits = b.iter().filter(|p| a.contains(*p)).count();
        assert!(
            hits * 2 > b.len(),
            "hot sets barely overlap: {hits} of {} accesses",
            b.len()
        );
    }

    #[test]
    fn shared_streams_differ_across_clients() {
        let fleet = fleet();
        let shared = |k: u32| -> Vec<String> {
            fleet
                .client(k)
                .take(2_000)
                .filter(|r| r.path.starts_with("/t0/"))
                .map(|r| r.path)
                .collect()
        };
        assert_ne!(shared(0), shared(1), "clients replay identical orders");
    }

    #[test]
    fn timestamps_stay_monotone_and_records_are_stamped() {
        let records: Vec<_> = fleet().client(2).take(2_000).collect();
        assert!(records.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
        assert!(records.iter().all(|r| r.subtrace == 2));
    }

    #[test]
    fn zero_ratio_is_fully_private() {
        let fleet = ClientPartition::new(WorkloadProfile::ins(), 2, 5).with_shared_read_ratio(0.0);
        assert!(fleet
            .client(0)
            .take(2_000)
            .all(|r| r.path.starts_with("/t1/")));
    }

    #[test]
    fn initial_paths_cover_shared_and_private() {
        let fleet = fleet();
        let paths: Vec<String> = fleet.initial_paths().collect();
        let expected = u64::from(fleet.clients() + 1) * WorkloadProfile::res().active_files;
        assert_eq!(paths.len() as u64, expected);
        assert!(paths.iter().any(|p| p.starts_with("/t0/")));
        assert!(paths.iter().any(|p| p.starts_with("/t3/")));
        let distinct: HashSet<_> = paths.iter().collect();
        assert_eq!(distinct.len(), paths.len());
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_panics() {
        let _ = ClientPartition::new(WorkloadProfile::hp(), 0, 1);
    }
}
