//! Time-varying load curves: the missing axis of the static profiles.
//!
//! [`WorkloadProfile`] fixes *what* the traffic looks like;
//! a [`LoadCurve`] fixes *when* and *where* it lands. A curve is a
//! sequence of [`LoadPhase`]s over a normalized `[0, 1)` timeline,
//! each phase carrying an intensity multiplier (against the run's
//! nominal rate) and an optional hot focus — the fraction of traffic
//! collapsed onto one region of the key space. The canonical curve,
//! [`LoadCurve::diurnal_flash`], is a diurnal swell with a flash crowd
//! spike: the adaptive-control benchmark drives it at the online
//! controller to force split (flash), merge (night trough), and
//! rebalance (skewed shoulders) decisions within one run.

/// One phase of a [`LoadCurve`].
#[derive(Debug, Clone, PartialEq)]
pub struct LoadPhase {
    /// Display name (`"night"`, `"flash"`, …).
    pub name: &'static str,
    /// Phase length as a fraction of the whole run; a curve's
    /// durations sum to 1.0.
    pub duration: f64,
    /// Traffic intensity relative to the run's nominal rate
    /// (`1.0` = nominal, `0.2` = trough, `6.0` = flash crowd).
    pub intensity: f64,
    /// Fraction of this phase's traffic aimed at the hot region
    /// (`0.0` = uniform). The *driver* decides what "the hot region"
    /// is — typically one group's entry servers.
    pub hot_focus: f64,
}

/// A piecewise-constant load curve over a normalized `[0, 1)` run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadCurve {
    phases: Vec<LoadPhase>,
}

impl LoadCurve {
    /// Builds a curve from `phases`, normalizing durations so they sum
    /// to 1.0.
    ///
    /// # Panics
    ///
    /// Panics when `phases` is empty or all durations are zero.
    #[must_use]
    pub fn new(mut phases: Vec<LoadPhase>) -> Self {
        assert!(!phases.is_empty(), "a load curve needs at least one phase");
        let total: f64 = phases.iter().map(|p| p.duration.max(0.0)).sum();
        assert!(total > 0.0, "a load curve needs positive total duration");
        for phase in &mut phases {
            phase.duration = phase.duration.max(0.0) / total;
        }
        LoadCurve { phases }
    }

    /// The paper-style evaluation curve: a diurnal swell from a night
    /// trough through a morning ramp into a working-day plateau, with
    /// a flash crowd mid-day (6× nominal, 90% of it focused on one hot
    /// region) and an evening cool-down whose skew lands on a *second*
    /// region. One pass exercises every controller decision: the flash
    /// forces a split, the trough's idle windows gate actions off, and
    /// the migrated cooldown skew forces a second, independent one.
    #[must_use]
    pub fn diurnal_flash() -> Self {
        LoadCurve::new(vec![
            LoadPhase {
                name: "night",
                duration: 0.20,
                intensity: 0.2,
                hot_focus: 0.0,
            },
            LoadPhase {
                name: "ramp",
                duration: 0.15,
                intensity: 1.0,
                hot_focus: 0.3,
            },
            LoadPhase {
                name: "day",
                duration: 0.20,
                intensity: 2.0,
                hot_focus: 0.1,
            },
            LoadPhase {
                name: "flash",
                duration: 0.15,
                intensity: 6.0,
                hot_focus: 0.9,
            },
            LoadPhase {
                name: "cooldown",
                duration: 0.15,
                intensity: 1.5,
                hot_focus: 0.4,
            },
            LoadPhase {
                name: "evening",
                duration: 0.15,
                intensity: 0.5,
                hot_focus: 0.0,
            },
        ])
    }

    /// The contraction counterpart of [`LoadCurve::diurnal_flash`]:
    /// the overnight trough *after* a flash-crowd scale-out. Day
    /// traffic decays through dusk (nominal rate, residual skew on the
    /// day's flash region), then the long trough leaves only an
    /// overnight batch region busy at 0.3× nominal — every group
    /// outside it idles far below its fair share, which is what lets
    /// the controller's merge path pack the day's split remnants back
    /// toward M*. Dawn returns uniform traffic so a driver can assert
    /// the contracted shape holds once load comes back.
    #[must_use]
    pub fn overnight_trough() -> Self {
        LoadCurve::new(vec![
            LoadPhase {
                name: "dusk",
                duration: 0.25,
                intensity: 1.0,
                hot_focus: 0.3,
            },
            LoadPhase {
                name: "trough",
                duration: 0.50,
                intensity: 0.3,
                hot_focus: 0.8,
            },
            LoadPhase {
                name: "dawn",
                duration: 0.25,
                intensity: 0.6,
                hot_focus: 0.0,
            },
        ])
    }

    /// The phases, normalized.
    #[must_use]
    pub fn phases(&self) -> &[LoadPhase] {
        &self.phases
    }

    /// The phase active at normalized time `t`; `t` is clamped into
    /// `[0, 1)`, so any drive loop indexing past the end stays on the
    /// final phase.
    #[must_use]
    pub fn phase_at(&self, t: f64) -> &LoadPhase {
        let t = t.clamp(0.0, 1.0);
        let mut acc = 0.0;
        for phase in &self.phases {
            acc += phase.duration;
            if t < acc {
                return phase;
            }
        }
        self.phases.last().expect("non-empty by construction")
    }

    /// Peak intensity across the curve (the flash crowd's multiplier).
    #[must_use]
    pub fn peak_intensity(&self) -> f64 {
        self.phases.iter().map(|p| p.intensity).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_normalize_and_phase_lookup_is_ordered() {
        let curve = LoadCurve::new(vec![
            LoadPhase {
                name: "a",
                duration: 2.0,
                intensity: 1.0,
                hot_focus: 0.0,
            },
            LoadPhase {
                name: "b",
                duration: 6.0,
                intensity: 3.0,
                hot_focus: 0.5,
            },
        ]);
        assert!((curve.phases()[0].duration - 0.25).abs() < 1e-12);
        assert_eq!(curve.phase_at(0.0).name, "a");
        assert_eq!(curve.phase_at(0.24).name, "a");
        assert_eq!(curve.phase_at(0.26).name, "b");
        assert_eq!(curve.phase_at(0.999).name, "b");
        // Past-the-end and negative times clamp instead of panicking.
        assert_eq!(curve.phase_at(7.0).name, "b");
        assert_eq!(curve.phase_at(-1.0).name, "a");
    }

    #[test]
    fn diurnal_flash_covers_the_controller_decision_space() {
        let curve = LoadCurve::diurnal_flash();
        let total: f64 = curve.phases().iter().map(|p| p.duration).sum();
        assert!((total - 1.0).abs() < 1e-12, "durations must sum to 1");
        assert_eq!(curve.peak_intensity(), 6.0);
        // The flash phase is the hottest *and* the most focused —
        // that's what forces a split decision.
        let flash = curve
            .phases()
            .iter()
            .find(|p| p.name == "flash")
            .expect("flash phase");
        assert!(flash.hot_focus >= 0.9 && flash.intensity >= 4.0);
        // The trough is calm and uniform — the idle gate must hold.
        let night = curve.phase_at(0.0);
        assert_eq!(night.name, "night");
        assert!(night.intensity < 0.5 && night.hot_focus == 0.0);
    }

    #[test]
    fn overnight_trough_shapes_the_merge_path() {
        let curve = LoadCurve::overnight_trough();
        let total: f64 = curve.phases().iter().map(|p| p.duration).sum();
        assert!((total - 1.0).abs() < 1e-12, "durations must sum to 1");
        // Dusk is the peak: the driver keeps its focus on the day's
        // flash region and migrates the later focus elsewhere.
        assert_eq!(curve.peak_intensity(), 1.0);
        assert_eq!(curve.phase_at(0.0).name, "dusk");
        // The trough starves every non-focused group below the default
        // cold bar (share ratio 1 − hot_focus = 0.2 ≤ 0.5) without the
        // dusk phase doing so (0.7 > 0.5): merges fire overnight only.
        let trough = curve.phase_at(0.5);
        assert_eq!(trough.name, "trough");
        assert!(trough.hot_focus >= 0.5 && trough.intensity < 0.5);
        let dusk = curve.phase_at(0.1);
        assert!(1.0 - dusk.hot_focus > 0.5);
        // Dawn is uniform: the contracted shape must hold under it.
        let dawn = curve.phase_at(0.9);
        assert_eq!(dawn.name, "dawn");
        assert_eq!(dawn.hot_focus, 0.0);
    }
}
