//! Trace records: the unit of work every experiment replays.

use core::fmt;

use ghba_simnet::SimTime;

/// A metadata operation kind.
///
/// The paper filters the INS/RES/HP traces down to metadata operations
/// (reads/writes of file *content* are dropped); these are the kinds that
/// survive the filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetaOp {
    /// `open(2)` — permission check + metadata fetch.
    Open,
    /// `close(2)` — releases state, may flush metadata updates.
    Close,
    /// `stat(2)` — pure metadata read; the dominant operation in all three
    /// traces.
    Stat,
    /// File creation — inserts new metadata at the home MDS.
    Create,
    /// File removal — deletes metadata at the home MDS.
    Unlink,
    /// Directory listing — metadata read against the parent directory.
    Readdir,
    /// Rename within the namespace — metadata mutation.
    Rename,
}

impl MetaOp {
    /// All operation kinds, in a stable order.
    pub const ALL: [MetaOp; 7] = [
        MetaOp::Open,
        MetaOp::Close,
        MetaOp::Stat,
        MetaOp::Create,
        MetaOp::Unlink,
        MetaOp::Readdir,
        MetaOp::Rename,
    ];

    /// `true` when the operation only reads metadata (lookup path).
    #[must_use]
    pub fn is_read(self) -> bool {
        matches!(
            self,
            MetaOp::Open | MetaOp::Close | MetaOp::Stat | MetaOp::Readdir
        )
    }

    /// `true` when the operation mutates the metadata set (and therefore
    /// the home MDS's Bloom filter).
    #[must_use]
    pub fn is_mutation(self) -> bool {
        matches!(self, MetaOp::Create | MetaOp::Unlink | MetaOp::Rename)
    }
}

impl fmt::Display for MetaOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MetaOp::Open => "open",
            MetaOp::Close => "close",
            MetaOp::Stat => "stat",
            MetaOp::Create => "create",
            MetaOp::Unlink => "unlink",
            MetaOp::Readdir => "readdir",
            MetaOp::Rename => "rename",
        };
        f.write_str(name)
    }
}

/// One replayable trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual timestamp of the operation.
    pub timestamp: SimTime,
    /// Operation kind.
    pub op: MetaOp,
    /// Full pathname of the target file.
    pub path: String,
    /// For [`MetaOp::Rename`] records: the destination pathname the file
    /// moves to. `None` on non-rename records (and on legacy rename
    /// records, which replay under a synthesized suffix).
    pub rename_to: Option<String>,
    /// Issuing user id (offset per subtrace under intensification).
    pub user: u32,
    /// Issuing host id (offset per subtrace under intensification).
    pub host: u32,
    /// Subtrace index assigned by TIF intensification (0 for the base
    /// trace).
    pub subtrace: u32,
}

/// Aggregate statistics over a stream of records — the numbers Tables 3–4
/// of the paper report for the intensified workloads.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Total record count.
    pub records: u64,
    /// Count per operation kind, indexed in [`MetaOp::ALL`] order.
    pub per_op: [u64; 7],
    /// Number of distinct users observed.
    pub users: u64,
    /// Number of distinct hosts observed.
    pub hosts: u64,
    /// Number of distinct paths observed (active files).
    pub active_files: u64,
    /// Number of distinct subtraces observed.
    pub subtraces: u64,
    /// Timestamp of the last record.
    pub span: SimTime,
}

impl TraceStats {
    /// Computes statistics over `records`, consuming the iterator.
    pub fn collect<I: IntoIterator<Item = TraceRecord>>(records: I) -> Self {
        use std::collections::HashSet;
        let mut stats = TraceStats::default();
        let mut users = HashSet::new();
        let mut hosts = HashSet::new();
        let mut paths = HashSet::new();
        let mut subtraces = HashSet::new();
        for record in records {
            stats.records += 1;
            let idx = MetaOp::ALL
                .iter()
                .position(|&op| op == record.op)
                .expect("op in ALL");
            stats.per_op[idx] += 1;
            users.insert(record.user);
            hosts.insert(record.host);
            paths.insert(record.path);
            subtraces.insert(record.subtrace);
            stats.span = stats.span.max(record.timestamp);
        }
        stats.users = users.len() as u64;
        stats.hosts = hosts.len() as u64;
        stats.active_files = paths.len() as u64;
        stats.subtraces = subtraces.len() as u64;
        stats
    }

    /// Count of one operation kind.
    #[must_use]
    pub fn count(&self, op: MetaOp) -> u64 {
        let idx = MetaOp::ALL
            .iter()
            .position(|&o| o == op)
            .expect("op in ALL");
        self.per_op[idx]
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "records={} users={} hosts={} active_files={} subtraces={} span={}",
            self.records, self.users, self.hosts, self.active_files, self.subtraces, self.span
        )?;
        for (op, count) in MetaOp::ALL.iter().zip(self.per_op) {
            if count > 0 {
                writeln!(f, "  {op}: {count}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(op: MetaOp, path: &str, user: u32) -> TraceRecord {
        TraceRecord {
            timestamp: SimTime::from_micros(u64::from(user)),
            op,
            path: path.to_owned(),
            rename_to: None,
            user,
            host: user % 3,
            subtrace: 0,
        }
    }

    #[test]
    fn op_classification() {
        assert!(MetaOp::Stat.is_read());
        assert!(MetaOp::Open.is_read());
        assert!(!MetaOp::Create.is_read());
        assert!(MetaOp::Create.is_mutation());
        assert!(MetaOp::Rename.is_mutation());
        assert!(!MetaOp::Close.is_mutation());
    }

    #[test]
    fn all_ops_covered_exactly_once() {
        for op in MetaOp::ALL {
            assert_eq!(MetaOp::ALL.iter().filter(|&&o| o == op).count(), 1);
            // Every op is either a read or a mutation, never both.
            assert!(op.is_read() ^ op.is_mutation());
        }
    }

    #[test]
    fn stats_count_distinct_entities() {
        let records = vec![
            record(MetaOp::Open, "/a", 1),
            record(MetaOp::Stat, "/a", 1),
            record(MetaOp::Stat, "/b", 2),
        ];
        let stats = TraceStats::collect(records);
        assert_eq!(stats.records, 3);
        assert_eq!(stats.count(MetaOp::Stat), 2);
        assert_eq!(stats.count(MetaOp::Open), 1);
        assert_eq!(stats.users, 2);
        assert_eq!(stats.active_files, 2);
        assert_eq!(stats.span, SimTime::from_micros(2));
    }

    #[test]
    fn empty_stats() {
        let stats = TraceStats::collect(Vec::new());
        assert_eq!(stats.records, 0);
        assert_eq!(stats.users, 0);
    }

    #[test]
    fn display_lists_ops() {
        let stats = TraceStats::collect(vec![record(MetaOp::Unlink, "/x", 9)]);
        let text = stats.to_string();
        assert!(text.contains("unlink: 1"), "{text}");
        assert!(!text.contains("rename"), "{text}");
    }
}
