//! Golden-file compatibility test for the tab-encoded trace io format.
//!
//! The checked-in fixture (`tests/data/legacy.trace`) freezes the wire
//! format as of the rename-target extension: ordinary records, pathnames
//! with spaces, a **legacy pre-rename-target** `rename` line (no
//! tab-separated destination — written before destinations existed), and
//! a modern tab-encoded rename. Any future touch of the io format must
//! keep these bytes parsing — and re-encoding — **byte-identically**;
//! a change that breaks this test breaks every trace file in the wild.

use ghba_simnet::SimTime;
use ghba_trace::io::{read_trace, write_trace};
use ghba_trace::{MetaOp, TraceRecord};

const GOLDEN: &str = include_str!("data/legacy.trace");

fn parsed() -> Vec<TraceRecord> {
    read_trace(GOLDEN.as_bytes()).expect("golden file parses")
}

#[test]
fn golden_file_parses_to_expected_records() {
    let records = parsed();
    assert_eq!(records.len(), 8);
    assert_eq!(records[0].op, MetaOp::Open);
    assert_eq!(records[0].timestamp, SimTime::from_nanos(0));
    assert_eq!(records[0].path, "/home/alice/paper.tex");
    assert_eq!(records[2].path, "/var/data/file with spaces");
    assert_eq!(
        (records[2].user, records[2].host, records[2].subtrace),
        (3, 4, 1)
    );
    assert_eq!(records[4].op, MetaOp::Unlink);
    assert_eq!(records[4].timestamp, SimTime::from_nanos(999_999_999));
    // The legacy rename line: source only, no destination.
    assert_eq!(records[6].op, MetaOp::Rename);
    assert_eq!(records[6].path, "/just/source");
    assert_eq!(records[6].rename_to, None);
    // The modern tab-encoded rename: both sides, spaces intact.
    assert_eq!(records[7].op, MetaOp::Rename);
    assert_eq!(records[7].path, "/old dir/old name");
    assert_eq!(records[7].rename_to.as_deref(), Some("/new dir/new name"));
}

#[test]
fn golden_file_round_trips_byte_identically() {
    let records = parsed();
    let mut encoded = Vec::new();
    write_trace(&mut encoded, records.clone()).expect("golden records re-encode");
    assert_eq!(
        encoded,
        GOLDEN.as_bytes(),
        "re-encoding the golden records must reproduce the file byte for byte \
         (legacy tab-less rename lines included)"
    );
    // And the round trip is a fixed point: parse(encode(parse(x))) == parse(x).
    assert_eq!(read_trace(encoded.as_slice()).expect("reparses"), records);
}
