//! Control-plane acceptance tests: the online [`GroupController`]
//! against real clusters and against adversarial synthetic telemetry.
//!
//! Three properties anchor the suite (the ISSUE-9 satellite bars):
//!
//! * **No oscillation**: a stable uniform load — real traffic, spread
//!   evenly — produces *zero* actions, tick after tick, because every
//!   group sits between the hot and cold hysteresis thresholds.
//! * **Bounded actuation**: no `LoadReport` sequence, however
//!   adversarial, makes one tick exceed the configured action budget.
//! * **Model agreement**: the controller's online `PaperModel` target
//!   tracks the offline [`AnalyticModel`] optimum the analysis crate
//!   derives from the paper (both sit on the √N ridge).

use ghba_analysis::AnalyticModel;
use ghba_core::{
    ControllerConfig, EntryPolicy, GhbaCluster, GhbaConfig, GroupController, GroupId, LoadFold,
    MdsId, MembershipEpoch, MetadataService, OpBatch, TargetM,
};
use proptest::prelude::*;

fn config(seed: u64) -> GhbaConfig {
    GhbaConfig::default()
        .with_filter_capacity(4_000)
        .with_lru_capacity(0)
        .with_max_group_size(8)
        .with_seed(seed)
}

/// Executes `per_server` lookups pinned to every server in turn —
/// traffic as uniform as the cluster can see it.
fn uniform_traffic(cluster: &mut GhbaCluster, per_server: usize) {
    for id in cluster.server_ids() {
        let mut batch = OpBatch::new().with_entry(EntryPolicy::Pinned(id));
        for i in 0..per_server {
            batch.push_lookup(format!("/u/s{}/f{i}", id.0));
        }
        cluster.execute(&batch);
    }
}

/// Satellite bar 1: stable uniform load ⇒ zero actions, forever. The
/// hysteresis gap (hot at 1.6× fair, cold at 0.5× fair) is what holds
/// the line — every group's share *is* fair here.
#[test]
fn stable_uniform_load_never_triggers_actions() {
    let mut cluster = GhbaCluster::with_servers(config(7), 24);
    let mut controller =
        GroupController::new(ControllerConfig::default().with_min_window_lookups(1));
    let handle = cluster.reconfig_handle();
    let epoch_before = cluster.membership_epoch();
    for tick in 0..20 {
        uniform_traffic(&mut cluster, 16);
        let report = cluster.load_report();
        let actions = controller.actuate(&report, &handle);
        assert!(
            actions.is_empty(),
            "tick {tick}: uniform load must plan nothing, got {actions:?}"
        );
    }
    assert_eq!(controller.actions_total(), 0);
    assert_eq!(
        cluster.membership_epoch(),
        epoch_before,
        "no action may have touched the routes"
    );
}

/// A hot group on a *real* cluster gets split by `actuate`, and the
/// untouched groups' lookups keep resolving identically afterwards.
#[test]
fn actuate_splits_the_hot_group_on_a_real_cluster() {
    let mut cluster = GhbaCluster::with_servers(config(11), 24);
    // 24 servers in 3 groups of 8; all traffic lands in MdsId(0)'s
    // group, giving it share 1.0 against a fair share of 1/3.
    let hot_gid = cluster.group_of(MdsId(0)).expect("grouped");
    let groups_before = cluster.group_count();
    for i in 0..96 {
        cluster.create_file(&format!("/hot/f{i}"));
    }
    let mut batch = OpBatch::new().with_entry(EntryPolicy::Pinned(MdsId(0)));
    for i in 0..96 {
        batch.push_lookup(format!("/hot/f{i}"));
    }
    cluster.execute(&batch);

    let mut controller =
        GroupController::new(ControllerConfig::default().with_min_window_lookups(1));
    let report = cluster.load_report();
    let hot_row = report.group(hot_gid).expect("hot group reported");
    assert!(hot_row.share > 0.9, "all traffic was pinned there");
    let handle = cluster.reconfig_handle();
    let actions = controller.actuate(&report, &handle);
    assert!(
        actions
            .iter()
            .any(|a| matches!(a, ghba_core::AdaptAction::Split(gid) if *gid == hot_gid)),
        "the hot group must split, got {actions:?}"
    );
    assert_eq!(cluster.group_count(), groups_before + 1);
    cluster.check_invariants().expect("routes stay sound");
    // The files are still found after the controller-driven split.
    for i in 0..96 {
        assert!(
            cluster.lookup(&format!("/hot/f{i}")).found(),
            "file {i} lost across the split"
        );
    }
}

/// Model agreement: the online `PaperModel` target and the analysis
/// crate's offline Γ-sweep optimum land on the same √N ridge at the
/// paper's three cluster sizes (within the spill-cliff wobble).
#[test]
fn paper_model_agrees_with_the_analytic_optimum() {
    for n in [30usize, 100, 200] {
        let online = TargetM::PaperModel.group_size(n, usize::MAX);
        let offline = AnalyticModel::new(n, 0.62).optimal_m(2 * online);
        let gap = online.abs_diff(offline);
        assert!(
            gap <= 2,
            "N={n}: online target {online} strayed from analytic optimum {offline}"
        );
    }
}

/// Builds a synthetic `LoadReport` from fuzzed rows: `groups` is a
/// list of (members, lookup-weight) pairs.
fn synth_report(window: u64, rows: &[(u8, u32)]) -> ghba_core::LoadReport {
    let fold = LoadFold::new();
    let mut next = 0u16;
    let shape: Vec<(GroupId, Vec<MdsId>)> = rows
        .iter()
        .enumerate()
        .map(|(i, &(members, _))| {
            let members: Vec<MdsId> = (0..members.clamp(1, 12))
                .map(|_| {
                    next += 1;
                    MdsId(next)
                })
                .collect();
            (GroupId(i as u16), members)
        })
        .collect();
    let mut report = fold.report(MembershipEpoch(window), u64::MAX, &shape);
    report.window = window;
    for (row, &(_, weight)) in report.groups.iter_mut().zip(rows) {
        row.lookups = f64::from(weight) + 1.0;
    }
    let total: f64 = report.groups.iter().map(|g| g.lookups).sum();
    report.total = total;
    for row in &mut report.groups {
        row.share = row.lookups / total;
    }
    report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Satellite bar 2: no report sequence exceeds the per-tick action
    /// budget — not with zero cooldown, not with adversarial shares,
    /// not across an arbitrary number of ticks.
    #[test]
    fn action_budget_holds_for_arbitrary_report_sequences(
        reports in proptest::collection::vec(
            proptest::collection::vec((1u8..12, 0u32..10_000), 1..16),
            1..24,
        ),
        budget in 1usize..4,
        cooldown in 0u64..3,
        max_group_size in 2usize..10,
    ) {
        let mut controller = GroupController::new(
            ControllerConfig::default()
                .with_budget(budget)
                .with_cooldown(cooldown)
                .with_min_window_lookups(1),
        );
        let mut total = 0u64;
        for (window, rows) in reports.iter().enumerate() {
            let report = synth_report(window as u64, rows);
            let actions = controller.plan(&report, max_group_size);
            prop_assert!(
                actions.len() <= budget,
                "window {}: {} actions breach budget {}",
                window, actions.len(), budget
            );
            total += actions.len() as u64;
        }
        prop_assert_eq!(controller.actions_total(), total);
    }

    /// Cooldown contract: once a group is planned, it stays untouched
    /// for the configured number of ticks even under an unchanged
    /// all-hot report.
    #[test]
    fn cooldown_silences_replanning(cooldown in 1u64..5) {
        let mut controller = GroupController::new(
            ControllerConfig::default()
                .with_budget(1)
                .with_cooldown(cooldown)
                .with_min_window_lookups(1),
        );
        // One 8-member group carrying ~all traffic next to two cold
        // singletons: hot every window, splittable at max 8.
        let rows = [(8u8, 100_000u32), (1, 1), (1, 1)];
        let first = controller.plan(&synth_report(0, &rows), 8);
        prop_assert_eq!(first.len(), 1, "the hot group must be planned once");
        for tick in 1..=cooldown {
            let again = controller.plan(&synth_report(tick, &rows), 8);
            prop_assert!(
                again.iter().all(|a| a.touches().0 != GroupId(0)),
                "tick {}: group 0 replanned inside its cooldown", tick
            );
        }
    }
}
