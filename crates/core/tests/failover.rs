//! Failure-injection tests: the §4.5 fail-over path (crash semantics, as
//! opposed to graceful departure).

use ghba_core::{GhbaCluster, GhbaConfig, MdsId, ReconfigError};

fn config() -> GhbaConfig {
    GhbaConfig::default()
        .with_max_group_size(4)
        .with_filter_capacity(1_000)
        .with_seed(47)
}

#[test]
fn crash_loses_only_the_victims_files() {
    let mut cluster = GhbaCluster::with_servers(config(), 10);
    let mut homes = Vec::new();
    for i in 0..200 {
        homes.push((i, cluster.create_file(&format!("/f/{i}"))));
    }
    cluster.flush_all_updates();
    let victim = MdsId(3);
    let victim_files: Vec<usize> = homes
        .iter()
        .filter(|&&(_, h)| h == victim)
        .map(|&(i, _)| i)
        .collect();
    assert!(!victim_files.is_empty(), "victim should hold some files");

    cluster.fail_mds(victim).expect("crashable");
    cluster
        .check_invariants()
        .expect("mirror restored after crash");

    for (i, home) in homes {
        let outcome = cluster.lookup(&format!("/f/{i}"));
        if home == victim {
            assert!(!outcome.found(), "file {i} should be lost with the crash");
        } else {
            assert_eq!(outcome.home, Some(home), "file {i} must survive");
        }
    }
}

#[test]
fn crashed_server_filters_are_purged_everywhere() {
    let mut cluster = GhbaCluster::with_servers(config(), 8);
    for i in 0..100 {
        cluster.create_file(&format!("/p/{i}"));
    }
    cluster.flush_all_updates();
    // Warm LRUs so stale entries naming the victim would exist.
    for i in 0..100 {
        cluster.lookup(&format!("/p/{i}"));
    }
    let victim = MdsId(1);
    cluster.fail_mds(victim).expect("crashable");
    // No group may still hold (or locate) the dead server's replica.
    for gid_size in cluster.group_sizes() {
        assert!(gid_size <= 4);
    }
    for id in cluster.server_ids() {
        assert!(!cluster.replicas_held_by(id).contains(&victim));
    }
    // Lookups never return the dead server.
    for i in 0..100 {
        let outcome = cluster.lookup(&format!("/p/{i}"));
        assert_ne!(outcome.home, Some(victim));
    }
}

#[test]
fn service_survives_cascading_failures() {
    let mut cluster = GhbaCluster::with_servers(config(), 12);
    for i in 0..150 {
        cluster.create_file(&format!("/c/{i}"));
    }
    cluster.flush_all_updates();
    for round in 0..6 {
        let victim = cluster.server_ids()[0];
        cluster.fail_mds(victim).expect("crashable");
        cluster
            .check_invariants()
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        // The cluster still answers queries (found or clean miss).
        for i in (0..150).step_by(17) {
            let _ = cluster.lookup(&format!("/c/{i}"));
        }
    }
    assert_eq!(cluster.server_count(), 6);
}

#[test]
fn crash_errors_mirror_removal_errors() {
    let mut cluster = GhbaCluster::with_servers(config(), 1);
    let only = cluster.server_ids()[0];
    assert_eq!(cluster.fail_mds(only), Err(ReconfigError::LastServer));
    assert_eq!(
        cluster.fail_mds(MdsId(404)),
        Err(ReconfigError::UnknownMds(MdsId(404)))
    );
}

#[test]
fn crash_and_rejoin_restores_capacity() {
    let mut cluster = GhbaCluster::with_servers(config(), 9);
    let victim = MdsId(4);
    cluster.fail_mds(victim).expect("crashable");
    assert_eq!(cluster.server_count(), 8);
    let replacement = cluster.add_mds();
    assert_eq!(cluster.server_count(), 9);
    assert_ne!(replacement, victim, "ids are never reused");
    cluster.check_invariants().expect("healthy after rejoin");
    let home = cluster.create_file("/after/rejoin");
    assert_eq!(cluster.lookup("/after/rejoin").home, Some(home));
}
