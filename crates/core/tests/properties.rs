//! Property-based tests: cluster invariants under arbitrary operation
//! sequences.

use ghba_core::{
    ControllerConfig, EntryPolicy, EpochGranularity, ExecutorConfig, GhbaCluster, GhbaConfig,
    GroupController, MaskCacheMode, MdsId, MetadataService, OpBatch,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Create(u16),
    Lookup(u16),
    Remove(u16),
    AddMds,
    RemoveMds(u8),
    PushUpdates,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u16..200).prop_map(Op::Create),
        4 => (0u16..200).prop_map(Op::Lookup),
        1 => (0u16..200).prop_map(Op::Remove),
        1 => Just(Op::AddMds),
        1 => any::<u8>().prop_map(Op::RemoveMds),
        1 => Just(Op::PushUpdates),
    ]
}

/// One step of the epoch-invalidation stream: a mixed op batch
/// (`(kind, file)` pairs plus a policy selector) or a reconfiguration
/// event between batches (reconfiguration cannot interleave with an
/// executing batch, but any number may land between two).
#[derive(Debug, Clone)]
enum StreamOp {
    Batch(Vec<(u8, u16)>, u8),
    AddMds,
    RemoveMds(u8),
    FailMds(u8),
    /// Standalone single-group rebalance: the reconfiguration class the
    /// per-group epochs keep every *other* group warm across.
    Rebalance(u8),
    /// One online-controller tick: close the lead cluster's load
    /// window, plan on the report, and actuate the *identical* action
    /// list on every lock-step cluster — controller-driven churn
    /// interleaved with the batch stream.
    AdaptTick,
    Flush,
}

fn arb_stream_op() -> impl Strategy<Value = StreamOp> {
    prop_oneof![
        5 => (proptest::collection::vec((0u8..8, 0u16..150), 1..12), any::<u8>())
            .prop_map(|(ops, pol)| StreamOp::Batch(ops, pol)),
        1 => Just(StreamOp::AddMds),
        1 => any::<u8>().prop_map(StreamOp::RemoveMds),
        1 => any::<u8>().prop_map(StreamOp::FailMds),
        1 => any::<u8>().prop_map(StreamOp::Rebalance),
        1 => Just(StreamOp::AdaptTick),
        1 => Just(StreamOp::Flush),
    ]
}

/// An eager controller for churn streams: no idle gate, no cooldown —
/// every tick that *can* act does, maximizing reconfigurations
/// interleaved with the batches.
fn churn_controller() -> GroupController {
    GroupController::new(
        ControllerConfig::default()
            .with_min_window_lookups(1)
            .with_cooldown(0),
    )
}

/// Drives one `StreamOp` against a set of clusters that must stay in
/// lock step (they share seeds, so deterministic policies and RNG draws
/// agree). Returns the executed batches' outcomes, one vector per
/// cluster, for the caller to compare.
fn apply_stream_op(
    clusters: &mut [&mut GhbaCluster],
    op: &StreamOp,
    next_fresh: &mut u32,
    controller: &mut GroupController,
) -> Option<Vec<Vec<ghba_core::OpOutcome>>> {
    match op {
        StreamOp::Batch(items, pol) => {
            let ids = clusters[0].server_ids();
            let policy = match pol % 3 {
                0 => EntryPolicy::Random,
                1 => EntryPolicy::Pinned(ids[*pol as usize % ids.len()]),
                _ => EntryPolicy::RoundRobin {
                    start: *pol as usize,
                },
            };
            let mut batch = OpBatch::new().with_entry(policy);
            for (kind, f) in items {
                let path = format!("/e/f{f}");
                match kind % 4 {
                    0 => batch.push_lookup(path),
                    1 => batch.push_create(path),
                    2 => batch.push_remove(path),
                    _ => {
                        let to = format!("/e/r{next_fresh}");
                        *next_fresh += 1;
                        batch.push_rename(path, to);
                    }
                }
            }
            Some(
                clusters
                    .iter_mut()
                    .map(|cluster| cluster.execute(&batch))
                    .collect(),
            )
        }
        StreamOp::AddMds => {
            if clusters[0].server_count() < 14 {
                for cluster in clusters.iter_mut() {
                    cluster.add_mds();
                }
            }
            None
        }
        StreamOp::RemoveMds(pick) => {
            if clusters[0].server_count() > 2 {
                let ids = clusters[0].server_ids();
                let victim = ids[*pick as usize % ids.len()];
                for cluster in clusters.iter_mut() {
                    cluster.remove_mds(victim).expect("removable");
                }
            }
            None
        }
        StreamOp::FailMds(pick) => {
            if clusters[0].server_count() > 2 {
                let ids = clusters[0].server_ids();
                let victim = ids[*pick as usize % ids.len()];
                for cluster in clusters.iter_mut() {
                    cluster.fail_mds(victim).expect("failable");
                }
            }
            None
        }
        StreamOp::Rebalance(pick) => {
            let gids: Vec<_> = clusters[0]
                .server_ids()
                .into_iter()
                .filter_map(|id| clusters[0].group_of(id))
                .collect();
            if !gids.is_empty() {
                let gid = gids[*pick as usize % gids.len()];
                for cluster in clusters.iter_mut() {
                    cluster.rebalance_group(gid);
                }
            }
            None
        }
        StreamOp::AdaptTick => {
            // Plan once, on the lead cluster's telemetry; handle-driven
            // actions are deterministic, so applying the same list to
            // every cluster preserves lock step exactly like the
            // explicit Rebalance event does.
            let report = clusters[0].load_report();
            let max = clusters[0].reconfig_handle().max_group_size();
            let actions = controller.plan(&report, max);
            for cluster in clusters.iter_mut() {
                let handle = cluster.reconfig_handle();
                for action in &actions {
                    action.apply(&handle);
                }
            }
            None
        }
        StreamOp::Flush => {
            for cluster in clusters.iter_mut() {
                cluster.flush_all_updates();
            }
            None
        }
    }
}

fn test_config(seed: u64) -> GhbaConfig {
    GhbaConfig::default()
        .with_max_group_size(3)
        .with_filter_capacity(500)
        .with_lru_capacity(64)
        .with_seed(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any sequence of metadata and membership operations preserves every
    /// structural invariant, and lookups always agree with ground truth.
    #[test]
    fn invariants_hold_under_arbitrary_ops(
        ops in proptest::collection::vec(arb_op(), 1..60),
        seed in 0u64..1000,
    ) {
        let mut cluster = GhbaCluster::with_servers(test_config(seed), 7);
        let mut live_paths: std::collections::HashSet<u16> =
            std::collections::HashSet::new();
        for (step, op) in ops.into_iter().enumerate() {
            match op {
                Op::Create(f) => {
                    let path = format!("/p/f{f}");
                    if !live_paths.contains(&f) {
                        cluster.create_file(&path);
                        live_paths.insert(f);
                    }
                }
                Op::Lookup(f) => {
                    let path = format!("/p/f{f}");
                    let outcome = cluster.lookup(&path);
                    let truth = cluster.true_home(&path);
                    prop_assert_eq!(
                        outcome.home, truth,
                        "step {}: lookup disagrees with ground truth", step
                    );
                    prop_assert_eq!(outcome.found(), live_paths.contains(&f));
                }
                Op::Remove(f) => {
                    let path = format!("/p/f{f}");
                    let removed = cluster.remove_file(&path);
                    prop_assert_eq!(removed.is_some(), live_paths.remove(&f));
                }
                Op::AddMds => {
                    if cluster.server_count() < 20 {
                        cluster.add_mds();
                    }
                }
                Op::RemoveMds(pick) => {
                    if cluster.server_count() > 2 {
                        let ids = cluster.server_ids();
                        let victim = ids[pick as usize % ids.len()];
                        cluster.remove_mds(victim).expect("removable");
                    }
                }
                Op::PushUpdates => {
                    cluster.flush_all_updates();
                }
            }
            if let Err(violation) = cluster.check_invariants() {
                return Err(TestCaseError::fail(format!("step {step}: {violation}")));
            }
        }
        // Every live file is still findable at the end.
        for f in live_paths {
            let path = format!("/p/f{f}");
            prop_assert!(cluster.lookup(&path).found(), "lost {}", path);
        }
    }

    /// Group sizes never exceed M; group count tracks ceil(N/M) from below.
    #[test]
    fn group_sizes_bounded(n in 1usize..40, m in 1usize..8) {
        let config = GhbaConfig::default()
            .with_max_group_size(m)
            .with_filter_capacity(100)
            .with_seed(1);
        let cluster = GhbaCluster::with_servers(config, n);
        prop_assert!(cluster.group_sizes().iter().all(|&s| s <= m));
        prop_assert_eq!(cluster.group_sizes().iter().sum::<usize>(), n);
        prop_assert!(cluster.group_count() >= n.div_ceil(m));
        cluster.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// Epoch-invalidation acceptance: under **any** interleaving of
    /// reconfiguration events (join, graceful leave, fail-stop,
    /// standalone single-group rebalances, and online-controller ticks
    /// planning real split/merge/rebalance actions from live
    /// telemetry) with mixed op batches, the
    /// persistent mask cache never serves a stale mask at **either**
    /// invalidation granularity — per-group epoch invalidation, the
    /// all-or-nothing global flush, and the cache-free walk all produce
    /// bit-identical outcomes (homes, levels, latencies, message
    /// counts, entry servers) for the same stream.
    #[test]
    fn per_group_epochs_match_global_flush_and_cache_free_walks(
        ops in proptest::collection::vec(arb_stream_op(), 1..36),
        seed in 0u64..500,
    ) {
        let base = GhbaConfig::default()
            .with_max_group_size(3)
            .with_filter_capacity(400)
            .with_lru_capacity(32)
            .with_update_threshold(128)
            .with_seed(seed);
        let mut per_group = GhbaCluster::with_servers(
            base.clone()
                .with_mask_cache(MaskCacheMode::Persistent)
                .with_epoch_granularity(EpochGranularity::PerGroup),
            6,
        );
        let mut global = GhbaCluster::with_servers(
            base.clone()
                .with_mask_cache(MaskCacheMode::Persistent)
                .with_epoch_granularity(EpochGranularity::Global),
            6,
        );
        let mut free =
            GhbaCluster::with_servers(base.with_mask_cache(MaskCacheMode::Off), 6);
        let mut next_fresh = 10_000u32;
        let mut controller = churn_controller();
        for (step, op) in ops.into_iter().enumerate() {
            let results = {
                let mut clusters = [&mut per_group, &mut global, &mut free];
                apply_stream_op(&mut clusters, &op, &mut next_fresh, &mut controller)
            };
            if let Some(results) = results {
                prop_assert_eq!(
                    &results[0], &results[2],
                    "step {}: per-group epochs diverged from the cache-free walk", step
                );
                prop_assert_eq!(
                    &results[1], &results[2],
                    "step {}: global flush diverged from the cache-free walk", step
                );
            }
            prop_assert_eq!(per_group.membership_epoch(), free.membership_epoch());
            if let Err(violation) = per_group.check_invariants() {
                return Err(TestCaseError::fail(format!("step {step}: {violation}")));
            }
        }
    }

    /// Parallel-execution acceptance: the data-parallel walk is
    /// bit-identical to the sequential walk at every worker count, for
    /// the same mixed-op stream under arbitrary reconfig interleavings
    /// (`fail_mds` included). The parallel floor is dropped to 2 so even
    /// small generated batches exercise the chunked path.
    #[test]
    fn parallel_execute_matches_sequential_across_worker_counts(
        ops in proptest::collection::vec(arb_stream_op(), 1..24),
        seed in 0u64..300,
        workers in prop_oneof![Just(2usize), Just(4), Just(7)],
    ) {
        let base = GhbaConfig::default()
            .with_max_group_size(3)
            .with_filter_capacity(400)
            .with_lru_capacity(32)
            .with_update_threshold(128)
            .with_seed(seed);
        let mut sequential = GhbaCluster::with_servers(base.clone(), 6);
        let mut parallel = GhbaCluster::with_servers(
            base.with_executor(
                ExecutorConfig::default()
                    .with_workers(workers)
                    .with_min_parallel_batch(2),
            ),
            6,
        );
        let mut next_fresh = 50_000u32;
        let mut controller = churn_controller();
        for (step, op) in ops.into_iter().enumerate() {
            let results = {
                let mut clusters = [&mut sequential, &mut parallel];
                apply_stream_op(&mut clusters, &op, &mut next_fresh, &mut controller)
            };
            if let Some(results) = results {
                prop_assert_eq!(
                    &results[1], &results[0],
                    "step {}: {} workers diverged from sequential", step, workers
                );
            }
        }
        prop_assert_eq!(
            sequential.stats().levels,
            parallel.stats().levels,
            "level statistics must agree after the stream"
        );
        prop_assert_eq!(
            sequential.stats().lookup_latency.count(),
            parallel.stats().lookup_latency.count()
        );
    }

    /// The update protocol messages are bounded by candidates across
    /// recipient groups and at least one per group.
    #[test]
    fn update_messages_bounded_by_groups(
        n in 4usize..24,
        files in 1usize..40,
        seed in 0u64..500,
    ) {
        let config = test_config(seed).with_max_group_size(4);
        let mut cluster = GhbaCluster::with_servers(config, n);
        let home = MdsId(0);
        for i in 0..files {
            cluster.create_file_at(&format!("/u/f{i}"), home);
        }
        let recipient_groups = cluster.group_count()
            - usize::from(cluster.group_of(home).is_some());
        let report = cluster.push_update(home);
        if report.refreshed {
            prop_assert!(report.messages >= recipient_groups as u64);
            // Worst case: every member of every group is an IDBFA
            // candidate.
            prop_assert!(report.messages <= n as u64);
        }
    }
}
