//! Property-based tests: cluster invariants under arbitrary operation
//! sequences.

use ghba_core::{GhbaCluster, GhbaConfig, MdsId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Create(u16),
    Lookup(u16),
    Remove(u16),
    AddMds,
    RemoveMds(u8),
    PushUpdates,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u16..200).prop_map(Op::Create),
        4 => (0u16..200).prop_map(Op::Lookup),
        1 => (0u16..200).prop_map(Op::Remove),
        1 => Just(Op::AddMds),
        1 => any::<u8>().prop_map(Op::RemoveMds),
        1 => Just(Op::PushUpdates),
    ]
}

fn test_config(seed: u64) -> GhbaConfig {
    GhbaConfig::default()
        .with_max_group_size(3)
        .with_filter_capacity(500)
        .with_lru_capacity(64)
        .with_seed(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any sequence of metadata and membership operations preserves every
    /// structural invariant, and lookups always agree with ground truth.
    #[test]
    fn invariants_hold_under_arbitrary_ops(
        ops in proptest::collection::vec(arb_op(), 1..60),
        seed in 0u64..1000,
    ) {
        let mut cluster = GhbaCluster::with_servers(test_config(seed), 7);
        let mut live_paths: std::collections::HashSet<u16> =
            std::collections::HashSet::new();
        for (step, op) in ops.into_iter().enumerate() {
            match op {
                Op::Create(f) => {
                    let path = format!("/p/f{f}");
                    if !live_paths.contains(&f) {
                        cluster.create_file(&path);
                        live_paths.insert(f);
                    }
                }
                Op::Lookup(f) => {
                    let path = format!("/p/f{f}");
                    let outcome = cluster.lookup(&path);
                    let truth = cluster.true_home(&path);
                    prop_assert_eq!(
                        outcome.home, truth,
                        "step {}: lookup disagrees with ground truth", step
                    );
                    prop_assert_eq!(outcome.found(), live_paths.contains(&f));
                }
                Op::Remove(f) => {
                    let path = format!("/p/f{f}");
                    let removed = cluster.remove_file(&path);
                    prop_assert_eq!(removed.is_some(), live_paths.remove(&f));
                }
                Op::AddMds => {
                    if cluster.server_count() < 20 {
                        cluster.add_mds();
                    }
                }
                Op::RemoveMds(pick) => {
                    if cluster.server_count() > 2 {
                        let ids = cluster.server_ids();
                        let victim = ids[pick as usize % ids.len()];
                        cluster.remove_mds(victim).expect("removable");
                    }
                }
                Op::PushUpdates => {
                    cluster.flush_all_updates();
                }
            }
            if let Err(violation) = cluster.check_invariants() {
                return Err(TestCaseError::fail(format!("step {step}: {violation}")));
            }
        }
        // Every live file is still findable at the end.
        for f in live_paths {
            let path = format!("/p/f{f}");
            prop_assert!(cluster.lookup(&path).found(), "lost {}", path);
        }
    }

    /// Group sizes never exceed M; group count tracks ceil(N/M) from below.
    #[test]
    fn group_sizes_bounded(n in 1usize..40, m in 1usize..8) {
        let config = GhbaConfig::default()
            .with_max_group_size(m)
            .with_filter_capacity(100)
            .with_seed(1);
        let cluster = GhbaCluster::with_servers(config, n);
        prop_assert!(cluster.group_sizes().iter().all(|&s| s <= m));
        prop_assert_eq!(cluster.group_sizes().iter().sum::<usize>(), n);
        prop_assert!(cluster.group_count() >= n.div_ceil(m));
        cluster.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// The update protocol messages are bounded by candidates across
    /// recipient groups and at least one per group.
    #[test]
    fn update_messages_bounded_by_groups(
        n in 4usize..24,
        files in 1usize..40,
        seed in 0u64..500,
    ) {
        let config = test_config(seed).with_max_group_size(4);
        let mut cluster = GhbaCluster::with_servers(config, n);
        let home = MdsId(0);
        for i in 0..files {
            cluster.create_file_at(&format!("/u/f{i}"), home);
        }
        let recipient_groups = cluster.group_count()
            - usize::from(cluster.group_of(home).is_some());
        let report = cluster.push_update(home);
        if report.refreshed {
            prop_assert!(report.messages >= recipient_groups as u64);
            // Worst case: every member of every group is an IDBFA
            // candidate.
            prop_assert!(report.messages <= n as u64);
        }
    }
}
