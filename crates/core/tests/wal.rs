//! Durability integration suite: the WAL record and checkpoint formats
//! pinned byte-exactly against golden fixtures, property-based
//! round-trips, the corruption sweep (bit flips and truncations yield
//! typed errors and clean tail recovery, never a panic), and
//! end-to-end recover-equivalence: a cluster rebuilt from checkpoint +
//! WAL tail is bit-identical to its uninterrupted in-memory twin.

use std::fs;
use std::path::PathBuf;

use ghba_bloom::Fingerprint;
use ghba_core::wal::{decode_record, encode_record};
use ghba_core::{
    Checkpoint, EntryPolicy, GhbaCluster, GhbaConfig, GroupId, MdsId, MetadataService, OpBatch,
    SyncPolicy, Wal, WalError, WalEvent, WalOptions, WalRecord, WriteKind, WriteRecord,
};
use proptest::prelude::*;

fn test_config() -> GhbaConfig {
    GhbaConfig::default()
        .with_filter_capacity(2_000)
        .with_max_group_size(4)
        .with_lru_capacity(0)
        .with_seed(0x1A6)
}

/// A fresh scratch WAL directory under the system temp root; removed
/// before use so reruns never see stale state.
fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ghba-wal-test-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn options(sync: SyncPolicy, checkpoint_every: u64) -> WalOptions {
    WalOptions {
        sync,
        checkpoint_every,
    }
}

fn record(path: &str, kind: fn(MdsId) -> WriteKind, home: u16) -> WriteRecord {
    WriteRecord {
        path: path.to_owned(),
        fp: Fingerprint::of(path),
        kind: kind(MdsId(home)),
    }
}

fn workload_paths() -> Vec<String> {
    (0..120).map(|i| format!("/wal/d{}/f{i}", i % 7)).collect()
}

/// A deterministic mixed workload through the pin-once pipeline:
/// create batches with interleaved drains and flush barriers, then a
/// remove batch. Two clusters built from the same config and driven
/// through this are bit-identical twins.
fn run_workload(cluster: &mut GhbaCluster) {
    let paths = workload_paths();
    for (w, chunk) in paths.chunks(30).enumerate() {
        let mut batch = OpBatch::new().with_entry(EntryPolicy::RoundRobin { start: w });
        for path in chunk {
            batch.push_create(path);
        }
        cluster.execute_concurrent(&batch);
        cluster.drain_concurrent();
        if w % 2 == 1 {
            cluster.flush_all_updates();
        }
    }
    let mut batch = OpBatch::new().with_entry(EntryPolicy::RoundRobin { start: 3 });
    for path in &paths[..20] {
        batch.push_remove(path);
    }
    cluster.execute_concurrent(&batch);
    cluster.drain_concurrent();
}

/// Captures comparable durable state: the full checkpoint with the WAL
/// watermark masked out (a recovered cluster's log position reflects
/// its history; the namespace, filters, and shape must not).
fn durable_state(cluster: &mut GhbaCluster) -> Checkpoint {
    let mut checkpoint = cluster.capture_checkpoint();
    checkpoint.wal_seq = 0;
    checkpoint
}

/// Bit-identical lookup probe: the same pinned-entry lookup batch on
/// both clusters must yield identical `OpOutcome` streams (homes,
/// levels, hop counts — everything).
fn assert_lookups_identical(a: &GhbaCluster, b: &GhbaCluster) {
    let paths = workload_paths();
    for entry in 0..a.server_count() as u16 {
        let mut batch = OpBatch::new().with_entry(EntryPolicy::Pinned(MdsId(entry)));
        for path in &paths {
            batch.push_lookup(path);
        }
        assert_eq!(
            a.execute_concurrent(&batch),
            b.execute_concurrent(&batch),
            "outcomes diverge from entry server {entry}"
        );
    }
}

// ---------------------------------------------------------------------------
// Golden fixtures: the on-disk formats, byte for byte.
// ---------------------------------------------------------------------------

/// The canonical record sequence frozen in `tests/data/wal_records.bin`.
fn golden_records() -> Vec<WalRecord> {
    vec![
        WalRecord {
            seq: 1,
            event: WalEvent::Drain {
                records: vec![
                    record("/golden/a", WriteKind::Create, 2),
                    record("/golden/b", WriteKind::Create, 0),
                ],
                staged: vec![MdsId(0), MdsId(2)],
            },
        },
        WalRecord {
            seq: 2,
            event: WalEvent::FlushAll,
        },
        WalRecord {
            seq: 3,
            event: WalEvent::Drain {
                records: vec![record("/golden/a", WriteKind::Remove, 2)],
                staged: vec![],
            },
        },
    ]
}

fn golden_log_bytes() -> Vec<u8> {
    golden_records()
        .iter()
        .flat_map(|r| encode_record(r.seq, &r.event))
        .collect()
}

/// The canonical cluster whose checkpoint is frozen in
/// `tests/data/checkpoint_v1.bin` — fully deterministic (seeded RNG,
/// deterministic entry policies), so re-deriving it must reproduce the
/// fixture byte for byte.
fn golden_cluster() -> GhbaCluster {
    let mut cluster = GhbaCluster::with_servers(test_config(), 6);
    run_workload(&mut cluster);
    cluster
}

#[test]
fn golden_wal_records_are_byte_exact() {
    let fixture: &[u8] = include_bytes!("data/wal_records.bin");
    assert_eq!(
        golden_log_bytes(),
        fixture,
        "WAL record encoding changed; bump WAL_VERSION and regenerate the fixture"
    );
    let mut at = 0;
    let mut decoded = Vec::new();
    while at < fixture.len() {
        let (record, consumed) = decode_record(&fixture[at..]).expect("fixture decodes");
        decoded.push(record);
        at += consumed;
    }
    assert_eq!(decoded, golden_records());
}

#[test]
fn golden_checkpoint_is_byte_exact() {
    let fixture: &[u8] = include_bytes!("data/checkpoint_v1.bin");
    let expected = golden_cluster().capture_checkpoint();
    assert_eq!(
        expected.to_bytes(),
        fixture,
        "checkpoint encoding or capture changed; bump WAL_VERSION and regenerate the fixture"
    );
    let decoded = Checkpoint::from_bytes(fixture).expect("fixture decodes");
    assert_eq!(decoded, expected);
    assert_eq!(
        decoded.to_bytes(),
        fixture,
        "re-encode must be byte-identical"
    );
}

/// Regenerates the golden fixtures after an intentional format change:
/// `cargo test -p ghba-core --test wal -- --ignored regenerate`.
#[test]
#[ignore = "regenerates tests/data fixtures in the source tree"]
fn regenerate_golden_fixtures() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data");
    fs::create_dir_all(dir).expect("create fixture dir");
    fs::write(format!("{dir}/wal_records.bin"), golden_log_bytes()).expect("write records");
    fs::write(
        format!("{dir}/checkpoint_v1.bin"),
        golden_cluster().capture_checkpoint().to_bytes(),
    )
    .expect("write checkpoint");
}

// ---------------------------------------------------------------------------
// Property round-trips and the corruption sweep.
// ---------------------------------------------------------------------------

fn arb_write(selector: (bool, u16, u16)) -> WriteRecord {
    let (remove, home, file) = selector;
    let path = format!("/prop/d{}/f{file}", file % 11);
    let kind = if remove {
        WriteKind::Remove(MdsId(home % 32))
    } else {
        WriteKind::Create(MdsId(home % 32))
    };
    WriteRecord {
        fp: Fingerprint::of(path.as_str()),
        path,
        kind,
    }
}

fn arb_event() -> impl Strategy<Value = WalEvent> {
    prop_oneof![
        1 => Just(WalEvent::FlushAll),
        4 => (
            proptest::collection::vec((any::<bool>(), any::<u16>(), any::<u16>()), 0..12),
            proptest::collection::vec(0u16..32, 0..8),
        )
            .prop_map(|(writes, staged)| WalEvent::Drain {
                records: writes.into_iter().map(arb_write).collect(),
                staged: staged.into_iter().map(MdsId).collect(),
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every encodable record decodes back to itself, consuming exactly
    /// its own bytes — even when followed by arbitrary garbage.
    #[test]
    fn wal_records_round_trip(
        events in proptest::collection::vec(arb_event(), 1..8),
        garbage in proptest::collection::vec(any::<u8>(), 0..40),
    ) {
        let mut log = Vec::new();
        let mut boundaries = Vec::new();
        for (i, event) in events.iter().enumerate() {
            log.extend_from_slice(&encode_record(i as u64 + 1, event));
            boundaries.push(log.len());
        }
        log.extend_from_slice(&garbage);
        let mut at = 0;
        for (i, event) in events.iter().enumerate() {
            let (record, consumed) = decode_record(&log[at..]).expect("clean record decodes");
            prop_assert_eq!(&record.event, event);
            prop_assert_eq!(record.seq, i as u64 + 1);
            at += consumed;
            prop_assert_eq!(at, boundaries[i]);
        }
    }

    /// Truncating a log at *any* byte recovers exactly the records whose
    /// frames survived whole — typed errors internally, never a panic —
    /// and physically truncates the torn tail so a second open is clean.
    #[test]
    fn torn_tails_recover_to_the_last_complete_record(
        events in proptest::collection::vec(arb_event(), 1..7),
        cut_selector in any::<u64>(),
    ) {
        let mut log = Vec::new();
        let mut boundaries = vec![0usize];
        for (i, event) in events.iter().enumerate() {
            log.extend_from_slice(&encode_record(i as u64 + 1, event));
            boundaries.push(log.len());
        }
        let cut = (cut_selector % (log.len() as u64 + 1)) as usize;
        let survivors = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();

        let dir = temp_dir(&format!("torn-{cut_selector}"));
        fs::create_dir_all(&dir).expect("create dir");
        fs::write(dir.join("wal.log"), &log[..cut]).expect("write torn log");

        let (wal, recovery) =
            Wal::open(&dir, options(SyncPolicy::None, 0)).expect("open never fails on torn tails");
        prop_assert_eq!(recovery.records.len(), survivors);
        for (i, record) in recovery.records.iter().enumerate() {
            prop_assert_eq!(&record.event, &events[i]);
        }
        prop_assert_eq!(
            recovery.truncated_bytes,
            (cut - boundaries[survivors]) as u64
        );
        prop_assert_eq!(wal.last_seq(), survivors as u64);
        drop(wal);

        // The torn tail was physically removed: reopening is clean.
        let (_, second) = Wal::open(&dir, options(SyncPolicy::None, 0)).expect("reopen");
        prop_assert_eq!(second.truncated_bytes, 0);
        prop_assert_eq!(second.records.len(), survivors);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Flipping any single bit anywhere in the log never panics and
    /// never fabricates state: recovery yields a strict prefix of the
    /// original records (the CRC stops the scan at the damage).
    #[test]
    fn bit_flips_recover_to_a_clean_prefix(
        events in proptest::collection::vec(arb_event(), 1..6),
        flip_selector in any::<u64>(),
    ) {
        let mut log = Vec::new();
        for (i, event) in events.iter().enumerate() {
            log.extend_from_slice(&encode_record(i as u64 + 1, event));
        }
        let byte = (flip_selector % log.len() as u64) as usize;
        let bit = ((flip_selector >> 32) % 8) as u8;
        log[byte] ^= 1 << bit;

        let dir = temp_dir(&format!("flip-{flip_selector}"));
        fs::create_dir_all(&dir).expect("create dir");
        fs::write(dir.join("wal.log"), &log).expect("write flipped log");

        let (_, recovery) =
            Wal::open(&dir, options(SyncPolicy::None, 0)).expect("open never fails on bit flips");
        prop_assert!(recovery.records.len() <= events.len());
        for (i, record) in recovery.records.iter().enumerate() {
            prop_assert_eq!(record.seq, i as u64 + 1, "recovered records must stay in order");
            prop_assert_eq!(
                &record.event, &events[i],
                "a recovered record must be byte-faithful to the original"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// A flipped bit anywhere in an installed checkpoint is a typed
    /// error (there is nothing safe to fall back to), never a panic and
    /// never a silently different cluster.
    #[test]
    fn checkpoint_bit_flips_are_typed_errors(flip_selector in any::<u64>()) {
        let bytes = golden_cluster().capture_checkpoint().to_bytes();
        let mut dirty = bytes.clone();
        let byte = (flip_selector % bytes.len() as u64) as usize;
        let bit = ((flip_selector >> 32) % 8) as u8;
        dirty[byte] ^= 1 << bit;
        match Checkpoint::from_bytes(&dirty) {
            Ok(decoded) => prop_assert_eq!(
                decoded.to_bytes(), bytes,
                "a decode of damaged bytes must not change meaning"
            ),
            Err(WalError::Corrupt(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Recover-equivalence: checkpoint + tail replay vs the uninterrupted twin.
// ---------------------------------------------------------------------------

#[test]
fn recovery_replays_a_full_log_bit_identically() {
    let dir = temp_dir("full-log");
    let opts = options(SyncPolicy::EveryBatch, 0);
    let mut twin = GhbaCluster::with_servers(test_config(), 6);
    run_workload(&mut twin);
    {
        let mut cluster = GhbaCluster::with_servers(test_config(), 6);
        let (wal, recovery) = Wal::open(&dir, opts).expect("fresh wal");
        assert!(recovery.checkpoint.is_none());
        assert!(recovery.records.is_empty());
        cluster.attach_wal(wal);
        run_workload(&mut cluster);
        assert_eq!(durable_state(&mut cluster), durable_state(&mut twin));
        // Dropped without any checkpoint: recovery must come entirely
        // from the log.
    }
    let mut recovered = GhbaCluster::recover(test_config(), 6, &dir, opts).expect("recover");
    recovered.check_invariants().expect("recovered invariants");
    assert_eq!(durable_state(&mut recovered), durable_state(&mut twin));
    assert_lookups_identical(&recovered, &twin);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recovery_from_checkpoint_plus_tail_matches_and_bounds_the_log() {
    let dir = temp_dir("ckpt-tail");
    let opts = options(SyncPolicy::EveryBatch, 3);
    let mut twin = GhbaCluster::with_servers(test_config(), 6);
    run_workload(&mut twin);
    {
        let mut cluster = GhbaCluster::with_servers(test_config(), 6);
        let (wal, _) = Wal::open(&dir, opts).expect("fresh wal");
        cluster.attach_wal(wal);
        run_workload(&mut cluster);
        let wal = cluster.wal().expect("attached");
        assert!(
            wal.tail_len() < wal.last_seq(),
            "automatic checkpoints must have truncated the log at least once \
             (tail {} of {} records)",
            wal.tail_len(),
            wal.last_seq()
        );
    }
    let checkpoint_bytes = fs::read(dir.join("checkpoint.bin")).expect("checkpoint installed");
    assert!(!checkpoint_bytes.is_empty());
    let mut recovered = GhbaCluster::recover(test_config(), 6, &dir, opts).expect("recover");
    recovered.check_invariants().expect("recovered invariants");
    assert_eq!(durable_state(&mut recovered), durable_state(&mut twin));
    assert_lookups_identical(&recovered, &twin);
    let _ = fs::remove_dir_all(&dir);
}

/// A crash torn mid-append recovers to exactly the state as of the last
/// *complete* drain: run N drains, snapshot durable state after each,
/// then truncate the log mid-final-record and recover.
#[test]
fn torn_tail_recovers_to_the_previous_drain_state() {
    let dir = temp_dir("torn-drain");
    let opts = options(SyncPolicy::EveryBatch, 0);
    let paths = workload_paths();
    let mut snapshots = Vec::new();
    {
        let mut cluster = GhbaCluster::with_servers(test_config(), 6);
        let (wal, _) = Wal::open(&dir, opts).expect("fresh wal");
        cluster.attach_wal(wal);
        for (w, chunk) in paths.chunks(40).enumerate() {
            let mut batch = OpBatch::new().with_entry(EntryPolicy::RoundRobin { start: w });
            for path in chunk {
                batch.push_create(path);
            }
            cluster.execute_concurrent(&batch);
            cluster.drain_concurrent();
            snapshots.push(durable_state(&mut cluster));
        }
    }
    // Tear the final record: cut a few bytes off the log tail.
    let log_path = dir.join("wal.log");
    let log = fs::read(&log_path).expect("read log");
    fs::write(&log_path, &log[..log.len() - 3]).expect("tear tail");

    let mut recovered = GhbaCluster::recover(test_config(), 6, &dir, opts).expect("recover");
    recovered.check_invariants().expect("recovered invariants");
    assert_eq!(
        durable_state(&mut recovered),
        snapshots[snapshots.len() - 2],
        "a torn final record must roll back to the last complete drain"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Recovery restores a controller-reshaped group layout exactly:
/// membership, group epochs, and the membership epoch — not the
/// deterministic startup shape.
#[test]
fn recovery_restores_a_reshaped_group_layout() {
    let dir = temp_dir("reshape");
    let config = test_config().with_max_group_size(8);
    let opts = options(SyncPolicy::EveryBatch, 0);
    let mut twin = GhbaCluster::with_servers(config.clone(), 8);
    assert_eq!(twin.reconfig_handle().group_ids().len(), 1);
    twin.reconfig_handle()
        .split_group(GroupId(0))
        .expect("split the lone group");
    run_workload(&mut twin);
    {
        let mut cluster = GhbaCluster::with_servers(config.clone(), 8);
        cluster
            .reconfig_handle()
            .split_group(GroupId(0))
            .expect("split the lone group");
        let (wal, _) = Wal::open(&dir, opts).expect("fresh wal");
        cluster.attach_wal(wal);
        run_workload(&mut cluster);
        cluster.checkpoint_now().expect("install checkpoint");
    }
    let mut recovered = GhbaCluster::recover(config, 8, &dir, opts).expect("recover");
    recovered.check_invariants().expect("recovered invariants");
    assert_eq!(recovered.membership_epoch(), twin.membership_epoch());
    assert_eq!(
        recovered.reconfig_handle().group_ids(),
        twin.reconfig_handle().group_ids()
    );
    assert_eq!(durable_state(&mut recovered), durable_state(&mut twin));
    assert_lookups_identical(&recovered, &twin);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recovery_on_an_empty_directory_is_a_fresh_cluster() {
    let dir = temp_dir("fresh");
    let opts = options(SyncPolicy::None, 0);
    let mut recovered = GhbaCluster::recover(test_config(), 6, &dir, opts).expect("recover");
    let mut fresh = GhbaCluster::with_servers(test_config(), 6);
    assert_eq!(durable_state(&mut recovered), durable_state(&mut fresh));
    // And the attached log is live: the first drain appends.
    let mut batch = OpBatch::new().with_entry(EntryPolicy::Pinned(MdsId(0)));
    batch.push_create("/fresh/a");
    recovered.execute_concurrent(&batch);
    recovered.drain_concurrent();
    assert_eq!(recovered.wal().expect("attached").last_seq(), 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recovery_refuses_a_mismatched_configuration() {
    let dir = temp_dir("mismatch");
    let opts = options(SyncPolicy::EveryBatch, 0);
    {
        let mut cluster = GhbaCluster::with_servers(test_config(), 6);
        let (wal, _) = Wal::open(&dir, opts).expect("fresh wal");
        cluster.attach_wal(wal);
        run_workload(&mut cluster);
        cluster.checkpoint_now().expect("install checkpoint");
    }
    // A different seed changes every filter: refuse, don't corrupt.
    let reseeded = test_config().with_seed(0xBAD);
    assert!(matches!(
        GhbaCluster::recover(reseeded, 6, &dir, opts),
        Err(WalError::ConfigMismatch(_))
    ));
    // A different roster cannot host the checkpointed namespace.
    assert!(matches!(
        GhbaCluster::recover(test_config(), 7, &dir, opts),
        Err(WalError::ConfigMismatch(_))
    ));
    // The matching configuration still recovers cleanly afterwards.
    GhbaCluster::recover(test_config(), 6, &dir, opts).expect("matching config recovers");
    let _ = fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary create/remove streams with arbitrary drain and flush
    /// points recover bit-identically from checkpoint + tail — at every
    /// sync policy and checkpoint cadence.
    #[test]
    fn arbitrary_workloads_recover_bit_identically(
        steps in proptest::collection::vec(
            (
                proptest::collection::vec((any::<bool>(), any::<u16>()), 1..10),
                any::<bool>(),
            ),
            1..8,
        ),
        policy_selector in any::<u8>(),
        checkpoint_every in 0u64..4,
    ) {
        let sync = match policy_selector % 3 {
            0 => SyncPolicy::EveryBatch,
            1 => SyncPolicy::GroupCommit(std::time::Duration::from_millis(5)),
            _ => SyncPolicy::None,
        };
        let opts = options(sync, checkpoint_every);
        let dir = temp_dir(&format!("prop-{policy_selector}-{checkpoint_every}"));

        let drive = |cluster: &mut GhbaCluster| {
            for (w, (ops, flush)) in steps.iter().enumerate() {
                let mut batch = OpBatch::new().with_entry(EntryPolicy::RoundRobin { start: w });
                for &(remove, file) in ops {
                    let path = format!("/pw/d{}/f{}", file % 5, file % 97);
                    if remove {
                        batch.push_remove(&path);
                    } else {
                        batch.push_create(&path);
                    }
                }
                cluster.execute_concurrent(&batch);
                cluster.drain_concurrent();
                if *flush {
                    cluster.flush_all_updates();
                }
            }
        };

        let mut twin = GhbaCluster::with_servers(test_config(), 5);
        drive(&mut twin);
        {
            let mut cluster = GhbaCluster::with_servers(test_config(), 5);
            let (wal, _) = Wal::open(&dir, opts).expect("fresh wal");
            cluster.attach_wal(wal);
            drive(&mut cluster);
            // SyncPolicy only affects power-loss durability; process
            // death keeps the page cache, which dropping the File models.
        }
        let mut recovered = GhbaCluster::recover(test_config(), 5, &dir, opts).expect("recover");
        recovered.check_invariants().expect("recovered invariants");
        prop_assert_eq!(durable_state(&mut recovered), durable_state(&mut twin));
        let _ = fs::remove_dir_all(&dir);
    }
}
