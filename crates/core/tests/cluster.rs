//! Behavioural tests for the G-HBA cluster: query hierarchy, elastic
//! membership, the update protocol, and structural invariants.

use ghba_core::{GhbaCluster, GhbaConfig, MetadataService, QueryLevel, ReconfigError};

fn small_config() -> GhbaConfig {
    GhbaConfig::default()
        .with_max_group_size(4)
        .with_filter_capacity(2_000)
        .with_bits_per_file(16.0)
        .with_seed(11)
}

fn populated(servers: usize, files: usize) -> GhbaCluster {
    let mut cluster = GhbaCluster::with_servers(small_config(), servers);
    for i in 0..files {
        cluster.create_file(&format!("/data/d{}/f{i}", i % 37));
    }
    cluster.flush_all_updates();
    cluster.reset_stats();
    cluster
}

#[test]
fn grouping_respects_max_size() {
    for n in [1usize, 3, 4, 5, 8, 13, 30] {
        let cluster = GhbaCluster::with_servers(small_config(), n);
        assert_eq!(cluster.server_count(), n);
        assert!(cluster.group_sizes().iter().all(|&s| s <= 4), "n={n}");
        assert_eq!(cluster.group_sizes().iter().sum::<usize>(), n);
        cluster
            .check_invariants()
            .unwrap_or_else(|e| panic!("n={n}: {e}"));
    }
}

#[test]
fn every_created_file_is_findable() {
    let mut cluster = populated(12, 300);
    for i in 0..300 {
        let path = format!("/data/d{}/f{i}", i % 37);
        let expected = cluster.true_home(&path).expect("file exists");
        let outcome = cluster.lookup(&path);
        assert_eq!(outcome.home, Some(expected), "path {path}");
        assert!(outcome.found());
        assert!(outcome.latency > core::time::Duration::ZERO);
    }
}

#[test]
fn nonexistent_files_resolve_to_miss_via_l4() {
    let mut cluster = populated(12, 100);
    let outcome = cluster.lookup("/definitely/not/created");
    assert!(!outcome.found());
    assert_eq!(outcome.level, QueryLevel::Nonexistent);
    // A miss must have swept the whole system.
    assert!(outcome.messages >= 2 * (12 - 1));
}

#[test]
fn repeated_lookups_hit_l1() {
    let mut cluster = populated(12, 200);
    let path = "/data/d1/f1";
    let first = cluster.lookup_from(ghba_core::MdsId(0), path);
    assert!(first.found());
    // The entry server cached (path → home) in its LRU: same entry again
    // must resolve at L1.
    let second = cluster.lookup_from(ghba_core::MdsId(0), path);
    assert_eq!(second.level, QueryLevel::L1Lru);
    assert!(second.latency < first.latency || first.level == QueryLevel::L1Lru);
}

#[test]
fn stale_replicas_push_queries_to_l4_until_update() {
    // With a huge update threshold, a freshly created file is invisible in
    // the published replicas, so remote entry servers need L4.
    let config = small_config().with_update_threshold(1_000_000);
    let mut cluster = GhbaCluster::with_servers(config, 8);
    let home = cluster.create_file("/fresh/file");
    let entry = cluster
        .server_ids()
        .into_iter()
        .find(|&id| id != home && cluster.group_of(id) != cluster.group_of(home))
        .expect("another group exists");
    let outcome = cluster.lookup_from(entry, "/fresh/file");
    assert_eq!(outcome.home, Some(home));
    assert_eq!(outcome.level, QueryLevel::L4Global);

    // After an explicit update push, the same query resolves lower.
    cluster.push_update(home);
    let entry2 = cluster
        .server_ids()
        .into_iter()
        .filter(|&id| id != home && cluster.group_of(id) != cluster.group_of(home))
        .nth(1)
        .expect("yet another server");
    let outcome2 = cluster.lookup_from(entry2, "/fresh/file");
    assert_eq!(outcome2.home, Some(home));
    assert!(
        outcome2.level == QueryLevel::L2Segment || outcome2.level == QueryLevel::L3Group,
        "resolved at {:?}",
        outcome2.level
    );
}

#[test]
fn same_group_lookup_resolves_by_l3_even_when_stale() {
    let config = small_config().with_update_threshold(1_000_000);
    let mut cluster = GhbaCluster::with_servers(config, 8);
    let home = cluster.create_file("/group/local");
    let gid = cluster.group_of(home).unwrap();
    let peer = cluster
        .server_ids()
        .into_iter()
        .find(|&id| id != home && cluster.group_of(id) == Some(gid));
    if let Some(peer) = peer {
        let outcome = cluster.lookup_from(peer, "/group/local");
        assert_eq!(outcome.home, Some(home));
        // The home's live filter is visible within its group at L3 (or L2
        // is impossible: peers hold only the stale published replica).
        assert!(
            outcome.level == QueryLevel::L3Group,
            "resolved at {:?}",
            outcome.level
        );
    }
}

#[test]
fn join_preserves_invariants_and_migrates_little() {
    let mut cluster = populated(12, 100);
    let n_before = cluster.server_count() as u64;
    let (id, report) = cluster.add_mds_reported();
    assert_eq!(cluster.server_count(), 13);
    assert!(cluster.mds(id).is_some());
    cluster.check_invariants().expect("invariants after join");
    // Without a split, migrations stay far below HBA's N; a split pays
    // the rebuild of two groups' coverage, still bounded by ~2N.
    let bound = if report.split { 2 * n_before } else { n_before };
    assert!(
        report.migrated_replicas < bound,
        "migrated {} ≥ bound {}",
        report.migrated_replicas,
        bound
    );
}

#[test]
fn join_without_split_matches_papers_bound() {
    // Grow until a join lands in a non-full group, then check the paper's
    // light-weight migration bound: the newcomer receives (N − M′)/M′_new
    // replicas (±1 from integer balancing).
    let mut cluster = GhbaCluster::with_servers(small_config(), 13);
    cluster.reset_stats();
    let (id, report) = loop {
        let (id, report) = cluster.add_mds_reported();
        if !report.split {
            break (id, report);
        }
    };
    let n = cluster.server_count() as u64;
    let group = cluster.group(cluster.group_of(id).unwrap()).unwrap();
    let m_new = group.len() as u64;
    let share = (n - m_new) / m_new;
    assert!(
        report.migrated_replicas >= share.saturating_sub(1)
            && report.migrated_replicas <= share + 1,
        "migrated {} vs expected share {share} (N={n}, M'={m_new})",
        report.migrated_replicas
    );
    cluster.check_invariants().expect("invariants");
}

#[test]
fn join_into_full_groups_splits() {
    // 8 servers, M=4 → groups 4+4, all full: the 9th join must split.
    let mut cluster = GhbaCluster::with_servers(small_config(), 8);
    cluster.reset_stats();
    let (_, report) = cluster.add_mds_reported();
    assert!(report.split);
    assert_eq!(cluster.stats().splits, 1);
    assert!(cluster.group_sizes().iter().all(|&s| s <= 4));
    assert_eq!(cluster.group_count(), 3);
    cluster.check_invariants().expect("invariants after split");
}

#[test]
fn leave_preserves_files_and_invariants() {
    let mut cluster = populated(12, 200);
    let total_before = cluster.total_files();
    let victim = ghba_core::MdsId(3);
    let report = cluster.remove_mds(victim).expect("removable");
    assert_eq!(cluster.server_count(), 11);
    assert!(cluster.mds(victim).is_none());
    assert_eq!(cluster.total_files(), total_before, "files lost");
    cluster.check_invariants().expect("invariants after leave");
    // Files that lived on the victim are still findable.
    for i in 0..200 {
        let path = format!("/data/d{}/f{i}", i % 37);
        assert!(cluster.lookup(&path).found(), "lost {path}");
    }
    let _ = report;
}

#[test]
fn departures_trigger_merges() {
    // 5 servers, M=4 → groups of 4 and 1. Removing one from the big group
    // leaves 3+1 ≤ 4 → merge into one group.
    let mut cluster = GhbaCluster::with_servers(small_config(), 5);
    let victim = cluster.group(ghba_core::GroupId(0)).unwrap().members()[0];
    let report = cluster.remove_mds(victim).expect("removable");
    assert!(report.merged);
    assert_eq!(cluster.group_count(), 1);
    assert_eq!(cluster.stats().merges, 1);
    cluster.check_invariants().expect("invariants after merge");
}

#[test]
fn cannot_remove_last_server() {
    let mut cluster = GhbaCluster::with_servers(small_config(), 1);
    let id = cluster.server_ids()[0];
    assert_eq!(cluster.remove_mds(id), Err(ReconfigError::LastServer));
    assert_eq!(
        cluster.remove_mds(ghba_core::MdsId(999)),
        Err(ReconfigError::UnknownMds(ghba_core::MdsId(999)))
    );
}

#[test]
fn churn_storm_preserves_invariants() {
    let mut cluster = populated(10, 150);
    for round in 0..12 {
        if round % 3 == 0 {
            let victim = cluster.server_ids()[round % cluster.server_count()];
            let _ = cluster.remove_mds(victim);
        } else {
            cluster.add_mds();
        }
        cluster
            .check_invariants()
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        // All files still reachable after every step.
        let path = "/data/d1/f1";
        assert!(cluster.lookup(path).found(), "round {round} lost {path}");
    }
}

#[test]
fn update_protocol_contacts_one_server_per_group() {
    let mut cluster = GhbaCluster::with_servers(small_config(), 12); // 3 groups
    let home = cluster.create_file("/update/test");
    for i in 0..50 {
        cluster.create_file_at(&format!("/update/more{i}"), home);
    }
    let report = cluster.push_update(home);
    assert!(report.refreshed);
    // 3 groups, home's own group excluded → 2 recipient groups. IDBFA
    // multi-hits may add the occasional extra message, never fewer.
    assert!(report.messages >= 2, "messages {}", report.messages);
    assert!(report.messages <= 6, "messages {}", report.messages);
    assert!(report.bytes > 0);
    assert!(report.latency > core::time::Duration::ZERO);
}

#[test]
fn automatic_updates_fire_on_threshold() {
    let config = small_config().with_update_threshold(64);
    let mut cluster = GhbaCluster::with_servers(config, 8);
    let home = cluster.server_ids()[0];
    for i in 0..2_000 {
        cluster.create_file_at(&format!("/auto/f{i}"), home);
    }
    assert!(
        cluster.stats().update_messages > 0,
        "threshold updates never fired"
    );
}

#[test]
fn removing_files_updates_membership() {
    let mut cluster = populated(8, 50);
    let path = "/data/d1/f1";
    assert!(cluster.lookup(path).found());
    let home = cluster.remove_file(path).expect("file existed");
    assert!(cluster.true_home(path).is_none());
    cluster.flush_all_updates();
    let outcome = cluster.lookup(path);
    assert!(!outcome.found(), "removed file still found at {home}");
}

#[test]
fn level_counters_track_outcomes() {
    let mut cluster = populated(12, 300);
    for i in 0..300 {
        let path = format!("/data/d{}/f{i}", i % 37);
        cluster.lookup(&path);
    }
    let levels = cluster.stats().levels;
    assert_eq!(levels.total(), 300);
    let [c1, c2, c3, c4] = levels.cumulative_percentages();
    assert!(c1 <= c2 && c2 <= c3 && c3 <= c4);
    assert!((c4 - 100.0).abs() < 1e-9);
}

#[test]
fn metadata_service_trait_is_usable() {
    fn exercise<S: MetadataService>(service: &mut S) {
        let home = service.create("/trait/file");
        let outcome = service.lookup("/trait/file");
        assert_eq!(outcome.home, Some(home));
        assert_eq!(service.remove("/trait/file"), Some(home));
        assert!(service.filter_memory_per_mds() > 0);
        assert_eq!(service.scheme_name(), "G-HBA");
    }
    let mut cluster = GhbaCluster::with_servers(small_config(), 6);
    exercise(&mut cluster);
}

#[test]
fn deterministic_given_seed() {
    let run = || {
        let mut cluster = GhbaCluster::with_servers(small_config(), 10);
        for i in 0..100 {
            cluster.create_file(&format!("/det/f{i}"));
        }
        let mut fingerprint = Vec::new();
        for i in 0..100 {
            let o = cluster.lookup(&format!("/det/f{i}"));
            fingerprint.push((o.home, o.level, o.latency, o.messages));
        }
        fingerprint
    };
    assert_eq!(run(), run());
}

#[test]
fn memory_pressure_increases_latency() {
    let roomy = small_config().with_seed(3);
    // The live counting filter alone is ~32 KB; 38 KB leaves almost
    // nothing for replicas or the metadata cache, forcing disk accesses.
    let tight = small_config().with_seed(3).with_memory_per_mds(38 * 1024);

    let measure = |config: GhbaConfig| {
        let mut cluster = GhbaCluster::with_servers(config, 12);
        for i in 0..400 {
            cluster.create_file(&format!("/mem/f{i}"));
        }
        cluster.flush_all_updates();
        cluster.reset_stats();
        let mut total = core::time::Duration::ZERO;
        for i in 0..400 {
            total += cluster.lookup(&format!("/mem/f{i}")).latency;
        }
        total
    };

    let fast = measure(roomy);
    let slow = measure(tight);
    assert!(
        slow > fast,
        "tight memory ({slow:?}) not slower than roomy ({fast:?})"
    );
}
