//! Lock-free snapshot concurrency: G-HBA lookups served *through*
//! reconfiguration.
//!
//! Two families of guarantees (the HBA/BFA counterparts live in the
//! baselines crate's `concurrency` suite):
//!
//! * **Stress** — reader threads hammer the side-effect-free
//!   `lookup_concurrent` walk while a reconfiguration handle publishes
//!   splits, merges, and rebalances. Every outcome must name the true
//!   home and carry an epoch no older than the pre-churn snapshot.
//! * **Equivalence** — with no reconfiguration interleaving, the
//!   snapshot-pinned concurrent walk is bit-identical to the mutating
//!   barrier-style walk, query by query.

use std::sync::atomic::{AtomicBool, Ordering};

use ghba_core::{GhbaCluster, GhbaConfig, MdsId};

fn config() -> GhbaConfig {
    GhbaConfig::default()
        .with_filter_capacity(2_000)
        .with_max_group_size(5)
        .with_seed(71)
}

/// Readers resolve concurrently with a handle publishing rebalances,
/// splits, and merges. Those reconfigurations move replica *placement*,
/// never file homes, so every concurrent outcome must still name the
/// ground-truth home — at whatever epoch the reader happened to pin.
#[test]
fn lookups_resolve_through_reconfig_churn() {
    let mut cluster = GhbaCluster::with_servers(config(), 20);
    let paths: Vec<String> = (0..150).map(|i| format!("/churn/f{i}")).collect();
    for path in &paths {
        cluster.create_file(path);
    }
    cluster.flush_all_updates();
    let truths: Vec<MdsId> = paths
        .iter()
        .map(|p| cluster.true_home(p).expect("created"))
        .collect();
    let handle = cluster.reconfig_handle();
    let start_epoch = handle.epoch();
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let cluster = &cluster;
        let truths = &truths;
        let paths = &paths;
        let stop = &stop;
        let readers: Vec<_> = (0..2)
            .map(|r| {
                scope.spawn(move || {
                    let mut seen = 0u64;
                    loop {
                        for (i, path) in paths.iter().enumerate() {
                            let entry = MdsId(((i + r * 7) % 20) as u16);
                            let outcome = cluster.lookup_concurrent(entry, path);
                            assert_eq!(
                                outcome.home,
                                Some(truths[i]),
                                "concurrent lookup lost {path} mid-reconfig"
                            );
                            assert!(
                                outcome.epoch >= start_epoch,
                                "pinned an epoch older than the pre-churn snapshot"
                            );
                            seen += 1;
                        }
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    seen
                })
            })
            .collect();

        // Churn: rebalance everything, split the biggest group, merge a
        // mergeable pair — each publishes a successor snapshot while the
        // readers above keep resolving.
        for _ in 0..6 {
            for gid in handle.group_ids() {
                let _ = handle.rebalance_group(gid);
            }
            let biggest = handle
                .group_ids()
                .into_iter()
                .max_by_key(|&gid| handle.group_members(gid).map_or(0, |m| m.len()));
            if let Some(gid) = biggest {
                let _ = handle.split_group(gid);
            }
            let ids = handle.group_ids();
            'merge: for &a in &ids {
                for &b in &ids {
                    if a != b && handle.merge_groups(a, b) {
                        break 'merge;
                    }
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            assert!(reader.join().expect("reader panicked") > 0);
        }
    });

    assert!(
        handle.epoch() > start_epoch,
        "the churn loop should have published at least one reconfiguration"
    );
    // The owner's mutating paths must be coherent with everything the
    // handle published behind its back.
    cluster.check_invariants().expect("post-churn invariants");
    for (i, path) in paths.iter().enumerate() {
        assert_eq!(cluster.lookup_from(MdsId(0), path).home, Some(truths[i]));
    }
}

/// With no reconfiguration interleaving, the side-effect-free
/// concurrent walk is bit-identical — home, level, latency, messages,
/// epoch — to the mutating walk, query by query. The concurrent walk
/// runs first so both observe the same LRU state; the mutating walk's
/// fill then advances the state for the next pair.
#[test]
fn concurrent_walk_matches_barrier_walk_without_churn() {
    let mut cluster = GhbaCluster::with_servers(config(), 15);
    for i in 0..100 {
        cluster.create_file(&format!("/eq/f{i}"));
    }
    cluster.flush_all_updates();
    for i in 0..200 {
        let entry = MdsId((i % 15) as u16);
        let path = if i % 7 == 6 {
            format!("/eq/absent{i}")
        } else {
            format!("/eq/f{}", i * 3 % 100)
        };
        let concurrent = cluster.lookup_concurrent(entry, &path);
        let barrier = cluster.lookup_from(entry, &path);
        assert_eq!(concurrent, barrier, "walks diverged at query {i}");
    }
}
