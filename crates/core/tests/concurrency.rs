//! Lock-free snapshot concurrency: G-HBA lookups served *through*
//! reconfiguration.
//!
//! Three families of guarantees (the HBA/BFA counterparts live in the
//! baselines crate's `concurrency` suite):
//!
//! * **Stress** — reader threads hammer the side-effect-free
//!   `lookup_concurrent` walk while a reconfiguration handle publishes
//!   splits, merges, and rebalances. Every outcome must name the true
//!   home and carry an epoch no older than the pre-churn snapshot.
//! * **Equivalence** — with no reconfiguration interleaving, the
//!   snapshot-pinned concurrent walk is bit-identical to the mutating
//!   barrier-style walk, query by query; and the pin-once
//!   `execute_concurrent` pipeline matches the `&mut self` funnel
//!   batch by batch, at every write-shard count.
//! * **Write races** — whole mixed batches (creates, lookups,
//!   cross-shard renames) run from `&self` on many threads, racing
//!   each other and reconfiguration churn, and the post-drain state
//!   must be exactly what each batch reported.

use std::sync::atomic::{AtomicBool, Ordering};

use ghba_core::{EntryPolicy, GhbaCluster, GhbaConfig, MdsId, MetadataService, OpBatch, OpOutcome};

fn config() -> GhbaConfig {
    GhbaConfig::default()
        .with_filter_capacity(2_000)
        .with_max_group_size(5)
        .with_seed(71)
}

/// Readers resolve concurrently with a handle publishing rebalances,
/// splits, and merges. Those reconfigurations move replica *placement*,
/// never file homes, so every concurrent outcome must still name the
/// ground-truth home — at whatever epoch the reader happened to pin.
#[test]
fn lookups_resolve_through_reconfig_churn() {
    let mut cluster = GhbaCluster::with_servers(config(), 20);
    let paths: Vec<String> = (0..150).map(|i| format!("/churn/f{i}")).collect();
    for path in &paths {
        cluster.create_file(path);
    }
    cluster.flush_all_updates();
    let truths: Vec<MdsId> = paths
        .iter()
        .map(|p| cluster.true_home(p).expect("created"))
        .collect();
    let handle = cluster.reconfig_handle();
    let start_epoch = handle.epoch();
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let cluster = &cluster;
        let truths = &truths;
        let paths = &paths;
        let stop = &stop;
        let readers: Vec<_> = (0..2)
            .map(|r| {
                scope.spawn(move || {
                    let mut seen = 0u64;
                    loop {
                        for (i, path) in paths.iter().enumerate() {
                            let entry = MdsId(((i + r * 7) % 20) as u16);
                            let outcome = cluster.lookup_concurrent(entry, path);
                            assert_eq!(
                                outcome.home,
                                Some(truths[i]),
                                "concurrent lookup lost {path} mid-reconfig"
                            );
                            assert!(
                                outcome.epoch >= start_epoch,
                                "pinned an epoch older than the pre-churn snapshot"
                            );
                            seen += 1;
                        }
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    seen
                })
            })
            .collect();

        // Churn: rebalance everything, split the biggest group, merge a
        // mergeable pair — each publishes a successor snapshot while the
        // readers above keep resolving.
        for _ in 0..6 {
            for gid in handle.group_ids() {
                let _ = handle.rebalance_group(gid);
            }
            let biggest = handle
                .group_ids()
                .into_iter()
                .max_by_key(|&gid| handle.group_members(gid).map_or(0, |m| m.len()));
            if let Some(gid) = biggest {
                let _ = handle.split_group(gid);
            }
            let ids = handle.group_ids();
            'merge: for &a in &ids {
                for &b in &ids {
                    if a != b && handle.merge_groups(a, b) {
                        break 'merge;
                    }
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            assert!(reader.join().expect("reader panicked") > 0);
        }
    });

    assert!(
        handle.epoch() > start_epoch,
        "the churn loop should have published at least one reconfiguration"
    );
    // The owner's mutating paths must be coherent with everything the
    // handle published behind its back.
    cluster.check_invariants().expect("post-churn invariants");
    for (i, path) in paths.iter().enumerate() {
        assert_eq!(cluster.lookup_from(MdsId(0), path).home, Some(truths[i]));
    }
}

/// With no reconfiguration interleaving, the side-effect-free
/// concurrent walk is bit-identical — home, level, latency, messages,
/// epoch — to the mutating walk, query by query. The concurrent walk
/// runs first so both observe the same LRU state; the mutating walk's
/// fill then advances the state for the next pair.
#[test]
fn concurrent_walk_matches_barrier_walk_without_churn() {
    let mut cluster = GhbaCluster::with_servers(config(), 15);
    for i in 0..100 {
        cluster.create_file(&format!("/eq/f{i}"));
    }
    cluster.flush_all_updates();
    for i in 0..200 {
        let entry = MdsId((i % 15) as u16);
        let path = if i % 7 == 6 {
            format!("/eq/absent{i}")
        } else {
            format!("/eq/f{}", i * 3 % 100)
        };
        let concurrent = cluster.lookup_concurrent(entry, &path);
        let barrier = cluster.lookup_from(entry, &path);
        assert_eq!(concurrent, barrier, "walks diverged at query {i}");
    }
}

/// Asserts two outcome vectors match except for the membership epoch:
/// the funnel publishes via `flush_all_updates` while the pin-once
/// pipeline publishes via `drain_concurrent`, so the two clusters bump
/// epochs at different cadences even when every filter bit agrees.
fn assert_outcomes_match(round: usize, funnel: &[OpOutcome], pinned: &[OpOutcome]) {
    assert_eq!(funnel.len(), pinned.len(), "round {round}: outcome counts");
    for (i, (f, p)) in funnel.iter().zip(pinned).enumerate() {
        match (f, p) {
            (OpOutcome::Resolved(a), OpOutcome::Resolved(b)) => {
                assert_eq!(
                    (a.home, a.level, a.latency, a.messages, a.entry),
                    (b.home, b.level, b.latency, b.messages, b.entry),
                    "round {round} op {i}: pinned lookup diverged from the funnel"
                );
            }
            _ => assert_eq!(f, p, "round {round} op {i}: outcomes diverged"),
        }
    }
}

/// Single-threaded replay: the pin-once `execute_concurrent` pipeline
/// produces the same outcomes as the `&mut self` funnel for mixed
/// batches — creates, hits, misses, renames, removes — at every
/// write-shard count, and after `drain_concurrent` + flush both
/// clusters converge to the same homes.
///
/// The update threshold is raised so the funnel never publishes
/// mid-batch (the concurrent pipeline commits deltas only at batch
/// end), L1 is disabled (the pinned walk never fills the LRU), and
/// removes sit at the tail of each batch (a pending remove stays
/// invisible to live probes until drain, so a lookup *after* a remove
/// of the same fingerprint would diverge in latency, never in home).
#[test]
fn concurrent_pipeline_matches_funnel_across_shard_counts() {
    for shards in [1usize, 4, 32] {
        let cfg = config()
            .with_lru_capacity(0)
            .with_update_threshold(1 << 24)
            .with_write_shards(shards);
        let mut funnel = GhbaCluster::with_servers(cfg.clone(), 12);
        let mut pinned = GhbaCluster::with_servers(cfg, 12);

        let mut live: Vec<String> = (0..30).map(|i| format!("/mix/seed{i}")).collect();
        for path in &live {
            funnel.create_file(path);
            pinned.create_file(path);
        }
        funnel.flush_all_updates();
        pinned.flush_all_updates();

        for round in 0..5 {
            let rename_src = live.remove(0);
            let remove_tgt = live.remove(0);
            let moved = format!("/mix/r{round}/moved");
            let created: Vec<String> = (0..6).map(|j| format!("/mix/r{round}/f{j}")).collect();

            let mut batch = OpBatch::new().with_entry(EntryPolicy::Random);
            for path in live.iter().take(6) {
                batch.push_lookup(path);
            }
            for path in &created {
                batch.push_create(path);
            }
            for path in &created {
                batch.push_lookup(path);
            }
            batch.push_lookup(format!("/mix/r{round}/absent"));
            batch.push_rename(&rename_src, &moved);
            batch.push_lookup(&moved);
            batch.push_remove(&remove_tgt);
            batch.push_remove(format!("/mix/r{round}/never-created"));

            let funnel_out = funnel.execute(&batch);
            let pinned_out = pinned.execute_concurrent(&batch);
            assert_outcomes_match(round, &funnel_out, &pinned_out);

            pinned.drain_concurrent();
            funnel.flush_all_updates();
            pinned.flush_all_updates();
            live.push(moved);
            live.extend(created);
        }

        funnel.check_invariants().expect("funnel invariants");
        pinned.check_invariants().expect("pinned invariants");
        for path in &live {
            let truth = funnel.true_home(path).expect("live in funnel");
            assert_eq!(
                pinned.true_home(path),
                Some(truth),
                "clusters disagree on the home of {path} with {shards} shards"
            );
        }
    }
}

/// Whole mixed batches run from `&self` on three threads while a
/// reconfiguration handle publishes rebalances, splits, and merges.
/// Each thread asserts its in-batch view (a created path resolves to
/// the reported home through the write overlay; pre-churn files keep
/// their ground-truth homes), and after one drain the owner sees every
/// reported placement as durable state.
#[test]
fn concurrent_batches_race_reconfig_churn() {
    const THREADS: usize = 3;
    const ROUNDS: usize = 8;
    let mut cluster = GhbaCluster::with_servers(config(), 16);
    for t in 0..THREADS {
        for i in 0..40 {
            cluster.create_file(&format!("/race/t{t}/base{i}"));
        }
    }
    cluster.flush_all_updates();
    let truths: Vec<Vec<MdsId>> = (0..THREADS)
        .map(|t| {
            (0..40)
                .map(|i| {
                    cluster
                        .true_home(&format!("/race/t{t}/base{i}"))
                        .expect("created")
                })
                .collect()
        })
        .collect();
    let handle = cluster.reconfig_handle();
    let stop = AtomicBool::new(false);

    let expected: Vec<(String, MdsId)> = std::thread::scope(|scope| {
        let cluster = &cluster;
        let truths = &truths;
        let stop = &stop;

        let churner = scope.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                for gid in handle.group_ids() {
                    let _ = handle.rebalance_group(gid);
                }
                let ids = handle.group_ids();
                if let Some(&gid) = ids.first() {
                    let _ = handle.split_group(gid);
                }
                'merge: for &a in &ids {
                    for &b in &ids {
                        if a != b && handle.merge_groups(a, b) {
                            break 'merge;
                        }
                    }
                }
            }
        });

        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                scope.spawn(move || {
                    let mut placements = Vec::new();
                    for round in 0..ROUNDS {
                        let created: Vec<String> = (0..4)
                            .map(|j| format!("/race/t{t}/r{round}/f{j}"))
                            .collect();
                        let rename_src = format!("/race/t{t}/base{}", 39 - round);
                        let moved = format!("/race/t{t}/moved{round}");

                        let mut batch = OpBatch::new().with_entry(EntryPolicy::Random);
                        for path in &created {
                            batch.push_create(path);
                        }
                        batch.push_lookup(&created[0]);
                        batch.push_lookup(format!("/race/t{t}/base{round}"));
                        batch.push_rename(&rename_src, &moved);
                        batch.push_lookup(&moved);

                        let out = cluster.execute_concurrent(&batch);
                        for (i, path) in created.iter().enumerate() {
                            let OpOutcome::Created { home } = out[i] else {
                                panic!("op {i} was a create");
                            };
                            placements.push((path.clone(), home));
                        }
                        let OpOutcome::Created { home: first_home } = out[0] else {
                            unreachable!()
                        };
                        assert_eq!(
                            out[4].home(),
                            Some(first_home),
                            "in-batch lookup missed the overlayed create"
                        );
                        assert_eq!(
                            out[5].home(),
                            Some(truths[t][round]),
                            "pre-churn file lost its home mid-reconfig"
                        );
                        let OpOutcome::Renamed { old_home, new_home } = out[6] else {
                            panic!("op 6 was a rename");
                        };
                        assert_eq!(old_home, Some(truths[t][39 - round]));
                        let new_home = new_home.expect("rename of a live path");
                        assert_eq!(
                            out[7].home(),
                            Some(new_home),
                            "in-batch lookup missed the overlayed rename"
                        );
                        placements.push((moved, new_home));
                    }
                    placements
                })
            })
            .collect();

        let mut expected = Vec::new();
        for worker in workers {
            expected.extend(worker.join().expect("worker panicked"));
        }
        stop.store(true, Ordering::Relaxed);
        churner.join().expect("churner panicked");
        expected
    });

    cluster.drain_concurrent();
    cluster.check_invariants().expect("post-drain invariants");
    for (path, home) in &expected {
        assert_eq!(
            cluster.true_home(path),
            Some(*home),
            "{path} did not land where its batch reported"
        );
        assert_eq!(cluster.lookup_from(MdsId(0), path).home, Some(*home));
    }
    // Bases that no thread renamed keep their pre-churn homes.
    for (t, homes) in truths.iter().enumerate() {
        for (i, &truth) in homes.iter().enumerate().take(40 - ROUNDS).skip(ROUNDS) {
            let path = format!("/race/t{t}/base{i}");
            assert_eq!(cluster.true_home(&path), Some(truth));
        }
    }
}

/// Four threads rename disjoint path sets concurrently; the
/// fingerprint-hashed shard map makes most source/destination pairs
/// land on different shards, so this drives the remove-then-create
/// two-shard ordering. After one drain every destination is homed
/// exactly where its batch reported and every source is gone.
#[test]
fn cross_shard_renames_from_many_threads() {
    const THREADS: usize = 4;
    let mut cluster = GhbaCluster::with_servers(config().with_write_shards(8), 12);
    for t in 0..THREADS {
        for i in 0..25 {
            cluster.create_file(&format!("/xs/t{t}/src{i}"));
        }
    }
    cluster.flush_all_updates();

    let moved: Vec<(String, String, MdsId)> = std::thread::scope(|scope| {
        let cluster = &cluster;
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                scope.spawn(move || {
                    let mut placements = Vec::new();
                    for chunk in 0..5 {
                        let mut batch = OpBatch::new().with_entry(EntryPolicy::Random);
                        let pairs: Vec<(String, String)> = (0..5)
                            .map(|j| {
                                let i = chunk * 5 + j;
                                (format!("/xs/t{t}/src{i}"), format!("/xs/t{t}/dst{i}"))
                            })
                            .collect();
                        for (from, to) in &pairs {
                            batch.push_rename(from, to);
                            batch.push_lookup(to);
                        }
                        let out = cluster.execute_concurrent(&batch);
                        for (j, (from, to)) in pairs.into_iter().enumerate() {
                            let OpOutcome::Renamed { old_home, new_home } = out[2 * j] else {
                                panic!("op {} was a rename", 2 * j);
                            };
                            assert!(old_home.is_some(), "{from} existed before the rename");
                            let new_home = new_home.expect("rename of a live path");
                            assert_eq!(
                                out[2 * j + 1].home(),
                                Some(new_home),
                                "in-batch lookup missed the overlayed rename of {to}"
                            );
                            placements.push((from, to, new_home));
                        }
                    }
                    placements
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("worker panicked"))
            .collect()
    });

    cluster.drain_concurrent();
    cluster.check_invariants().expect("post-drain invariants");
    for (from, to, home) in &moved {
        assert_eq!(cluster.true_home(from), None, "{from} survived its rename");
        assert_eq!(
            cluster.true_home(to),
            Some(*home),
            "{to} did not land where its batch reported"
        );
        assert_eq!(cluster.lookup_from(MdsId(0), to).home, Some(*home));
    }
}
