//! G-HBA — Group-based Hierarchical Bloom filter Arrays.
//!
//! A from-scratch reproduction of the metadata management system of Hua,
//! Zhu, Jiang, Feng & Tian, *Scalable and Adaptive Metadata Management in
//! Ultra Large-scale File Systems* (ICDCS 2008): N metadata servers (MDS)
//! organized into groups of at most `M`, each group collectively mirroring
//! the whole system through Bloom filter replicas while each server stores
//! only `≈(N − M′)/M′` of them.
//!
//! Queries walk a four-level hierarchy ([`GhbaCluster::lookup_from`]):
//!
//! 1. **L1** — the entry server's LRU Bloom filter array (temporal
//!    locality);
//! 2. **L2** — its segment array: the replicas it holds plus its own live
//!    filter;
//! 3. **L3** — a multicast within its group (which collectively sees the
//!    entire system);
//! 4. **L4** — a system-wide multicast, authoritative by construction.
//!
//! Group membership is elastic: joins trigger light-weight replica
//! migration and, on overflow, group splits; departures trigger merges
//! ([`GhbaCluster::add_mds`], [`GhbaCluster::remove_mds`]). Replica
//! staleness is governed by the XOR-distance update protocol
//! ([`GhbaCluster::push_update`]).
//!
//! # Quick start
//!
//! ```
//! use ghba_core::{GhbaCluster, GhbaConfig, QueryLevel};
//!
//! let config = GhbaConfig::default()
//!     .with_max_group_size(4)
//!     .with_filter_capacity(1_000)
//!     .with_seed(7);
//! let mut cluster = GhbaCluster::with_servers(config, 10);
//!
//! let home = cluster.create_file("/data/experiment/run-1.log");
//! let outcome = cluster.lookup("/data/experiment/run-1.log");
//! assert_eq!(outcome.home, Some(home));
//!
//! // Membership is elastic; invariants hold throughout.
//! cluster.add_mds();
//! cluster.check_invariants().expect("mirror and balance preserved");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adapt;
mod cluster;
pub mod concurrent;
mod config;
pub mod exec;
mod group;
mod ids;
pub mod load;
mod mds;
mod metadata;
mod op;
mod query;
mod reconcile;
mod reconfig;
mod service;
mod snapshot;
mod update;
pub mod wal;

pub use adapt::{AdaptAction, ControllerConfig, GroupController, TargetM};
pub use cluster::{ClusterStats, GhbaCluster};
pub use concurrent::{ConcurrentStats, NamespaceShards, OverlayEntry, WriteKind, WriteRecord};
pub use config::{EpochGranularity, ExecutorConfig, GhbaConfig, MaskCacheLifecycle, MaskCacheMode};
pub use group::{Group, IdFilterArray};
pub use ids::{GroupEpoch, GroupId, MdsId, MembershipEpoch};
pub use load::{GroupLoad, LoadFold, LoadReport, MaskCacheStats};
pub use mds::{published_shape, Mds, META_ENTRY_BYTES};
pub use metadata::{FileAttrs, MetadataStore};
pub use op::{
    execute_vectored, execute_vectored_concurrent, ConcurrentScheme, EntryPolicy, MetadataOp,
    OpBatch, OpOutcome, PathKey, VectoredScheme,
};
pub use query::{LevelCounts, QueryLevel, QueryOutcome};
pub use reconcile::Reconciler;
pub use reconfig::{ReconfigError, ReconfigReport};
pub use service::MetadataService;
pub use snapshot::{CellWriter, ReconfigHandle, RouteSnapshot, SlabOp, SlabSpare, SnapshotCell};
pub use update::UpdateReport;
pub use wal::{
    Checkpoint, SyncPolicy, Wal, WalError, WalEvent, WalOptions, WalRecord, WalRecovery,
};
