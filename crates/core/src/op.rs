//! The vectored metadata operations API: typed op batches every scheme
//! executes natively.
//!
//! Metadata traffic arrives at a cluster as *streams* of mixed operations
//! — bursts of concurrent lookups interleaved with creates, unlinks, and
//! renames — not as one isolated pathname at a time. [`OpBatch`] is the
//! unit the [`MetadataService`](crate::MetadataService) seam moves: each
//! [`MetadataOp`] carries a [`PathKey`] whose hash-once
//! [`Fingerprint`] was computed **once at batch admission** and travels
//! through every filter probe of every level, and the batch names an
//! explicit [`EntryPolicy`] instead of baking "random entry server" into
//! each scheme.
//!
//! Schemes execute a batch through the shared [`execute_vectored`]
//! pipeline (via the [`VectoredScheme`] hooks): maximal runs of
//! consecutive lookups are fused into one L1→L4 batched slab pass, writes
//! apply in stream order with their gated delta publishes, and
//! [`MetadataOp::Rename`] performs a full metadata migration (remove at
//! the old home, create at the policy-chosen new home) whose
//! [`OpOutcome::Renamed`] reports both homes.
//!
//! Outcome semantics match **one-op-at-a-time execution**: `execute` on
//! a mixed batch returns what issuing each op as its own 1-op batch
//! would. The run fusion flushes before every write and before a
//! repeated `(entry, path)` pair, so a repeat observes the earlier
//! lookup's L1 cache fill exactly as a sequential stream would. The one
//! deliberate divergence is the concurrent-request model inherited from
//! the batched walk: an L1 fill produced by an earlier lookup at the
//! same entry for a *different* path is not seen by the later probes of
//! the same fused run — observable only through an L1 Bloom false
//! positive or an eviction reordering, both vanishingly rare at sane L1
//! geometries (the property tests pin outcome equality across all three
//! schemes under flash-crowd batches).
//!
//! # The pin-once concurrent pipeline
//!
//! [`execute_vectored_concurrent`] is the `&self` twin of
//! [`execute_vectored`], driven through the [`ConcurrentScheme`] hooks.
//! Its lifetime rules:
//!
//! * **Pin once per batch.** The scheme pins one route snapshot at batch
//!   admission ([`ConcurrentScheme::pin_batch`]) and every fused read
//!   run of the batch walks that same snapshot — not one pin per
//!   `lookup` call. A reconfiguration publishing mid-batch is therefore
//!   observed by the *next* batch, never by half of this one; the pin
//!   is dropped (and the epoch guard released) only when the batch's
//!   outcomes are assembled.
//! * **Writes are ordered per shard, not per batch.** Mutations from
//!   `&self` append to namespace write shards (hash of the path's
//!   fingerprint → shard) under that shard's lock alone. Two batches
//!   writing distinct shards never contend; two writes to the same
//!   path always land in the same shard, so their order is total.
//! * **Cross-shard renames are remove-then-create.** A rename removes
//!   `from` under its shard's lock, *releases it*, then creates `to`
//!   under the target shard's lock — no op ever holds two shard locks,
//!   so shard locks are single and there is no lock-order cycle to
//!   deadlock on.
//! * **Publishes stay a single atomic swap.** Pending create bits are
//!   folded into the published probe columns through the same
//!   `SlabOp`/`CellWriter` path the sequential pipeline uses
//!   ([`ConcurrentScheme::commit_batch`]), under the slab writer lock,
//!   so readers still observe probe state flip in one swap.
//!
//! Executed single-threaded against a quiescent scheme, the concurrent
//! pipeline is **bit-identical** to the sequential one (same RNG stream,
//! same fusion boundaries at `lru_capacity = 0`); under true concurrency
//! the interleaving of distinct-path writes is arbitrary by design and
//! the property suites assert semantic equivalence (every path resolves
//! to its true home) instead.

use ghba_bloom::Fingerprint;

use crate::ids::MdsId;
use crate::query::QueryOutcome;

/// A pathname plus its hash-once [`Fingerprint`], computed exactly once
/// when the op is admitted to a batch.
///
/// Every filter probe the op triggers — L1 LRU, bit-sliced slab levels,
/// live-filter sweeps, multicast recipients — derives its probe stream
/// from this fingerprint by O(1) seed-mixing; the path bytes are never
/// re-hashed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathKey {
    path: String,
    fp: Fingerprint,
}

impl PathKey {
    /// Admits `path`: the single byte pass of the hash-once design.
    #[must_use]
    pub fn new(path: impl Into<String>) -> Self {
        let path = path.into();
        let fp = Fingerprint::of(path.as_str());
        PathKey { path, fp }
    }

    /// Reassembles a `PathKey` from a pathname and a fingerprint computed
    /// elsewhere — the wire-decode path, where the fingerprint arrived in
    /// the frame alongside the path bytes. Returns `None` when `fp` is
    /// not `path`'s fingerprint: the pair is corrupt and the decoder must
    /// reject the frame rather than admit a key whose probe stream
    /// disagrees with its pathname.
    #[must_use]
    pub fn from_parts(path: impl Into<String>, fp: Fingerprint) -> Option<Self> {
        let path = path.into();
        (Fingerprint::of(path.as_str()) == fp).then_some(PathKey { path, fp })
    }

    /// The pathname.
    #[must_use]
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The admission-time fingerprint (identical to
    /// `Fingerprint::of(self.path())`).
    #[must_use]
    pub fn fingerprint(&self) -> &Fingerprint {
        &self.fp
    }
}

/// How a batch's ops choose their serving MDS (the lookup entry server,
/// and the home for creates and rename targets).
///
/// The paper's client model — "each request can randomly choose an MDS" —
/// becomes one policy among several instead of a hard-coded behaviour of
/// every scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryPolicy {
    /// Each op draws a uniformly random server from the scheme's
    /// deterministic RNG (the paper's default client model).
    Random,
    /// Every op is served through one fixed server (a client with a
    /// sticky connection; also how tests pin entry points).
    Pinned(MdsId),
    /// Op `i` of the batch is served by the `(start + i) mod N`-th live
    /// server (ascending id order) — a load-balancer spraying a burst
    /// deterministically across the cluster.
    RoundRobin {
        /// Offset of the batch's first op into the server list.
        start: usize,
    },
}

impl EntryPolicy {
    /// Resolves the serving server for op `op_index` of a batch under the
    /// deterministic policies, given the scheme's live server ids in
    /// ascending order. Returns `None` for [`EntryPolicy::Random`] — the
    /// scheme must then draw from its own deterministic RNG (so batched
    /// and one-op-per-call execution consume the stream identically).
    ///
    /// Every scheme's resolver defers here so Pinned/RoundRobin semantics
    /// cannot diverge between implementations.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty or a pinned server is not among `ids`.
    #[must_use]
    pub fn resolve_deterministic(self, ids: &[MdsId], op_index: usize) -> Option<MdsId> {
        match self {
            EntryPolicy::Random => None,
            EntryPolicy::Pinned(id) => {
                assert!(ids.contains(&id), "pinned server {id} unknown");
                Some(id)
            }
            EntryPolicy::RoundRobin { start } => {
                assert!(!ids.is_empty(), "no live servers");
                // Wrapping: the service-side cursor advances by
                // `wrapping_add` (see [`EntryPolicy::advance`]), so a
                // cursor near `usize::MAX` must reduce, not overflow.
                Some(ids[start.wrapping_add(op_index) % ids.len()])
            }
        }
    }

    /// Returns the policy for a batch of `ops` ops and advances any
    /// round-robin cursor past them **in place**.
    ///
    /// This is how round-robin state survives the string-call shims:
    /// each shim builds a fresh 1-op [`OpBatch`], so the cursor must
    /// live on the *service* (see
    /// [`MetadataService::set_shim_policy`](crate::MetadataService::set_shim_policy))
    /// and step forward here on every call — otherwise each shim batch
    /// would re-enter at `start` and pin a single server. Stateless
    /// policies return unchanged.
    pub fn advance(&mut self, ops: usize) -> EntryPolicy {
        let current = *self;
        if let EntryPolicy::RoundRobin { start } = self {
            // `resolve_deterministic` reduces modulo the live server
            // count, so the cursor only needs to advance monotonically.
            *start = start.wrapping_add(ops);
        }
        current
    }
}

/// One typed metadata operation, pre-hashed at admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetadataOp {
    /// Insert metadata for a new file at a policy-chosen home.
    Create(PathKey),
    /// Resolve a pathname's home MDS through the scheme's hierarchy.
    Lookup(PathKey),
    /// Remove a file's metadata from its home (no-op if absent).
    Remove(PathKey),
    /// Migrate metadata: remove `from` at its old home, create `to` at a
    /// policy-chosen new home, refreshing filters via deltas on both
    /// sides. A rename of an absent file is a no-op.
    Rename {
        /// The existing pathname.
        from: PathKey,
        /// The new pathname.
        to: PathKey,
    },
}

impl MetadataOp {
    /// The op's primary pathname (`from` for renames).
    #[must_use]
    pub fn path(&self) -> &str {
        match self {
            MetadataOp::Create(key)
            | MetadataOp::Lookup(key)
            | MetadataOp::Remove(key)
            | MetadataOp::Rename { from: key, .. } => key.path(),
        }
    }

    /// `true` for lookups (the read path).
    #[must_use]
    pub fn is_read(&self) -> bool {
        matches!(self, MetadataOp::Lookup(_))
    }
}

/// An ordered batch of typed metadata operations plus the entry-server
/// policy they execute under.
///
/// Build with the `push_*` admission helpers (each hashes its pathname
/// once into a [`PathKey`]), hand to
/// [`MetadataService::execute`](crate::MetadataService::execute), then
/// [`clear`](OpBatch::clear) and reuse — the op vector's allocation is
/// kept.
///
/// # Examples
///
/// ```
/// use ghba_core::{GhbaCluster, GhbaConfig, MetadataService, OpBatch, OpOutcome};
///
/// let mut cluster = GhbaCluster::with_servers(
///     GhbaConfig::default().with_filter_capacity(1_000),
///     8,
/// );
/// let mut batch = OpBatch::new();
/// batch.push_create("/a/b");
/// batch.push_lookup("/a/b");
/// batch.push_rename("/a/b", "/a/c");
/// batch.push_lookup("/a/c");
/// let outcomes = cluster.execute(&batch);
/// let OpOutcome::Renamed { old_home, new_home } = outcomes[2] else {
///     panic!("third op was a rename");
/// };
/// assert!(old_home.is_some() && new_home.is_some());
/// assert_eq!(outcomes[3].home(), new_home);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpBatch {
    ops: Vec<MetadataOp>,
    entry: EntryPolicy,
}

impl Default for OpBatch {
    fn default() -> Self {
        OpBatch::new()
    }
}

impl OpBatch {
    /// Creates an empty batch under [`EntryPolicy::Random`].
    #[must_use]
    pub fn new() -> Self {
        OpBatch {
            ops: Vec::new(),
            entry: EntryPolicy::Random,
        }
    }

    /// Sets the entry-server policy (builder style).
    #[must_use]
    pub fn with_entry(mut self, entry: EntryPolicy) -> Self {
        self.entry = entry;
        self
    }

    /// The entry-server policy.
    #[must_use]
    pub fn entry_policy(&self) -> EntryPolicy {
        self.entry
    }

    /// Appends an already-built op.
    pub fn push(&mut self, op: MetadataOp) {
        self.ops.push(op);
    }

    /// Admits a lookup (hashing the path once).
    pub fn push_lookup(&mut self, path: impl Into<String>) {
        self.push(MetadataOp::Lookup(PathKey::new(path)));
    }

    /// Admits a create (hashing the path once).
    pub fn push_create(&mut self, path: impl Into<String>) {
        self.push(MetadataOp::Create(PathKey::new(path)));
    }

    /// Admits a remove (hashing the path once).
    pub fn push_remove(&mut self, path: impl Into<String>) {
        self.push(MetadataOp::Remove(PathKey::new(path)));
    }

    /// Admits a rename (hashing both paths once).
    pub fn push_rename(&mut self, from: impl Into<String>, to: impl Into<String>) {
        self.push(MetadataOp::Rename {
            from: PathKey::new(from),
            to: PathKey::new(to),
        });
    }

    /// The ops in admission order.
    #[must_use]
    pub fn ops(&self) -> &[MetadataOp] {
        &self.ops
    }

    /// Number of admitted ops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when no op is admitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Empties the batch (keeping its allocation and policy).
    pub fn clear(&mut self) {
        self.ops.clear();
    }
}

/// The per-op result of [`MetadataService::execute`]
/// (`outcomes[i]` answers `batch.ops()[i]`).
///
/// [`MetadataService::execute`]: crate::MetadataService::execute
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpOutcome {
    /// A create landed at `home`.
    Created {
        /// The MDS now homing the file.
        home: MdsId,
    },
    /// A lookup resolved (or exhausted the hierarchy): the full
    /// per-query record — home, resolution level, simulated latency,
    /// message count, entry server.
    Resolved(QueryOutcome),
    /// A remove completed; `home` is the former home (`None` if the path
    /// was homed nowhere).
    Removed {
        /// Where the file used to live.
        home: Option<MdsId>,
    },
    /// A rename migrated metadata between homes. `old_home` is where
    /// `from` lived (`None` = rename of an absent path, a no-op);
    /// `new_home` is where `to` now lives.
    Renamed {
        /// The home `from` was removed at.
        old_home: Option<MdsId>,
        /// The home `to` was created at.
        new_home: Option<MdsId>,
    },
}

impl OpOutcome {
    /// The lookup record, for [`OpOutcome::Resolved`] outcomes.
    #[must_use]
    pub fn query(&self) -> Option<&QueryOutcome> {
        match self {
            OpOutcome::Resolved(outcome) => Some(outcome),
            _ => None,
        }
    }

    /// The op's resulting home, when one exists: the created home, the
    /// resolved home, the removed-from home, or a rename's new home.
    #[must_use]
    pub fn home(&self) -> Option<MdsId> {
        match self {
            OpOutcome::Created { home } => Some(*home),
            OpOutcome::Resolved(outcome) => outcome.home,
            OpOutcome::Removed { home } => *home,
            OpOutcome::Renamed { new_home, .. } => *new_home,
        }
    }
}

/// The scheme hooks [`execute_vectored`] drives: entry-policy resolution,
/// fused lookup runs, and the write primitives.
///
/// Implemented by `GhbaCluster` and by the HBA/BFA baselines so all three
/// share one batch pipeline (fusion rules, rename migration, outcome
/// assembly) and therefore one, property-tested, execution semantics.
pub trait VectoredScheme {
    /// Resolves the serving MDS for op `op_index` under `policy`.
    /// [`EntryPolicy::Random`] must draw from the scheme's deterministic
    /// RNG exactly as the scheme's legacy per-call random pick did.
    fn resolve_entry(&mut self, policy: EntryPolicy, op_index: usize) -> MdsId;

    /// `true` when the scheme maintains per-entry L1 state (an LRU
    /// filter array) whose cache fills make a repeated `(entry, path)`
    /// pair order-sensitive within a fused run — the pipeline then
    /// splits the run so the later lookup observes the earlier one's
    /// fill, exactly as a sequential stream would. Schemes without an L1
    /// level (e.g. BFA, or clusters configured with `lru_capacity = 0`)
    /// return `false` and fuse straight through flash-crowd repeats.
    fn repeat_sensitive(&self) -> bool {
        true
    }

    /// Resolves a fused run of concurrent lookups — one batched walk of
    /// the scheme's hierarchy, reusing each key's admission fingerprint —
    /// returning one outcome per query in order.
    fn lookup_fused(&mut self, queries: &[(MdsId, &PathKey)]) -> Vec<QueryOutcome>;

    /// Called once before the pipeline starts a batch. Schemes arm
    /// batch-lifetime caches here: state that only reconfiguration could
    /// invalidate (candidate slot masks, membership snapshots) stays
    /// valid for the whole batch, because membership changes can never
    /// interleave with an executing batch. Anything writes can touch
    /// (filter contents, memory budgets) must not be cached across runs.
    fn batch_begin(&mut self) {}

    /// Called once after the batch completes; schemes drop their
    /// batch-lifetime caches so later calls never observe stale state
    /// across an intervening reconfiguration.
    fn batch_end(&mut self) {}

    /// Creates `key` at `home` (store + live filter + gated delta
    /// publish), reusing the admission fingerprint.
    fn apply_create(&mut self, key: &PathKey, home: MdsId);

    /// Removes `key` from its home, returning the former home.
    fn apply_remove(&mut self, key: &PathKey) -> Option<MdsId>;
}

/// The scheme hooks [`execute_vectored_concurrent`] drives: the
/// `&self` twin of [`VectoredScheme`] for the pin-once pipeline.
///
/// The contract mirrors [`VectoredScheme`] hook for hook, with the
/// lifetime differences spelled out in the module-level docs: one
/// snapshot pin per batch, writes appended to namespace shards under
/// per-shard locks, and a commit that folds pending create bits into
/// the published probe state through one slab swap.
pub trait ConcurrentScheme {
    /// The batch-lifetime snapshot pin. Holding it keeps the pinned
    /// route snapshot's epoch guard alive for the whole batch.
    type Pinned;

    /// Pins the route snapshot every fused run of this batch walks.
    fn pin_batch(&self) -> Self::Pinned;

    /// Resolves the serving MDS for op `op_index` under `policy`, from
    /// `&self`. [`EntryPolicy::Random`] must consume the scheme's
    /// deterministic RNG stream exactly as
    /// [`VectoredScheme::resolve_entry`] does, so a single-threaded
    /// concurrent replay draws the same servers as a sequential one.
    fn resolve_entry_concurrent(&self, policy: EntryPolicy, op_index: usize) -> MdsId;

    /// Whether a repeated `(entry, path)` pair must split a fused run.
    /// Defaults to `false`: the `&self` walk performs no L1 cache
    /// fills, so a repeat can observe nothing the first occurrence
    /// produced. (This matches the sequential pipeline's fusion
    /// boundaries exactly when `lru_capacity = 0`.)
    fn repeat_sensitive_concurrent(&self) -> bool {
        false
    }

    /// Resolves a fused run of concurrent lookups against the pinned
    /// snapshot, returning one outcome per query in order.
    fn lookup_fused_pinned(
        &self,
        pinned: &Self::Pinned,
        queries: &[(MdsId, &PathKey)],
    ) -> Vec<QueryOutcome>;

    /// Appends a pending create of `key` at `home` to its namespace
    /// shard.
    fn apply_create_concurrent(&self, key: &PathKey, home: MdsId);

    /// Appends a pending removal of `key`, returning the home it was
    /// removed from (`None` if the path is homed nowhere — then nothing
    /// is appended).
    fn apply_remove_concurrent(&self, key: &PathKey) -> Option<MdsId>;

    /// Folds the batch's pending create bits into the published probe
    /// state (one slab writer pass, one atomic swap). Called once after
    /// the batch's ops complete; a batch that panics mid-flight leaves
    /// its pending records for the next commit or owner drain instead.
    fn commit_batch(&self, pinned: &Self::Pinned);
}

/// Executes `batch` against `scheme` from a **shared** reference: the
/// pin-once twin of [`execute_vectored`].
///
/// Same control flow op for op — identical fusion rules (modulo
/// [`ConcurrentScheme::repeat_sensitive_concurrent`], which defaults to
/// `false` because the `&self` walk fills no L1 cache), identical
/// rename semantics (the new home is drawn only when the source
/// existed, so the RNG stream stays aligned with the sequential
/// pipeline), and one [`ConcurrentScheme::commit_batch`] after the last
/// op. Any number of threads may run this concurrently against the same
/// scheme; writes serialize per namespace shard and reads walk the
/// snapshot pinned at their own batch's admission.
pub fn execute_vectored_concurrent<S: ConcurrentScheme + ?Sized>(
    scheme: &S,
    batch: &OpBatch,
) -> Vec<OpOutcome> {
    let ops = batch.ops();
    let policy = batch.entry_policy();
    let mut outcomes: Vec<Option<OpOutcome>> = vec![None; ops.len()];
    let mut run: Vec<(usize, MdsId)> = Vec::new();

    let pinned = scheme.pin_batch();

    fn flush<S: ConcurrentScheme + ?Sized>(
        scheme: &S,
        pinned: &S::Pinned,
        ops: &[MetadataOp],
        run: &mut Vec<(usize, MdsId)>,
        outcomes: &mut [Option<OpOutcome>],
    ) {
        if run.is_empty() {
            return;
        }
        let queries: Vec<(MdsId, &PathKey)> = run
            .iter()
            .map(|&(i, entry)| {
                let MetadataOp::Lookup(key) = &ops[i] else {
                    unreachable!("only lookups join the fused run");
                };
                (entry, key)
            })
            .collect();
        for (&(i, _), outcome) in run.iter().zip(scheme.lookup_fused_pinned(pinned, &queries)) {
            outcomes[i] = Some(OpOutcome::Resolved(outcome));
        }
        run.clear();
    }

    let repeat_sensitive = scheme.repeat_sensitive_concurrent();
    for (i, op) in ops.iter().enumerate() {
        match op {
            MetadataOp::Lookup(key) => {
                let entry = scheme.resolve_entry_concurrent(policy, i);
                let repeat = repeat_sensitive
                    && run
                        .iter()
                        .any(|&(j, e)| e == entry && ops[j].path() == key.path());
                if repeat {
                    flush(scheme, &pinned, ops, &mut run, &mut outcomes);
                }
                run.push((i, entry));
            }
            MetadataOp::Create(key) => {
                flush(scheme, &pinned, ops, &mut run, &mut outcomes);
                let home = scheme.resolve_entry_concurrent(policy, i);
                scheme.apply_create_concurrent(key, home);
                outcomes[i] = Some(OpOutcome::Created { home });
            }
            MetadataOp::Remove(key) => {
                flush(scheme, &pinned, ops, &mut run, &mut outcomes);
                let home = scheme.apply_remove_concurrent(key);
                outcomes[i] = Some(OpOutcome::Removed { home });
            }
            MetadataOp::Rename { from, to } => {
                flush(scheme, &pinned, ops, &mut run, &mut outcomes);
                // Remove under `from`'s shard lock, release, create
                // under `to`'s — never both at once (see the
                // shard-ordering rules in the module docs).
                let old_home = scheme.apply_remove_concurrent(from);
                let new_home = old_home.map(|_| {
                    let home = scheme.resolve_entry_concurrent(policy, i);
                    scheme.apply_create_concurrent(to, home);
                    home
                });
                outcomes[i] = Some(OpOutcome::Renamed { old_home, new_home });
            }
        }
    }
    flush(scheme, &pinned, ops, &mut run, &mut outcomes);
    scheme.commit_batch(&pinned);
    drop(pinned);
    outcomes
        .into_iter()
        .map(|outcome| outcome.expect("every op produced an outcome"))
        .collect()
}

/// Arms a scheme's batch-lifetime caches for the duration of one
/// [`execute_vectored`] call: [`VectoredScheme::batch_begin`] on
/// construction, [`VectoredScheme::batch_end`] on drop.
///
/// Pairing through a drop guard instead of two manual calls makes the
/// arm/disarm **exception-safe**: any exit from the pipeline — including
/// a panic unwinding out of `resolve_entry` (unknown pinned server) or a
/// scheme hook — still disarms, so a poisoned batch can never leak an
/// armed cache into the next call.
struct ArmedBatch<'a, S: VectoredScheme + ?Sized> {
    scheme: &'a mut S,
}

impl<'a, S: VectoredScheme + ?Sized> ArmedBatch<'a, S> {
    fn new(scheme: &'a mut S) -> Self {
        scheme.batch_begin();
        ArmedBatch { scheme }
    }
}

impl<S: VectoredScheme + ?Sized> Drop for ArmedBatch<'_, S> {
    fn drop(&mut self) {
        self.scheme.batch_end();
    }
}

/// Executes `batch` against `scheme`: the one mixed-op pipeline every
/// scheme shares.
///
/// * Maximal runs of consecutive lookups are **fused** and resolved by
///   one [`VectoredScheme::lookup_fused`] call (one batched slab pass per
///   level); a run is split only before a repeated `(entry, path)` pair,
///   whose later occurrence must observe the earlier lookup's L1 cache
///   fill exactly as a sequential replay would. Inside `lookup_fused`
///   the schemes may execute a large run **data-parallel** — chunked
///   across the worker pool against the shared read-only slab, with
///   side effects spliced back in stream order
///   (`ExecutorConfig`; outcomes bit-identical to `workers = 1`) —
///   which is why writes stay sequential in stream order *between* the
///   parallel read phases.
/// * Writes execute in stream order. Their filter mutations accumulate in
///   the home's live filter and ship as one grouped sparse `FilterDelta`
///   when the gated drift check publishes — at most one publish per
///   gate-window per MDS, never one per op.
/// * [`MetadataOp::Rename`] migrates: remove at the old home, create at
///   the policy-chosen new home (drawn only when the source existed).
///
/// Outcomes match issuing every op as its own 1-op batch, up to the
/// concurrent-request caveat spelled out in the module-level docs:
/// within a fused run, an earlier same-entry lookup's L1 fill for a
/// *different* path is not observed (an L1-false-positive-grade effect;
/// same-path repeats are split exactly so the common case is exact).
pub fn execute_vectored<S: VectoredScheme + ?Sized>(
    scheme: &mut S,
    batch: &OpBatch,
) -> Vec<OpOutcome> {
    let ops = batch.ops();
    let policy = batch.entry_policy();
    let mut outcomes: Vec<Option<OpOutcome>> = vec![None; ops.len()];
    // The fused read run: `(op index, entry server)` pairs awaiting one
    // batched lookup pass.
    let mut run: Vec<(usize, MdsId)> = Vec::new();

    fn flush<S: VectoredScheme + ?Sized>(
        scheme: &mut S,
        ops: &[MetadataOp],
        run: &mut Vec<(usize, MdsId)>,
        outcomes: &mut [Option<OpOutcome>],
    ) {
        if run.is_empty() {
            return;
        }
        let queries: Vec<(MdsId, &PathKey)> = run
            .iter()
            .map(|&(i, entry)| {
                let MetadataOp::Lookup(key) = &ops[i] else {
                    unreachable!("only lookups join the fused run");
                };
                (entry, key)
            })
            .collect();
        for (&(i, _), outcome) in run.iter().zip(scheme.lookup_fused(&queries)) {
            outcomes[i] = Some(OpOutcome::Resolved(outcome));
        }
        run.clear();
    }

    let repeat_sensitive = scheme.repeat_sensitive();
    // Arm through a drop guard: `batch_end` runs on every exit path,
    // panics included (see [`ArmedBatch`]).
    let armed = ArmedBatch::new(scheme);
    let scheme = &mut *armed.scheme;
    for (i, op) in ops.iter().enumerate() {
        match op {
            MetadataOp::Lookup(key) => {
                let entry = scheme.resolve_entry(policy, i);
                let repeat = repeat_sensitive
                    && run
                        .iter()
                        .any(|&(j, e)| e == entry && ops[j].path() == key.path());
                if repeat {
                    // The later lookup must see the earlier one's L1
                    // fill, as a sequential stream would.
                    flush(scheme, ops, &mut run, &mut outcomes);
                }
                run.push((i, entry));
            }
            MetadataOp::Create(key) => {
                flush(scheme, ops, &mut run, &mut outcomes);
                let home = scheme.resolve_entry(policy, i);
                scheme.apply_create(key, home);
                outcomes[i] = Some(OpOutcome::Created { home });
            }
            MetadataOp::Remove(key) => {
                flush(scheme, ops, &mut run, &mut outcomes);
                let home = scheme.apply_remove(key);
                outcomes[i] = Some(OpOutcome::Removed { home });
            }
            MetadataOp::Rename { from, to } => {
                flush(scheme, ops, &mut run, &mut outcomes);
                let old_home = scheme.apply_remove(from);
                let new_home = old_home.map(|_| {
                    let home = scheme.resolve_entry(policy, i);
                    scheme.apply_create(to, home);
                    home
                });
                outcomes[i] = Some(OpOutcome::Renamed { old_home, new_home });
            }
        }
    }
    flush(scheme, ops, &mut run, &mut outcomes);
    drop(armed);
    outcomes
        .into_iter()
        .map(|outcome| outcome.expect("every op produced an outcome"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryLevel;

    /// A scheme that records hook pairing and can be poisoned to panic
    /// mid-batch (the regression surface of the arm/disarm drop guard).
    #[derive(Default)]
    struct HookProbe {
        armed: bool,
        begins: u32,
        ends: u32,
        poison_lookup: bool,
    }

    impl VectoredScheme for HookProbe {
        fn resolve_entry(&mut self, _policy: EntryPolicy, _op_index: usize) -> MdsId {
            MdsId(0)
        }

        fn lookup_fused(&mut self, queries: &[(MdsId, &PathKey)]) -> Vec<QueryOutcome> {
            assert!(self.armed, "fused run outside an armed batch");
            if self.poison_lookup {
                panic!("poisoned batch");
            }
            queries
                .iter()
                .map(|&(entry, _)| QueryOutcome {
                    home: None,
                    level: QueryLevel::Nonexistent,
                    latency: core::time::Duration::ZERO,
                    messages: 0,
                    entry,
                    epoch: crate::ids::MembershipEpoch::default(),
                })
                .collect()
        }

        fn batch_begin(&mut self) {
            self.begins += 1;
            self.armed = true;
        }

        fn batch_end(&mut self) {
            self.ends += 1;
            self.armed = false;
        }

        fn apply_create(&mut self, _key: &PathKey, _home: MdsId) {}

        fn apply_remove(&mut self, _key: &PathKey) -> Option<MdsId> {
            None
        }
    }

    #[test]
    fn batch_hooks_pair_on_success() {
        let mut probe = HookProbe::default();
        let mut batch = OpBatch::new();
        batch.push_lookup("/a");
        batch.push_create("/b");
        batch.push_lookup("/c");
        let outcomes = execute_vectored(&mut probe, &batch);
        assert_eq!(outcomes.len(), 3);
        assert!(!probe.armed);
        assert_eq!((probe.begins, probe.ends), (1, 1));
    }

    #[test]
    fn poisoned_batch_disarms_cache() {
        let mut probe = HookProbe {
            poison_lookup: true,
            ..HookProbe::default()
        };
        let mut batch = OpBatch::new();
        batch.push_lookup("/poison");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = execute_vectored(&mut probe, &batch);
        }));
        assert!(result.is_err(), "the poisoned lookup must panic");
        // The drop guard must have disarmed during unwinding: no armed
        // state leaks into the next batch.
        assert!(!probe.armed, "panic leaked an armed batch cache");
        assert_eq!(probe.begins, probe.ends);
        probe.poison_lookup = false;
        let outcomes = execute_vectored(&mut probe, &batch);
        assert_eq!(outcomes.len(), 1);
        assert!(!probe.armed);
        assert_eq!((probe.begins, probe.ends), (2, 2));
    }

    #[test]
    fn round_robin_resolves_at_cursor_extremes_without_overflow() {
        let ids = [MdsId(0), MdsId(1), MdsId(2)];
        let mut policy = EntryPolicy::RoundRobin { start: usize::MAX };
        // usize::MAX % 3 == 0; op_index 1 wraps past MAX to 0.
        assert_eq!(policy.resolve_deterministic(&ids, 0), Some(MdsId(0)));
        assert_eq!(policy.resolve_deterministic(&ids, 1), Some(MdsId(0)));
        // The cursor itself wraps in place without panicking.
        let before = policy.advance(5);
        assert_eq!(before, EntryPolicy::RoundRobin { start: usize::MAX });
        assert_eq!(policy, EntryPolicy::RoundRobin { start: 4 });
    }

    #[test]
    fn path_key_hashes_once_and_matches() {
        let key = PathKey::new("/a/b/c");
        assert_eq!(key.path(), "/a/b/c");
        assert_eq!(key.fingerprint(), &Fingerprint::of("/a/b/c"));
    }

    #[test]
    fn batch_admission_builds_typed_ops() {
        let mut batch = OpBatch::new().with_entry(EntryPolicy::Pinned(MdsId(3)));
        batch.push_lookup("/x");
        batch.push_create("/y");
        batch.push_remove("/x");
        batch.push_rename("/y", "/z");
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.entry_policy(), EntryPolicy::Pinned(MdsId(3)));
        assert!(batch.ops()[0].is_read());
        assert!(!batch.ops()[1].is_read());
        assert_eq!(batch.ops()[3].path(), "/y");
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.entry_policy(), EntryPolicy::Pinned(MdsId(3)));
    }

    #[test]
    fn outcome_homes() {
        let created = OpOutcome::Created { home: MdsId(1) };
        assert_eq!(created.home(), Some(MdsId(1)));
        assert!(created.query().is_none());
        let removed = OpOutcome::Removed { home: None };
        assert_eq!(removed.home(), None);
        let renamed = OpOutcome::Renamed {
            old_home: Some(MdsId(0)),
            new_home: Some(MdsId(2)),
        };
        assert_eq!(renamed.home(), Some(MdsId(2)));
    }
}
