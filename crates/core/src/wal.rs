//! Durability: the write-ahead op log, periodic checkpoints, and crash
//! recovery ([`GhbaCluster::recover`]).
//!
//! # What is logged
//!
//! The WAL hooks the pin-once pipeline at its single serialization
//! point: the shard-log drain. When
//! [`drain_concurrent`](GhbaCluster::drain_concurrent) takes the
//! pending write records out of the namespace shards, the batch —
//! every resolved [`WriteRecord`] plus the staged-home publish set — is
//! appended (and, per policy, synced) **before any effect is applied**,
//! so nothing the cluster ever published can be missing from the log.
//! [`flush_all_updates`](GhbaCluster::flush_all_updates) barriers are
//! logged the same way, so the publish *history* (which filters were
//! refreshed when) replays exactly, not just the namespace.
//!
//! The log deliberately records post-admission `WriteRecord`s rather
//! than raw `OpBatch`es: by drain time every write has a resolved home,
//! so replay is independent of entry-policy RNG draws and of how
//! concurrent batches interleaved — the drain order *is* the total
//! order. Records are length-prefixed, CRC-checked, sequence-numbered,
//! and carry a versioned header, mirroring the wire-frame discipline of
//! `crates/net` (including the fingerprint re-verification on decode).
//!
//! # Durability contract, per [`SyncPolicy`]
//!
//! The durability point is the **drain**: a batch whose drain
//! completed is recoverable; writes executed but not yet drained are
//! lost by a crash (exactly the pipeline's visibility contract — their
//! effects had not published either). On top of that:
//!
//! * [`SyncPolicy::EveryBatch`] — `fdatasync` after every appended
//!   record. A drained batch survives process kill *and* power loss.
//! * [`SyncPolicy::GroupCommit`] — appends are written to the OS
//!   immediately but synced at most once per interval. A drained batch
//!   survives process kill (SIGKILL included: the page cache outlives
//!   the process); power loss may lose up to one interval of drains.
//! * [`SyncPolicy::None`] — no explicit sync. Survives process kill;
//!   power loss may lose everything since the last checkpoint install
//!   (which always syncs).
//!
//! Checkpoints serialize the namespace shards, each server's published
//! filter, and the membership/group shape into `checkpoint.bin`
//! (written tmp → fsync → rename, then the log is truncated — a crash
//! between rename and truncate is safe because replay skips records at
//! or below the checkpoint's sequence watermark).
//!
//! # What is *not* durable
//!
//! * L1 LRU caches and candidate-mask caches — caches, cold after
//!   recovery (outcome-invisible at `lru_capacity = 0`).
//! * Statistics, telemetry windows, and load reports.
//! * The position of the deterministic RNG stream —
//!   [`EntryPolicy::Random`](crate::EntryPolicy) draws resume from the
//!   fork point, so bit-identical recovery requires deterministic entry
//!   policies (the networked e2e recipe already does).
//! * `FileAttrs` inode numbers (reassigned on replay; never observable
//!   through an [`OpOutcome`](crate::OpOutcome)).
//! * Owner-side direct mutations (`create_file_at` and friends) bypass
//!   the shard logs; they are captured by the *next checkpoint* only.
//!   The replica pipeline never uses them.
//! * Within-group replica *placement* for controller-reshaped clusters:
//!   the checkpoint records group membership and epochs exactly, and
//!   recovery rebuilds replica placement deterministically
//!   (lightest-member-first), which can differ from a path-dependent
//!   pre-crash placement — identical homes and levels, possibly
//!   different modelled multicast latencies. Unreshaped clusters (the
//!   deployment default) recover bit-identically.
//!
//! # Recovery
//!
//! [`GhbaCluster::recover`] rebuilds a serving cluster from a WAL
//! directory: apply the checkpoint (config-guarded — a mismatched
//! seed/geometry is a typed error, never a silently wrong cluster),
//! then replay the log tail above the watermark through the same
//! drain/flush code paths the original execution took. Torn or
//! truncated tails — a crash mid-append — are truncated to the last
//! complete, CRC-valid, sequence-monotonic record: recovery **never
//! panics** on malformed bytes (the PR-8 malformed-frame discipline).

use std::collections::BTreeSet;
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ghba_bloom::{BloomFilter, FilterDelta, Fingerprint};

use crate::cluster::GhbaCluster;
use crate::concurrent::{WriteKind, WriteRecord};
use crate::config::GhbaConfig;
use crate::group::Group;
use crate::ids::{GroupEpoch, GroupId, MdsId, MembershipEpoch};
use crate::mds::published_shape;
use crate::snapshot::{RouteEdit, SlabOp};

/// Magic prefix of every WAL record body.
const WAL_MAGIC: [u8; 4] = *b"GWAL";
/// Magic prefix of the checkpoint body.
const CKPT_MAGIC: [u8; 4] = *b"GCKP";
/// On-disk format version (bump on any layout change, and regenerate
/// the golden fixtures alongside).
pub const WAL_VERSION: u16 = 1;

/// Record kind tags.
const KIND_DRAIN: u8 = 1;
const KIND_FLUSH: u8 = 2;

/// Upper bound on one frame body — a corrupt length prefix must not
/// provoke a giant allocation.
const MAX_FRAME_BYTES: usize = 1 << 28;

/// Log and checkpoint file names within a WAL directory.
const LOG_FILE: &str = "wal.log";
const CKPT_FILE: &str = "checkpoint.bin";
const CKPT_TMP: &str = "checkpoint.tmp";

/// When appended records are forced to stable storage.
///
/// See the module docs for the exact guarantee each policy buys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fdatasync` after every appended record.
    EveryBatch,
    /// Sync at most once per interval (group commit).
    GroupCommit(Duration),
    /// Never sync explicitly; the OS flushes on its own schedule.
    None,
}

/// How a [`Wal`] behaves once open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalOptions {
    /// When appends reach stable storage.
    pub sync: SyncPolicy,
    /// Install a checkpoint (and truncate the log) after this many
    /// appended records; `0` disables automatic checkpoints
    /// ([`GhbaCluster::checkpoint_now`] still works).
    pub checkpoint_every: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            sync: SyncPolicy::EveryBatch,
            checkpoint_every: 0,
        }
    }
}

/// Typed durability errors. Corruption and configuration mismatches are
/// reported, never panicked on.
#[derive(Debug)]
pub enum WalError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// Bytes that cannot be a record/checkpoint of this version.
    Corrupt(String),
    /// A checkpoint captured under an incompatible configuration.
    ConfigMismatch(String),
}

impl From<std::io::Error> for WalError {
    fn from(err: std::io::Error) -> Self {
        WalError::Io(err)
    }
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(err) => write!(f, "wal i/o: {err}"),
            WalError::Corrupt(detail) => write!(f, "wal corrupt: {detail}"),
            WalError::ConfigMismatch(detail) => write!(f, "wal config mismatch: {detail}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(err) => Some(err),
            _ => None,
        }
    }
}

/// One durable event, as decoded from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalEvent {
    /// One shard-log drain: the resolved write records (in drain order)
    /// plus the homes whose staged publishes the drain reconciled.
    Drain {
        /// Resolved namespace writes, in total (drain) order.
        records: Vec<WriteRecord>,
        /// Homes whose published filters the drain synchronized.
        staged: Vec<MdsId>,
    },
    /// A `flush_all_updates` barrier (every drifted filter published).
    FlushAll,
}

/// One sequenced log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotonic sequence number (1-based; never reset, even across
    /// checkpoints).
    pub seq: u64,
    /// The logged event.
    pub event: WalEvent,
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3 polynomial, reflected), table-driven.
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// The IEEE CRC32 of `bytes` (the checksum guarding every frame).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Byte-level codec helpers.
// ---------------------------------------------------------------------------

struct ByteReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, at: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WalError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| WalError::Corrupt(format!("truncated {what}")))?;
        let slice = &self.buf[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, WalError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, WalError> {
        Ok(u16::from_le_bytes(
            self.take(2, what)?.try_into().expect("sized"),
        ))
    }

    fn u32(&mut self, what: &str) -> Result<u32, WalError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("sized"),
        ))
    }

    fn u64(&mut self, what: &str) -> Result<u64, WalError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("sized"),
        ))
    }

    fn finish(self, what: &str) -> Result<(), WalError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WalError::Corrupt(format!("trailing bytes after {what}")))
        }
    }
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&u32::try_from(s.len()).expect("path fits u32").to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn read_str(reader: &mut ByteReader<'_>, what: &str) -> Result<String, WalError> {
    let len = reader.u32(what)? as usize;
    let bytes = reader.take(len, what)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| WalError::Corrupt(format!("{what} is not utf-8")))
}

/// Frames `body` as `[len u32][crc u32][body]`.
fn frame(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(
        &u32::try_from(body.len())
            .expect("body fits u32")
            .to_le_bytes(),
    );
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Unframes one `[len][crc][body]` frame from the head of `bytes`,
/// returning the body slice and total bytes consumed.
fn unframe(bytes: &[u8]) -> Result<(&[u8], usize), WalError> {
    if bytes.len() < 8 {
        return Err(WalError::Corrupt("truncated frame header".into()));
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().expect("sized")) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WalError::Corrupt(format!("frame length {len} exceeds cap")));
    }
    let expected_crc = u32::from_le_bytes(bytes[4..8].try_into().expect("sized"));
    let end = 8usize
        .checked_add(len)
        .filter(|&end| end <= bytes.len())
        .ok_or_else(|| WalError::Corrupt("truncated frame body".into()))?;
    let body = &bytes[8..end];
    if crc32(body) != expected_crc {
        return Err(WalError::Corrupt("frame checksum mismatch".into()));
    }
    Ok((body, end))
}

// ---------------------------------------------------------------------------
// Record codec.
// ---------------------------------------------------------------------------

fn encode_drain_payload(records: &[WriteRecord], staged: &[MdsId]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(
        &u32::try_from(records.len())
            .expect("count fits")
            .to_le_bytes(),
    );
    for record in records {
        let (op, home) = match record.kind {
            WriteKind::Create(home) => (0u8, home),
            WriteKind::Remove(home) => (1u8, home),
        };
        out.push(op);
        out.extend_from_slice(&home.0.to_le_bytes());
        let (a, b) = record.fp.lanes();
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
        push_str(&mut out, &record.path);
    }
    out.extend_from_slice(
        &u32::try_from(staged.len())
            .expect("count fits")
            .to_le_bytes(),
    );
    for home in staged {
        out.extend_from_slice(&home.0.to_le_bytes());
    }
    out
}

fn record_body(seq: u64, kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(4 + 2 + 8 + 1 + payload.len());
    body.extend_from_slice(&WAL_MAGIC);
    body.extend_from_slice(&WAL_VERSION.to_le_bytes());
    body.extend_from_slice(&seq.to_le_bytes());
    body.push(kind);
    body.extend_from_slice(payload);
    body
}

/// Encodes one record as it is laid out on disk (the golden-file
/// surface): `[len u32][crc u32]["GWAL"][version u16][seq u64][kind u8]
/// [payload]`, all little-endian.
#[must_use]
pub fn encode_record(seq: u64, event: &WalEvent) -> Vec<u8> {
    let (kind, payload) = match event {
        WalEvent::Drain { records, staged } => (KIND_DRAIN, encode_drain_payload(records, staged)),
        WalEvent::FlushAll => (KIND_FLUSH, Vec::new()),
    };
    frame(&record_body(seq, kind, &payload))
}

/// Decodes one record from the head of `bytes`, returning it and the
/// bytes consumed. Every malformed shape — truncation, checksum
/// mismatch, bad magic or version, non-utf-8 paths, a fingerprint that
/// does not match its path — is a typed [`WalError`], never a panic.
///
/// # Errors
///
/// [`WalError::Corrupt`] on any malformed byte sequence.
pub fn decode_record(bytes: &[u8]) -> Result<(WalRecord, usize), WalError> {
    let (body, consumed) = unframe(bytes)?;
    let mut reader = ByteReader::new(body);
    if reader.take(4, "record magic")? != WAL_MAGIC {
        return Err(WalError::Corrupt("bad record magic".into()));
    }
    let version = reader.u16("record version")?;
    if version != WAL_VERSION {
        return Err(WalError::Corrupt(format!(
            "unsupported wal version {version}"
        )));
    }
    let seq = reader.u64("record seq")?;
    let kind = reader.u8("record kind")?;
    let event = match kind {
        KIND_DRAIN => {
            let count = reader.u32("record count")? as usize;
            let mut records = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                let op = reader.u8("write op")?;
                let home = MdsId(reader.u16("write home")?);
                let a = reader.u64("fingerprint lane")?;
                let b = reader.u64("fingerprint lane")?;
                let path = read_str(&mut reader, "write path")?;
                let fp = Fingerprint::from_lanes(a, b);
                // The same re-verification the wire decoder applies to
                // `PathKey`s: a fingerprint must be *the* fingerprint
                // of its path, or the record has been tampered with.
                if Fingerprint::of(path.as_str()) != fp {
                    return Err(WalError::Corrupt(format!(
                        "fingerprint does not match path {path:?}"
                    )));
                }
                let kind = match op {
                    0 => WriteKind::Create(home),
                    1 => WriteKind::Remove(home),
                    other => return Err(WalError::Corrupt(format!("unknown write op {other}"))),
                };
                records.push(WriteRecord { path, fp, kind });
            }
            let staged_count = reader.u32("staged count")? as usize;
            let mut staged = Vec::with_capacity(staged_count.min(1 << 16));
            for _ in 0..staged_count {
                staged.push(MdsId(reader.u16("staged home")?));
            }
            WalEvent::Drain { records, staged }
        }
        KIND_FLUSH => WalEvent::FlushAll,
        other => return Err(WalError::Corrupt(format!("unknown record kind {other}"))),
    };
    reader.finish("record")?;
    Ok((WalRecord { seq, event }, consumed))
}

// ---------------------------------------------------------------------------
// Checkpoint.
// ---------------------------------------------------------------------------

/// The configuration facts a checkpoint was captured under. Recovery
/// refuses a checkpoint whose guard differs from the recovering
/// cluster's — replaying into a cluster with a different seed or filter
/// geometry would silently produce wrong filters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigGuard {
    /// Cluster seed (drives every filter family).
    pub seed: u64,
    /// `max_group_size` (drives the deterministic startup shape).
    pub max_group_size: u64,
    /// Published-filter width in bits.
    pub filter_bits: u64,
    /// Published-filter hash count.
    pub filter_hashes: u32,
    /// Namespace write-shard count.
    pub write_shards: u64,
}

impl ConfigGuard {
    fn of(config: &GhbaConfig) -> ConfigGuard {
        ConfigGuard {
            seed: config.seed,
            max_group_size: config.max_group_size as u64,
            filter_bits: config.filter_bits() as u64,
            filter_hashes: config.filter_hashes(),
            write_shards: config.write_shards as u64,
        }
    }
}

/// One group's durable shape: membership plus its configuration epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupShape {
    /// The group id.
    pub gid: GroupId,
    /// The group's [`GroupEpoch`] at capture time.
    pub epoch: u64,
    /// Member servers, in group order.
    pub members: Vec<MdsId>,
}

/// One server's durable state: its namespace (sorted by path, each
/// entry fingerprint-tagged), its published filter bytes, and the
/// publish-cadence counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerState {
    /// The server id.
    pub id: MdsId,
    /// Mutations since the last publish (drift-gate cadence state).
    pub since_publish: u64,
    /// Mutations since the last exact drift check.
    pub since_drift: u64,
    /// `(path, fingerprint lanes)`, sorted by path.
    pub files: Vec<(String, (u64, u64))>,
    /// [`BloomFilter::to_bytes`] of the published filter.
    pub published: Vec<u8>,
}

/// A full durable snapshot of a cluster: namespace shards, published
/// filter slab, membership/group shape, and the WAL sequence watermark
/// up to which the log is already folded in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The cluster's [`MembershipEpoch`] at capture time.
    pub epoch: u64,
    /// Records at or below this sequence number are part of the
    /// checkpoint; replay starts above it.
    pub wal_seq: u64,
    /// The configuration the checkpoint is only valid under.
    pub guard: ConfigGuard,
    /// The snapshot's monotonic group-id allocator position.
    pub next_group: u16,
    /// Every live group's shape, ascending by id.
    pub groups: Vec<GroupShape>,
    /// Every server's durable state, ascending by id.
    pub servers: Vec<ServerState>,
}

impl Checkpoint {
    /// Captures a checkpoint of `cluster` (which must have no pending
    /// concurrent writes — the owner drains before calling).
    pub(crate) fn capture(cluster: &GhbaCluster, wal_seq: u64) -> Checkpoint {
        let snap = cluster.routes.pin();
        let groups = snap
            .groups
            .iter()
            .map(|(&gid, group)| GroupShape {
                gid,
                epoch: snap.group_epoch(gid).0,
                members: group.members().to_vec(),
            })
            .collect();
        let servers = cluster
            .mdss
            .values()
            .map(|mds| {
                let mut files: Vec<(String, (u64, u64))> = mds
                    .store()
                    .paths()
                    .map(|path| (path.to_owned(), Fingerprint::of(path).lanes()))
                    .collect();
                files.sort();
                let (since_publish, since_drift) = mds.durable_counters();
                ServerState {
                    id: mds.id(),
                    since_publish,
                    since_drift,
                    files,
                    published: mds.published().to_bytes(),
                }
            })
            .collect();
        Checkpoint {
            epoch: snap.epoch.0,
            wal_seq,
            guard: ConfigGuard::of(&cluster.config),
            next_group: snap.next_group,
            groups,
            servers,
        }
    }

    /// Serializes the checkpoint as laid out on disk: one CRC frame
    /// around `["GCKP"][version][epoch][wal_seq][guard][shape][servers]`.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = Vec::new();
        body.extend_from_slice(&CKPT_MAGIC);
        body.extend_from_slice(&WAL_VERSION.to_le_bytes());
        body.extend_from_slice(&self.epoch.to_le_bytes());
        body.extend_from_slice(&self.wal_seq.to_le_bytes());
        body.extend_from_slice(&self.guard.seed.to_le_bytes());
        body.extend_from_slice(&self.guard.max_group_size.to_le_bytes());
        body.extend_from_slice(&self.guard.filter_bits.to_le_bytes());
        body.extend_from_slice(&self.guard.filter_hashes.to_le_bytes());
        body.extend_from_slice(&self.guard.write_shards.to_le_bytes());
        body.extend_from_slice(&self.next_group.to_le_bytes());
        body.extend_from_slice(
            &u32::try_from(self.groups.len())
                .expect("count fits")
                .to_le_bytes(),
        );
        for group in &self.groups {
            body.extend_from_slice(&group.gid.0.to_le_bytes());
            body.extend_from_slice(&group.epoch.to_le_bytes());
            body.extend_from_slice(
                &u32::try_from(group.members.len())
                    .expect("count fits")
                    .to_le_bytes(),
            );
            for member in &group.members {
                body.extend_from_slice(&member.0.to_le_bytes());
            }
        }
        body.extend_from_slice(
            &u32::try_from(self.servers.len())
                .expect("count fits")
                .to_le_bytes(),
        );
        for server in &self.servers {
            body.extend_from_slice(&server.id.0.to_le_bytes());
            body.extend_from_slice(&server.since_publish.to_le_bytes());
            body.extend_from_slice(&server.since_drift.to_le_bytes());
            body.extend_from_slice(
                &u32::try_from(server.files.len())
                    .expect("count fits")
                    .to_le_bytes(),
            );
            for (path, (a, b)) in &server.files {
                body.extend_from_slice(&a.to_le_bytes());
                body.extend_from_slice(&b.to_le_bytes());
                push_str(&mut body, path);
            }
            body.extend_from_slice(
                &u32::try_from(server.published.len())
                    .expect("count fits")
                    .to_le_bytes(),
            );
            body.extend_from_slice(&server.published);
        }
        frame(&body)
    }

    /// Decodes a checkpoint from [`to_bytes`](Checkpoint::to_bytes)
    /// output.
    ///
    /// # Errors
    ///
    /// [`WalError::Corrupt`] on any malformed byte sequence (bit flips
    /// are caught by the CRC, logical truncation by the reader).
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, WalError> {
        let (body, consumed) = unframe(bytes)?;
        if consumed != bytes.len() {
            return Err(WalError::Corrupt("trailing bytes after checkpoint".into()));
        }
        let mut reader = ByteReader::new(body);
        if reader.take(4, "checkpoint magic")? != CKPT_MAGIC {
            return Err(WalError::Corrupt("bad checkpoint magic".into()));
        }
        let version = reader.u16("checkpoint version")?;
        if version != WAL_VERSION {
            return Err(WalError::Corrupt(format!(
                "unsupported checkpoint version {version}"
            )));
        }
        let epoch = reader.u64("epoch")?;
        let wal_seq = reader.u64("wal watermark")?;
        let guard = ConfigGuard {
            seed: reader.u64("guard seed")?,
            max_group_size: reader.u64("guard group size")?,
            filter_bits: reader.u64("guard filter bits")?,
            filter_hashes: reader.u32("guard filter hashes")?,
            write_shards: reader.u64("guard write shards")?,
        };
        let next_group = reader.u16("next group")?;
        let group_count = reader.u32("group count")? as usize;
        let mut groups = Vec::with_capacity(group_count.min(1 << 16));
        for _ in 0..group_count {
            let gid = GroupId(reader.u16("group id")?);
            let gepoch = reader.u64("group epoch")?;
            let member_count = reader.u32("member count")? as usize;
            let mut members = Vec::with_capacity(member_count.min(1 << 16));
            for _ in 0..member_count {
                members.push(MdsId(reader.u16("group member")?));
            }
            groups.push(GroupShape {
                gid,
                epoch: gepoch,
                members,
            });
        }
        let server_count = reader.u32("server count")? as usize;
        let mut servers = Vec::with_capacity(server_count.min(1 << 16));
        for _ in 0..server_count {
            let id = MdsId(reader.u16("server id")?);
            let since_publish = reader.u64("since publish")?;
            let since_drift = reader.u64("since drift")?;
            let file_count = reader.u32("file count")? as usize;
            let mut files = Vec::with_capacity(file_count.min(1 << 16));
            for _ in 0..file_count {
                let a = reader.u64("file lane")?;
                let b = reader.u64("file lane")?;
                let path = read_str(&mut reader, "file path")?;
                if Fingerprint::of(path.as_str()) != Fingerprint::from_lanes(a, b) {
                    return Err(WalError::Corrupt(format!(
                        "checkpoint fingerprint does not match path {path:?}"
                    )));
                }
                files.push((path, (a, b)));
            }
            let published_len = reader.u32("published length")? as usize;
            let published = reader.take(published_len, "published filter")?.to_vec();
            servers.push(ServerState {
                id,
                since_publish,
                since_drift,
                files,
                published,
            });
        }
        reader.finish("checkpoint")?;
        Ok(Checkpoint {
            epoch,
            wal_seq,
            guard,
            next_group,
            groups,
            servers,
        })
    }
}

// ---------------------------------------------------------------------------
// The WAL itself.
// ---------------------------------------------------------------------------

/// What [`Wal::open`] found on disk.
#[derive(Debug)]
pub struct WalRecovery {
    /// The installed checkpoint, if one exists.
    pub checkpoint: Option<Checkpoint>,
    /// Every surviving log record, ascending by sequence (possibly
    /// including records at or below the checkpoint watermark, when a
    /// crash landed between checkpoint install and log truncation).
    pub records: Vec<WalRecord>,
    /// Bytes of torn/corrupt tail that were truncated away on open.
    pub truncated_bytes: u64,
}

/// An open write-ahead log (one directory: `wal.log` +
/// `checkpoint.bin`). Attach to a cluster with
/// [`GhbaCluster::attach_wal`] or obtain one already replayed via
/// [`GhbaCluster::recover`].
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    log: File,
    next_seq: u64,
    options: WalOptions,
    last_sync: Instant,
    appended_since_checkpoint: u64,
}

impl Wal {
    /// Opens (creating if needed) the WAL directory, reads the installed
    /// checkpoint, scans the log — truncating any torn or corrupt tail
    /// to the last complete, CRC-valid, sequence-monotonic record — and
    /// returns the log positioned for appending plus everything
    /// recovered.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] on filesystem failures; [`WalError::Corrupt`]
    /// when an *installed checkpoint* is unreadable (a torn log tail is
    /// recovered from, but a damaged checkpoint has nothing to recover
    /// with and must not be silently ignored).
    pub fn open(dir: &Path, options: WalOptions) -> Result<(Wal, WalRecovery), WalError> {
        fs::create_dir_all(dir)?;
        // A leftover tmp file is a checkpoint install that never reached
        // its rename: the installed checkpoint (if any) is still intact.
        let _ = fs::remove_file(dir.join(CKPT_TMP));
        let checkpoint = match fs::read(dir.join(CKPT_FILE)) {
            Ok(bytes) => Some(Checkpoint::from_bytes(&bytes)?),
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => None,
            Err(err) => return Err(err.into()),
        };
        let watermark = checkpoint.as_ref().map_or(0, |c| c.wal_seq);
        let log_path = dir.join(LOG_FILE);
        let bytes = match fs::read(&log_path) {
            Ok(bytes) => bytes,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(err) => return Err(err.into()),
        };
        let mut records = Vec::new();
        let mut good = 0usize;
        let mut prev_seq: Option<u64> = None;
        while good < bytes.len() {
            match decode_record(&bytes[good..]) {
                Ok((record, consumed)) => {
                    if prev_seq.is_some_and(|prev| record.seq <= prev) {
                        // Sequence regressed: everything from here on is
                        // stale or scrambled — treat as tail damage.
                        break;
                    }
                    prev_seq = Some(record.seq);
                    records.push(record);
                    good += consumed;
                }
                // Torn tail (crash mid-append) or tail corruption:
                // recover to the last complete record, never panic.
                Err(_) => break,
            }
        }
        let truncated_bytes = (bytes.len() - good) as u64;
        let mut log = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(&log_path)?;
        if truncated_bytes > 0 {
            log.set_len(good as u64)?;
            log.sync_data()?;
        }
        log.seek(SeekFrom::Start(good as u64))?;
        let last_seq = records.last().map_or(watermark, |r| r.seq.max(watermark));
        let appended_since_checkpoint = records.iter().filter(|r| r.seq > watermark).count() as u64;
        let wal = Wal {
            dir: dir.to_path_buf(),
            log,
            next_seq: last_seq + 1,
            options,
            last_sync: Instant::now(),
            appended_since_checkpoint,
        };
        Ok((
            wal,
            WalRecovery {
                checkpoint,
                records,
                truncated_bytes,
            },
        ))
    }

    /// The directory this log lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The sequence number the next append will use.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The sequence number of the last appended (or recovered) record;
    /// `0` when the log has never held one.
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Appends one drain record (see [`WalEvent::Drain`]).
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] when the append or sync fails.
    pub fn append_drain(
        &mut self,
        records: &[WriteRecord],
        staged: &[MdsId],
    ) -> Result<u64, WalError> {
        let payload = encode_drain_payload(records, staged);
        self.append_raw(KIND_DRAIN, &payload)
    }

    /// Appends one flush-barrier record (see [`WalEvent::FlushAll`]).
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] when the append or sync fails.
    pub fn append_flush(&mut self) -> Result<u64, WalError> {
        self.append_raw(KIND_FLUSH, &[])
    }

    fn append_raw(&mut self, kind: u8, payload: &[u8]) -> Result<u64, WalError> {
        let seq = self.next_seq;
        self.log
            .write_all(&frame(&record_body(seq, kind, payload)))?;
        match self.options.sync {
            SyncPolicy::EveryBatch => self.log.sync_data()?,
            SyncPolicy::GroupCommit(interval) => {
                if self.last_sync.elapsed() >= interval {
                    self.log.sync_data()?;
                    self.last_sync = Instant::now();
                }
            }
            SyncPolicy::None => {}
        }
        self.next_seq += 1;
        self.appended_since_checkpoint += 1;
        Ok(seq)
    }

    /// Forces everything appended so far to stable storage, whatever
    /// the sync policy.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] when the sync fails.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.log.sync_data()?;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Whether the automatic-checkpoint threshold has been reached.
    #[must_use]
    pub fn checkpoint_due(&self) -> bool {
        self.options.checkpoint_every > 0
            && self.appended_since_checkpoint >= self.options.checkpoint_every
    }

    /// Records appended (or recovered) above the installed checkpoint's
    /// watermark — the length of the replay tail a crash right now
    /// would incur.
    #[must_use]
    pub fn tail_len(&self) -> u64 {
        self.appended_since_checkpoint
    }

    /// Atomically installs `checkpoint` (tmp → fsync → rename → dir
    /// sync) and truncates the log. A crash between the rename and the
    /// truncation is safe: recovery skips records at or below the
    /// checkpoint's watermark.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] when any step fails (an installed older
    /// checkpoint stays intact in that case).
    pub fn install_checkpoint(&mut self, checkpoint: &Checkpoint) -> Result<(), WalError> {
        let tmp = self.dir.join(CKPT_TMP);
        {
            let mut file = File::create(&tmp)?;
            file.write_all(&checkpoint.to_bytes())?;
            file.sync_all()?;
        }
        fs::rename(&tmp, self.dir.join(CKPT_FILE))?;
        if let Ok(dir) = File::open(&self.dir) {
            let _ = dir.sync_all();
        }
        self.log.set_len(0)?;
        self.log.seek(SeekFrom::Start(0))?;
        self.log.sync_data()?;
        self.appended_since_checkpoint = 0;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Cluster integration: attach, checkpoint, recover.
// ---------------------------------------------------------------------------

impl GhbaCluster {
    /// Attaches an open WAL: every subsequent shard-log drain and flush
    /// barrier is logged (and synced per the WAL's policy) before its
    /// effects apply. Pending concurrent writes are drained (unlogged —
    /// they pre-date the attachment) first.
    pub fn attach_wal(&mut self, wal: Wal) {
        self.maybe_drain();
        self.wal = Some(Box::new(wal));
    }

    /// Detaches and returns the WAL, draining (and logging) any pending
    /// writes first.
    pub fn detach_wal(&mut self) -> Option<Wal> {
        self.maybe_drain();
        self.wal.take().map(|wal| *wal)
    }

    /// The attached WAL, if any.
    #[must_use]
    pub fn wal(&self) -> Option<&Wal> {
        self.wal.as_deref()
    }

    /// Captures a durable snapshot of the current state (draining
    /// pending concurrent writes first). The watermark is the last
    /// WAL sequence when a WAL is attached, `0` otherwise.
    pub fn capture_checkpoint(&mut self) -> Checkpoint {
        self.maybe_drain();
        let wal_seq = self.wal.as_ref().map_or(0, |wal| wal.last_seq());
        Checkpoint::capture(self, wal_seq)
    }

    /// Captures and installs a checkpoint through the attached WAL
    /// (truncating the log). Returns `false` (and does nothing) without
    /// an attached WAL.
    ///
    /// # Errors
    ///
    /// Propagates [`WalError::Io`] from the install.
    pub fn checkpoint_now(&mut self) -> Result<bool, WalError> {
        self.maybe_drain();
        let Some(mut wal) = self.wal.take() else {
            return Ok(false);
        };
        let checkpoint = Checkpoint::capture(self, wal.last_seq());
        let result = wal.install_checkpoint(&checkpoint);
        self.wal = Some(wal);
        result.map(|()| true)
    }

    /// Installs an automatic checkpoint when the attached WAL's
    /// threshold has been reached (called at the end of every drain,
    /// when the cluster is momentarily clean).
    pub(crate) fn maybe_checkpoint(&mut self) {
        if !self.wal.as_ref().is_some_and(|wal| wal.checkpoint_due()) {
            return;
        }
        let mut wal = self.wal.take().expect("checked above");
        let checkpoint = Checkpoint::capture(self, wal.last_seq());
        wal.install_checkpoint(&checkpoint)
            .expect("checkpoint install failed: the log can no longer be bounded");
        self.wal = Some(wal);
    }

    /// Rebuilds a serving cluster from a WAL directory: construct the
    /// deterministic startup shape, apply the installed checkpoint (if
    /// any), replay the log tail above the watermark through the same
    /// drain/flush paths original execution took, and attach the WAL
    /// for continued logging. An empty or absent directory yields a
    /// fresh cluster with a fresh log — first boot and restart share
    /// one entry point.
    ///
    /// # Errors
    ///
    /// [`WalError::Corrupt`] for undecodable checkpoints or records
    /// that name unknown servers; [`WalError::ConfigMismatch`] when the
    /// checkpoint's config guard or server roster differs from
    /// `config`/`servers`; [`WalError::Io`] on filesystem failures.
    /// Torn log tails are not errors (they truncate cleanly).
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn recover(
        config: GhbaConfig,
        servers: usize,
        dir: &Path,
        options: WalOptions,
    ) -> Result<GhbaCluster, WalError> {
        let (wal, recovery) = Wal::open(dir, options)?;
        let mut cluster = GhbaCluster::with_servers(config, servers);
        let watermark = recovery.checkpoint.as_ref().map_or(0, |c| c.wal_seq);
        if let Some(checkpoint) = &recovery.checkpoint {
            cluster.restore_checkpoint(checkpoint)?;
        }
        for record in &recovery.records {
            if record.seq <= watermark {
                continue;
            }
            cluster.replay_wal_event(&record.event)?;
        }
        cluster.wal = Some(Box::new(wal));
        Ok(cluster)
    }

    fn restore_checkpoint(&mut self, checkpoint: &Checkpoint) -> Result<(), WalError> {
        let guard = ConfigGuard::of(&self.config);
        if guard != checkpoint.guard {
            return Err(WalError::ConfigMismatch(format!(
                "checkpoint guard {:?} vs configured {:?}",
                checkpoint.guard, guard
            )));
        }
        let live_ids = self.server_ids();
        let ckpt_ids: Vec<MdsId> = checkpoint.servers.iter().map(|s| s.id).collect();
        if live_ids != ckpt_ids {
            return Err(WalError::ConfigMismatch(format!(
                "checkpoint rosters {ckpt_ids:?} vs configured {live_ids:?}"
            )));
        }
        let shape_matches = {
            let snap = self.routes.pin();
            checkpoint.next_group == snap.next_group
                && checkpoint.epoch == snap.epoch.0
                && checkpoint.groups.len() == snap.groups.len()
                && checkpoint.groups.iter().all(|shape| {
                    snap.group_epoch(shape.gid).0 == shape.epoch
                        && snap
                            .groups
                            .get(&shape.gid)
                            .is_some_and(|live| live.members() == shape.members.as_slice())
                })
        };
        if !shape_matches {
            self.restore_group_shape(checkpoint)?;
        }
        let expected_shape = published_shape(&self.config);
        for state in &checkpoint.servers {
            let published = BloomFilter::from_bytes(&state.published)
                .map_err(|err| WalError::Corrupt(format!("checkpoint filter: {err}")))?;
            if published.shape() != expected_shape {
                return Err(WalError::ConfigMismatch(
                    "checkpoint filter geometry differs from configuration".into(),
                ));
            }
            let mds = self.mdss.get_mut(&state.id).expect("roster validated");
            for (path, (a, b)) in &state.files {
                mds.create_local_fp(path, &Fingerprint::from_lanes(*a, *b));
            }
            mds.restore_published(published, state.since_publish, state.since_drift);
        }
        // Synchronize every slab column with its restored published
        // filter (sparse deltas; no epoch movement — a publish refreshes
        // content under the same layout).
        let routes = Arc::clone(&self.routes);
        let mut edit = RouteEdit::begin(&routes, self.config.epoch_granularity);
        let mut ops: Vec<(MdsId, FilterDelta)> = Vec::new();
        for (&id, mds) in &self.mdss {
            let Some(column) = edit.work.slab.extract(id) else {
                continue;
            };
            if let Ok(delta) = FilterDelta::between(&column, mds.published()) {
                if !delta.is_empty() {
                    ops.push((id, delta));
                }
            }
        }
        for (id, delta) in ops {
            edit.push_op(SlabOp::Delta(id, delta));
        }
        edit.commit();
        Ok(())
    }

    /// Restores a checkpointed group shape that differs from the
    /// deterministic startup shape (a controller reshaped the cluster
    /// before the capture): exact membership, group epochs, allocator
    /// position, and membership epoch; replica placement is rebuilt
    /// deterministically (see the module docs).
    fn restore_group_shape(&mut self, checkpoint: &Checkpoint) -> Result<(), WalError> {
        let mut seen: BTreeSet<MdsId> = BTreeSet::new();
        let mut gids: BTreeSet<GroupId> = BTreeSet::new();
        for shape in &checkpoint.groups {
            if shape.members.is_empty() {
                return Err(WalError::Corrupt(format!("empty group {}", shape.gid)));
            }
            if shape.gid.0 >= checkpoint.next_group || !gids.insert(shape.gid) {
                return Err(WalError::Corrupt(format!(
                    "group shape allocator inconsistency at {}",
                    shape.gid
                )));
            }
            for &member in &shape.members {
                if !seen.insert(member) {
                    return Err(WalError::Corrupt(format!(
                        "server {member} appears in two groups"
                    )));
                }
            }
        }
        if seen.iter().copied().collect::<Vec<_>>() != self.server_ids() {
            return Err(WalError::Corrupt(
                "group shape does not cover the server roster".into(),
            ));
        }
        let routes = Arc::clone(&self.routes);
        let mut edit = RouteEdit::begin(&routes, self.config.epoch_granularity);
        let old: Vec<GroupId> = edit.work.groups.keys().copied().collect();
        for gid in old {
            edit.remove_group(gid);
        }
        edit.work.group_of.clear();
        for shape in &checkpoint.groups {
            let mut group = Group::new(shape.gid);
            for &member in &shape.members {
                group.add_member(member);
                edit.work.group_of.insert(member, shape.gid);
            }
            edit.insert_group(group);
        }
        for shape in &checkpoint.groups {
            edit.rebuild_coverage(shape.gid);
        }
        edit.work.next_group = checkpoint.next_group;
        edit.work.epoch = MembershipEpoch(checkpoint.epoch);
        for shape in &checkpoint.groups {
            edit.work
                .group_epochs
                .insert(shape.gid, GroupEpoch(shape.epoch));
        }
        self.finish_edit(edit);
        self.refresh_replica_charges();
        Ok(())
    }

    /// Replays one logged event through the same paths the original
    /// execution took (the attached WAL must be `None` while replaying;
    /// [`recover`](GhbaCluster::recover) attaches it afterwards).
    fn replay_wal_event(&mut self, event: &WalEvent) -> Result<(), WalError> {
        match event {
            WalEvent::Drain { records, staged } => {
                for record in records {
                    if let WriteKind::Create(home) = record.kind {
                        if !self.mdss.contains_key(&home) {
                            return Err(WalError::Corrupt(format!(
                                "logged create targets unknown server {home}"
                            )));
                        }
                    }
                }
                self.apply_write_records(records);
                self.reconcile_staged(staged);
            }
            WalEvent::FlushAll => {
                let _ = self.flush_all_updates();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn record_round_trips() {
        let event = WalEvent::Drain {
            records: vec![
                WriteRecord {
                    path: "/a/b".into(),
                    fp: Fingerprint::of("/a/b"),
                    kind: WriteKind::Create(MdsId(3)),
                },
                WriteRecord {
                    path: "/a/b".into(),
                    fp: Fingerprint::of("/a/b"),
                    kind: WriteKind::Remove(MdsId(3)),
                },
            ],
            staged: vec![MdsId(1), MdsId(3)],
        };
        let bytes = encode_record(7, &event);
        let (record, consumed) = decode_record(&bytes).expect("round trip");
        assert_eq!(consumed, bytes.len());
        assert_eq!(record, WalRecord { seq: 7, event });
    }

    #[test]
    fn flush_record_round_trips() {
        let bytes = encode_record(1, &WalEvent::FlushAll);
        let (record, _) = decode_record(&bytes).expect("round trip");
        assert_eq!(record.seq, 1);
        assert_eq!(record.event, WalEvent::FlushAll);
    }

    #[test]
    fn tampered_fingerprint_is_rejected() {
        let event = WalEvent::Drain {
            records: vec![WriteRecord {
                path: "/t/x".into(),
                fp: Fingerprint::of("/t/OTHER"),
                kind: WriteKind::Create(MdsId(0)),
            }],
            staged: vec![],
        };
        // encode_record writes the (wrong) lanes verbatim; the CRC is
        // valid, so only the semantic re-verification can catch it.
        let bytes = encode_record(1, &event);
        assert!(matches!(
            decode_record(&bytes),
            Err(WalError::Corrupt(detail)) if detail.contains("fingerprint")
        ));
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let event = WalEvent::Drain {
            records: vec![WriteRecord {
                path: "/p/q".into(),
                fp: Fingerprint::of("/p/q"),
                kind: WriteKind::Create(MdsId(1)),
            }],
            staged: vec![MdsId(1)],
        };
        let bytes = encode_record(9, &event);
        for cut in 0..bytes.len() {
            assert!(
                decode_record(&bytes[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_a_typed_error_or_decodes_nothing_silently_wrong() {
        let event = WalEvent::Drain {
            records: vec![WriteRecord {
                path: "/flip/me".into(),
                fp: Fingerprint::of("/flip/me"),
                kind: WriteKind::Remove(MdsId(2)),
            }],
            staged: vec![],
        };
        let clean = encode_record(3, &event);
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut dirty = clean.clone();
                dirty[byte] ^= 1 << bit;
                match decode_record(&dirty) {
                    // Flips in the length prefix can widen the frame; a
                    // *valid* decode must still be byte-faithful, which a
                    // CRC-checked body with matched length cannot fake.
                    Ok((record, _)) => {
                        panic!("bit flip {byte}:{bit} decoded silently: {record:?}")
                    }
                    Err(WalError::Corrupt(_)) => {}
                    Err(other) => panic!("unexpected error class: {other}"),
                }
            }
        }
    }
}
