//! The data-parallel batch execution engine: a persistent, process-wide
//! `std::thread` worker pool that fans independent jobs out and joins
//! them before returning.
//!
//! # Why a pool, and why here
//!
//! Every hot path of the lookup pipeline is batched and SIMD-dispatched,
//! but a batch still drains on one core. The published slab is
//! read-shared and the per-query verdicts of a fused lookup run are
//! independent, so the walk is embarrassingly parallel across
//! fingerprints — the schemes split a large run into per-worker chunks,
//! each walked against `&self` with its own scratch arena, and hand the
//! chunk closures to [`run_jobs`]. The pool is **zero-dependency**
//! (std threads, a mutex-guarded injector queue, a condvar — no rayon)
//! and **persistent**: worker threads are spawned on first use, parked
//! between calls, and reused by every cluster, node, and bench in the
//! process, so a steady stream of batches never pays thread spawns.
//!
//! # Execution contract
//!
//! [`run_jobs`] takes a `Vec` of `FnOnce` jobs borrowing arbitrarily
//! short-lived data and returns only when **every** job has finished:
//!
//! * job 0 always runs inline on the calling thread (so `workers = 1`
//!   degenerates to a plain call with no pool involvement at all);
//! * jobs 1..N are pushed to the shared injector queue and executed by
//!   parked pool workers;
//! * after finishing its inline job the caller *steals* still-queued
//!   jobs and runs them itself — the pool therefore guarantees progress
//!   even with zero worker threads (spawn failure, exhausted pool), and
//!   a caller never idles while its own work is queued;
//! * a panicking job does not tear anything down: the panic payload is
//!   carried back and **re-raised on the calling thread** after all
//!   sibling jobs completed (the lowest job index wins when several
//!   panic, so propagation is deterministic). Pool workers survive
//!   panics and return to the queue.
//!
//! The wait-for-all rule is what makes the internal lifetime erasure
//! sound — no borrow handed to a job can outlive the `run_jobs` call,
//! panics included — and what makes the callers' *stream-order splice*
//! simple: by the time `run_jobs` returns, every chunk's verdicts are
//! fully written and can be stitched back together in batch order.
//!
//! # Use from `&self`: the pin-once pipeline
//!
//! Nothing in the engine requires `&mut` anything: [`run_chunked`]
//! borrows its arena `Vec` from the caller, so a scheme that owns no
//! reusable scratch can dispatch with a **local** arena vector from a
//! shared reference — exactly what the pin-once concurrent pipeline
//! (`execute_concurrent`) does. Each fused run pins one snapshot, hands
//! `run_chunked` a fresh `Vec` of chunk arenas (outcomes + per-chunk
//! mask memo), and splices the results; the closures capture only
//! `&self` and the pinned snapshot, both `Sync`. The arenas are not
//! reused across calls on that path — the allocation is one `Vec` per
//! fused run, a fraction of the walk cost — and in exchange any number
//! of threads can drive fused runs through one scheme concurrently.
//!
//! # Non-goals
//!
//! Jobs must not call [`run_jobs`] recursively from inside a pool
//! worker (a worker waiting on sub-jobs would occupy a slot the
//! sub-jobs may need; the caller-steals rule keeps it live-locked-free
//! but slow). The lookup pipeline never nests: schemes dispatch chunks,
//! chunks never dispatch.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Condvar, Mutex, OnceLock};

/// A caught panic payload, en route back to the dispatching thread.
type Panic = Box<dyn std::any::Any + Send + 'static>;

/// A job as it travels through the injector queue: the closure (its
/// borrow lifetime erased — see the safety argument in [`run_jobs`]),
/// its index within the dispatching call, and the completion channel.
struct Task {
    job: Box<dyn FnOnce() + Send + 'static>,
    index: usize,
    done: Sender<(usize, Option<Panic>)>,
}

/// Hard ceiling on pool threads, process-wide. Worker counts above the
/// machine's core count only add scheduling noise, and the caller-steals
/// rule keeps any request fully serviceable regardless of this cap.
const MAX_POOL_THREADS: usize = 32;

struct PoolState {
    queue: VecDeque<Task>,
    /// Worker threads ever spawned (they never exit).
    spawned: usize,
    /// Workers currently parked on the condvar.
    idle: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    available: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            queue: VecDeque::new(),
            spawned: 0,
            idle: 0,
        }),
        available: Condvar::new(),
    })
}

/// Runs one task to completion, always reporting back — a panicking job
/// sends its payload instead of unwinding the worker.
fn run_task(task: Task) {
    let Task { job, index, done } = task;
    let result = catch_unwind(AssertUnwindSafe(job));
    // A closed channel means the dispatcher is gone mid-wait, which the
    // wait-for-all discipline rules out; ignore rather than unwind.
    let _ = done.send((index, result.err()));
}

/// The persistent worker body: pop a task or park.
fn worker_loop() {
    let pool = pool();
    loop {
        let task = {
            let mut state = pool.state.lock().expect("pool lock");
            loop {
                if let Some(task) = state.queue.pop_front() {
                    break task;
                }
                state.idle += 1;
                state = pool.available.wait(state).expect("pool lock");
                state.idle -= 1;
            }
        };
        run_task(task);
    }
}

/// Executes every job to completion, fanning jobs 1..N out to the
/// persistent pool while job 0 runs on the calling thread; returns (or
/// resumes the lowest-index panic) only after **all** jobs finished.
///
/// See the module docs for the full contract. The jobs may borrow data
/// of any lifetime — the call's wait-for-all discipline bounds every
/// borrow.
pub fn run_jobs(jobs: Vec<Box<dyn FnOnce() + Send + '_>>) {
    let total = jobs.len();
    let mut jobs = jobs;
    if total == 0 {
        return;
    }
    if total == 1 {
        // The sequential degenerate case: no queue, no channel, no pool.
        (jobs.pop().expect("one job"))();
        return;
    }
    let pool = pool();
    let (done_tx, done_rx) = channel();
    let mut iter = jobs.into_iter();
    let inline = iter.next().expect("total >= 2");
    {
        let mut state = pool.state.lock().expect("pool lock");
        for (offset, job) in iter.enumerate() {
            // SAFETY: the erased borrows inside `job` stay valid for the
            // whole `run_jobs` call, and this function does not return —
            // normally or by unwinding — until it has received one
            // completion per dispatched task (each sent only *after* its
            // job ran or panicked). No dispatched closure can therefore
            // be executed, or even dropped, after the borrowed data goes
            // out of scope.
            let job: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(job) };
            state.queue.push_back(Task {
                job,
                index: offset + 1,
                done: done_tx.clone(),
            });
        }
        // Top the pool up so every queued task *can* run concurrently;
        // failures and the cap are harmless thanks to caller stealing.
        // The slots are reserved under the lock but the spawn syscalls
        // run outside it, so concurrent dispatchers and popping workers
        // never serialize behind thread creation.
        let deficit = (total - 1)
            .saturating_sub(state.idle)
            .min(MAX_POOL_THREADS.saturating_sub(state.spawned));
        state.spawned += deficit;
        drop(state);
        pool.available.notify_all();
        let mut failed = 0usize;
        for _ in 0..deficit {
            if std::thread::Builder::new()
                .name("ghba-exec".into())
                .spawn(worker_loop)
                .is_err()
            {
                failed += 1;
            }
        }
        if failed > 0 {
            pool.state.lock().expect("pool lock").spawned -= failed;
        }
    }

    // Deterministic propagation: the lowest-index panic wins.
    let mut first_panic: Option<(usize, Panic)> = None;
    let note_panic = |index: usize, payload: Panic, slot: &mut Option<(usize, Panic)>| {
        if slot.as_ref().is_none_or(|(at, _)| index < *at) {
            *slot = Some((index, payload));
        }
    };
    if let Err(payload) = catch_unwind(AssertUnwindSafe(inline)) {
        note_panic(0, payload, &mut first_panic);
    }
    // Steal still-queued tasks (ours or a concurrent caller's): progress
    // never depends on pool threads existing, and the caller contributes
    // instead of idling.
    loop {
        let stolen = pool.state.lock().expect("pool lock").queue.pop_front();
        match stolen {
            Some(task) => run_task(task),
            None => break,
        }
    }
    for _ in 0..total - 1 {
        let (index, panicked) = done_rx
            .recv()
            .expect("every dispatched task reports completion");
        if let Some(payload) = panicked {
            note_panic(index, payload, &mut first_panic);
        }
    }
    if let Some((_, payload)) = first_panic {
        resume_unwind(payload);
    }
}

/// Splits `total` items into `workers` contiguous chunks of near-equal
/// size, returning the chunk length (the last chunk may be shorter).
/// Used by every scheme's parallel walk so the partitioning — and with
/// it the worker-local memoization boundaries — is uniform.
#[must_use]
pub fn chunk_len(total: usize, workers: usize) -> usize {
    total.div_ceil(workers.max(1)).max(1)
}

/// The one chunk-dispatch shape every parallel read phase shares: gate
/// on `executor` (`workers = 1` or a sub-`min_parallel_batch` batch
/// runs as a single inline chunk with no pool involvement), split
/// `items` into contiguous per-worker chunks, pair each chunk with its
/// own arena from `arenas` (grown with `A::default` as needed — the
/// caller keeps the vector across calls so arenas persist), and run
/// `walk(chunk, arena)` for every pair through [`run_jobs`] (chunk 0
/// inline, the rest on the pool; wait-for-all; deterministic panic
/// propagation).
///
/// Returns the number of arenas used; `arenas[..used]` hold the chunk
/// results **in item order**, ready for a stream-order splice. Keeping
/// the gating and arena handling here — instead of copy-pasted per
/// scheme — means a fix to either applies everywhere at once.
pub fn run_chunked<T, A, F>(
    items: &[T],
    executor: crate::config::ExecutorConfig,
    arenas: &mut Vec<A>,
    walk: F,
) -> usize
where
    T: Sync,
    A: Send + Default,
    F: Fn(&[T], &mut A) + Sync,
{
    let total = items.len();
    if total == 0 {
        return 0;
    }
    let workers = executor.workers.min(total);
    let chunks = if workers > 1 && total >= executor.min_parallel_batch {
        workers
    } else {
        1
    };
    let size = chunk_len(total, chunks);
    let used = total.div_ceil(size);
    if arenas.len() < used {
        arenas.resize_with(used, A::default);
    }
    let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = items
        .chunks(size)
        .zip(arenas.iter_mut())
        .map(|(chunk, arena)| {
            let walk = &walk;
            Box::new(move || walk(chunk, arena)) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    run_jobs(jobs);
    used
}

/// Cross-chunk deduplication for batched walks whose read phase is a
/// pure function of a per-item key: returns `(uniques, assign)` where
/// `uniques` lists the index of the **first occurrence** of each
/// distinct key in item order, and `assign[i]` is the position within
/// `uniques` owning item `i`'s key. Callers walk only
/// `uniques`-selected items and fan each result back out through
/// `assign` — duplicates landing in *different* workers' chunks (which
/// chunk-local memoization cannot see) are resolved exactly once.
///
/// With no duplicate keys, `uniques` is `0..items.len()` and `assign`
/// is the identity, so the fast path costs one hash-map pass.
pub fn resolve_unique<T, K, F>(items: &[T], key: F) -> (Vec<u32>, Vec<u32>)
where
    K: std::hash::Hash + Eq,
    F: Fn(&T) -> K,
{
    let mut slots: std::collections::HashMap<K, u32> = std::collections::HashMap::new();
    let mut uniques = Vec::with_capacity(items.len());
    let mut assign = Vec::with_capacity(items.len());
    for (index, item) in items.iter().enumerate() {
        let next = uniques.len() as u32;
        let slot = *slots.entry(key(item)).or_insert_with(|| {
            uniques.push(index as u32);
            next
        });
        assign.push(slot);
    }
    (uniques, assign)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn resolve_unique_identity_without_duplicates() {
        let items = ["a", "b", "c"];
        let (uniques, assign) = resolve_unique(&items, |s| *s);
        assert_eq!(uniques, vec![0, 1, 2]);
        assert_eq!(assign, vec![0, 1, 2]);
    }

    #[test]
    fn resolve_unique_maps_duplicates_to_first_occurrence() {
        let items = ["x", "y", "x", "z", "y", "x"];
        let (uniques, assign) = resolve_unique(&items, |s| *s);
        assert_eq!(uniques, vec![0, 1, 3]);
        assert_eq!(assign, vec![0, 1, 0, 2, 1, 0]);
        for (i, &slot) in assign.iter().enumerate() {
            assert_eq!(items[uniques[slot as usize] as usize], items[i]);
        }
    }

    #[test]
    fn resolve_unique_empty() {
        let (uniques, assign) = resolve_unique::<u32, u32, _>(&[], |&v| v);
        assert!(uniques.is_empty());
        assert!(assign.is_empty());
    }

    #[test]
    fn empty_and_single_job_run_inline() {
        run_jobs(Vec::new());
        let mut hit = false;
        run_jobs(vec![Box::new(|| hit = true)]);
        assert!(hit);
    }

    #[test]
    fn all_jobs_run_and_borrow_locals() {
        let mut outs = vec![0u64; 9];
        let counter = AtomicUsize::new(0);
        {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = outs
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    let counter = &counter;
                    Box::new(move || {
                        *slot = (i as u64 + 1) * 10;
                        counter.fetch_add(1, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            run_jobs(jobs);
        }
        assert_eq!(counter.load(Ordering::SeqCst), 9);
        assert_eq!(outs, vec![10, 20, 30, 40, 50, 60, 70, 80, 90]);
    }

    #[test]
    fn pool_is_reusable_across_calls() {
        for round in 0..20 {
            let mut outs = [0usize; 5];
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = outs
                .iter_mut()
                .map(|slot| Box::new(move || *slot = round + 1) as Box<dyn FnOnce() + Send + '_>)
                .collect();
            run_jobs(jobs);
            assert!(outs.iter().all(|&v| v == round + 1));
        }
    }

    #[test]
    fn panic_in_pool_job_propagates_after_siblings_finish() {
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..6)
                .map(|i| {
                    let finished = &finished;
                    Box::new(move || {
                        if i == 3 {
                            panic!("poisoned worker {i}");
                        }
                        finished.fetch_add(1, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            run_jobs(jobs);
        }));
        let payload = result.expect_err("the poisoned job must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(message.contains("poisoned worker 3"), "got: {message}");
        // Every sibling ran to completion before the unwind reached us.
        assert_eq!(finished.load(Ordering::SeqCst), 5);
        // The pool survives a poisoned batch.
        let mut ok = [false; 4];
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = ok
            .iter_mut()
            .map(|slot| Box::new(move || *slot = true) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        run_jobs(jobs);
        assert!(ok.iter().all(|&v| v));
    }

    #[test]
    fn inline_job_panic_still_waits_for_pool_jobs() {
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                .map(|i| {
                    let finished = &finished;
                    Box::new(move || {
                        if i == 0 {
                            panic!("inline poison");
                        }
                        finished.fetch_add(1, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            run_jobs(jobs);
        }));
        assert!(result.is_err());
        assert_eq!(finished.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn lowest_index_panic_wins() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..5)
                .map(|i| {
                    Box::new(move || {
                        if i >= 2 {
                            panic!("job {i} failed");
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            run_jobs(jobs);
        }));
        let payload = result.expect_err("panics expected");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(message, "job 2 failed");
    }

    #[test]
    fn chunking_covers_every_item() {
        assert_eq!(chunk_len(128, 4), 32);
        assert_eq!(chunk_len(130, 4), 33);
        assert_eq!(chunk_len(3, 8), 1);
        assert_eq!(chunk_len(5, 0), 5);
        assert_eq!(chunk_len(0, 4), 1);
    }
}
