//! Group bookkeeping: membership, replica placement, and the IDBFA.
//!
//! Within a group, each Bloom filter replica from another group's MDS
//! resides on exactly one member. The paper tracks *which* member with an
//! ID Bloom filter array (IDBFA) of counting filters (§2.4): probabilistic,
//! tiny, and — unlike modular hashing — stable under reconfiguration, so a
//! membership change never forces wholesale replica reshuffling.
//!
//! This module keeps both views: the IDBFA (used by the simulated protocol,
//! false positives included) and the exact placement map (ground truth for
//! invariant checking and for resolving IDBFA multi-hits, whose penalty is
//! merely a dropped message at the falsely identified member).

use std::collections::BTreeMap;

use ghba_bloom::{CountingBloomFilter, Fingerprint, Hit};

use crate::ids::{GroupId, MdsId};

/// Geometry of the per-member ID filters. The paper: "when the entire file
/// system contains 100 MDSs, IDBFA only takes less than 0.1KB of storage"
/// — 512 counters ≈ 0.5 KB with byte counters, the same order.
const ID_FILTER_BITS: usize = 512;
const ID_FILTER_HASHES: u32 = 4;
const ID_FILTER_SEED: u64 = 0x1DBF_A000;

/// The ID Bloom filter array: one counting filter per group member, each
/// representing the set of replica *origins* that member currently holds.
#[derive(Debug, Clone, Default)]
pub struct IdFilterArray {
    filters: Vec<(MdsId, CountingBloomFilter)>,
}

impl IdFilterArray {
    /// Creates an empty IDBFA.
    #[must_use]
    pub fn new() -> Self {
        IdFilterArray::default()
    }

    /// Registers a member with an empty ID filter.
    pub fn add_member(&mut self, member: MdsId) {
        if !self.filters.iter().any(|(id, _)| *id == member) {
            self.filters.push((
                member,
                CountingBloomFilter::new(ID_FILTER_BITS, ID_FILTER_HASHES, ID_FILTER_SEED),
            ));
        }
    }

    /// Drops a member and its ID filter.
    pub fn remove_member(&mut self, member: MdsId) {
        self.filters.retain(|(id, _)| *id != member);
    }

    /// Records that `member` now holds the replica originating at
    /// `origin`.
    pub fn insert(&mut self, member: MdsId, origin: MdsId) {
        if let Some((_, filter)) = self.filters.iter_mut().find(|(id, _)| *id == member) {
            filter.insert(&origin.0);
        }
    }

    /// Records that `member` no longer holds `origin`'s replica.
    pub fn remove(&mut self, member: MdsId, origin: MdsId) {
        if let Some((_, filter)) = self.filters.iter_mut().find(|(id, _)| *id == member) {
            // An absent entry is a bookkeeping bug upstream, but the filter
            // remains consistent either way.
            let _ = filter.remove(&origin.0);
        }
    }

    /// Probes the array for the member holding `origin`'s replica.
    ///
    /// [`Hit::Multiple`] models the paper's "light false positive penalty":
    /// an update is sent to every candidate and non-holders drop it.
    #[must_use]
    pub fn locate(&self, origin: MdsId) -> Hit<MdsId> {
        // Hash-once: one digest of the origin id serves every member filter.
        let fp = Fingerprint::of(&origin.0);
        let mut positives = Vec::new();
        for (member, filter) in &self.filters {
            if filter.contains_fp(&fp) {
                positives.push(*member);
            }
        }
        match positives.len() {
            0 => Hit::None,
            1 => Hit::Unique(positives[0]),
            _ => Hit::Multiple(positives),
        }
    }

    /// Total memory of the ID filters in bytes.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.filters.iter().map(|(_, f)| f.memory_bytes()).sum()
    }
}

/// One logical group of MDSs and the replica placement inside it.
#[derive(Debug, Clone)]
pub struct Group {
    id: GroupId,
    members: Vec<MdsId>,
    /// origin → member currently holding that origin's replica.
    placement: BTreeMap<MdsId, MdsId>,
    idbfa: IdFilterArray,
}

impl Group {
    /// Creates an empty group.
    #[must_use]
    pub fn new(id: GroupId) -> Self {
        Group {
            id,
            members: Vec::new(),
            placement: BTreeMap::new(),
            idbfa: IdFilterArray::new(),
        }
    }

    /// The group's identifier.
    #[must_use]
    pub fn id(&self) -> GroupId {
        self.id
    }

    /// Members in join order.
    #[must_use]
    pub fn members(&self) -> &[MdsId] {
        &self.members
    }

    /// Number of members (`M′`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the group has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// `true` if `mds` is a member.
    #[must_use]
    pub fn contains(&self, mds: MdsId) -> bool {
        self.members.contains(&mds)
    }

    /// Adds a member (idempotent).
    pub fn add_member(&mut self, mds: MdsId) {
        if !self.contains(mds) {
            self.members.push(mds);
            self.idbfa.add_member(mds);
        }
    }

    /// Removes a member; its held replicas must be migrated first (the
    /// caller drives that via [`replicas_held_by`](Group::replicas_held_by)
    /// and [`move_replica`](Group::move_replica)).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the member still holds replicas.
    pub fn remove_member(&mut self, mds: MdsId) {
        debug_assert!(
            self.replicas_held_by(mds).is_empty(),
            "member still holds replicas"
        );
        self.members.retain(|&m| m != mds);
        self.idbfa.remove_member(mds);
    }

    /// Replica origins stored in this group, ascending.
    #[must_use]
    pub fn replica_origins(&self) -> Vec<MdsId> {
        self.placement.keys().copied().collect()
    }

    /// Number of replicas stored in this group.
    #[must_use]
    pub fn replica_count(&self) -> usize {
        self.placement.len()
    }

    /// The member holding `origin`'s replica (exact view).
    #[must_use]
    pub fn holder_of(&self, origin: MdsId) -> Option<MdsId> {
        self.placement.get(&origin).copied()
    }

    /// Probes the IDBFA for the holder (probabilistic protocol view).
    #[must_use]
    pub fn locate_via_idbfa(&self, origin: MdsId) -> Hit<MdsId> {
        self.idbfa.locate(origin)
    }

    /// Replica origins currently held by `member`.
    #[must_use]
    pub fn replicas_held_by(&self, member: MdsId) -> Vec<MdsId> {
        self.placement
            .iter()
            .filter(|(_, &holder)| holder == member)
            .map(|(&origin, _)| origin)
            .collect()
    }

    /// The member holding the fewest replicas (ties broken by join
    /// order), or `None` for an empty group.
    #[must_use]
    pub fn lightest_member(&self) -> Option<MdsId> {
        self.members
            .iter()
            .copied()
            .min_by_key(|&m| (self.replicas_held_by(m).len(), self.member_rank(m)))
    }

    fn member_rank(&self, member: MdsId) -> usize {
        self.members
            .iter()
            .position(|&m| m == member)
            .unwrap_or(usize::MAX)
    }

    /// Places `origin`'s replica on `member`, updating placement and
    /// IDBFA. Returns the previous holder if the replica moved.
    ///
    /// # Panics
    ///
    /// Panics if `member` is not in the group.
    pub fn place_replica(&mut self, origin: MdsId, member: MdsId) -> Option<MdsId> {
        assert!(self.contains(member), "placing replica on a non-member");
        let previous = self.placement.insert(origin, member);
        if let Some(prev) = previous {
            if prev == member {
                return None; // no movement
            }
            self.idbfa.remove(prev, origin);
        }
        self.idbfa.insert(member, origin);
        previous.filter(|&prev| prev != member)
    }

    /// Removes `origin`'s replica from the group entirely (e.g. when that
    /// MDS leaves the system). Returns the member that held it.
    pub fn drop_replica(&mut self, origin: MdsId) -> Option<MdsId> {
        let holder = self.placement.remove(&origin)?;
        self.idbfa.remove(holder, origin);
        Some(holder)
    }

    /// Moves `origin`'s replica to `member`; convenience over
    /// [`place_replica`](Group::place_replica) that reports whether a move
    /// happened.
    pub fn move_replica(&mut self, origin: MdsId, member: MdsId) -> bool {
        self.place_replica(origin, member).is_some()
    }

    /// Maximum replicas held by any member minus minimum — 0 or 1 means
    /// perfectly balanced.
    #[must_use]
    pub fn balance_spread(&self) -> usize {
        let counts: Vec<usize> = self
            .members
            .iter()
            .map(|&m| self.replicas_held_by(m).len())
            .collect();
        match (counts.iter().max(), counts.iter().min()) {
            (Some(max), Some(min)) => max - min,
            _ => 0,
        }
    }

    /// IDBFA memory in bytes.
    #[must_use]
    pub fn idbfa_memory_bytes(&self) -> usize {
        self.idbfa.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group_with(members: &[u16]) -> Group {
        let mut g = Group::new(GroupId(0));
        for &m in members {
            g.add_member(MdsId(m));
        }
        g
    }

    #[test]
    fn membership_roundtrip() {
        let mut g = group_with(&[1, 2, 3]);
        assert_eq!(g.len(), 3);
        assert!(g.contains(MdsId(2)));
        g.remove_member(MdsId(2));
        assert!(!g.contains(MdsId(2)));
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn add_member_is_idempotent() {
        let mut g = group_with(&[1]);
        g.add_member(MdsId(1));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn placement_tracks_holder() {
        let mut g = group_with(&[1, 2]);
        g.place_replica(MdsId(9), MdsId(1));
        assert_eq!(g.holder_of(MdsId(9)), Some(MdsId(1)));
        assert_eq!(g.replicas_held_by(MdsId(1)), vec![MdsId(9)]);
        assert_eq!(g.replica_count(), 1);
    }

    #[test]
    fn idbfa_locates_replica() {
        let mut g = group_with(&[1, 2, 3]);
        g.place_replica(MdsId(40), MdsId(2));
        assert_eq!(g.locate_via_idbfa(MdsId(40)), Hit::Unique(MdsId(2)));
        assert_eq!(g.locate_via_idbfa(MdsId(99)), Hit::None);
    }

    #[test]
    fn moving_replica_updates_idbfa() {
        let mut g = group_with(&[1, 2]);
        g.place_replica(MdsId(7), MdsId(1));
        let prev = g.place_replica(MdsId(7), MdsId(2));
        assert_eq!(prev, Some(MdsId(1)));
        assert_eq!(g.holder_of(MdsId(7)), Some(MdsId(2)));
        assert_eq!(g.locate_via_idbfa(MdsId(7)), Hit::Unique(MdsId(2)));
    }

    #[test]
    fn replacing_same_holder_is_noop() {
        let mut g = group_with(&[1]);
        g.place_replica(MdsId(7), MdsId(1));
        assert_eq!(g.place_replica(MdsId(7), MdsId(1)), None);
        assert!(!g.move_replica(MdsId(7), MdsId(1)));
    }

    #[test]
    fn drop_replica_clears_everywhere() {
        let mut g = group_with(&[1]);
        g.place_replica(MdsId(7), MdsId(1));
        assert_eq!(g.drop_replica(MdsId(7)), Some(MdsId(1)));
        assert_eq!(g.holder_of(MdsId(7)), None);
        assert_eq!(g.locate_via_idbfa(MdsId(7)), Hit::None);
        assert_eq!(g.drop_replica(MdsId(7)), None);
    }

    #[test]
    fn lightest_member_breaks_ties_by_join_order() {
        let mut g = group_with(&[5, 3, 8]);
        assert_eq!(g.lightest_member(), Some(MdsId(5)));
        g.place_replica(MdsId(20), MdsId(5));
        assert_eq!(g.lightest_member(), Some(MdsId(3)));
    }

    #[test]
    fn balance_spread_reflects_skew() {
        let mut g = group_with(&[1, 2]);
        assert_eq!(g.balance_spread(), 0);
        g.place_replica(MdsId(10), MdsId(1));
        g.place_replica(MdsId(11), MdsId(1));
        assert_eq!(g.balance_spread(), 2);
        g.place_replica(MdsId(12), MdsId(2));
        assert_eq!(g.balance_spread(), 1);
    }

    #[test]
    #[should_panic(expected = "non-member")]
    fn placing_on_non_member_panics() {
        let mut g = group_with(&[1]);
        g.place_replica(MdsId(9), MdsId(99));
    }

    #[test]
    fn idbfa_memory_is_small() {
        let g = group_with(&[1, 2, 3, 4, 5, 6, 7]);
        // 7 members × 512 B counting filters — comfortably under 4 KB,
        // matching the paper's "negligible" claim.
        assert!(g.idbfa_memory_bytes() <= 4096);
    }
}
