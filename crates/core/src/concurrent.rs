//! Shared-reference execution support: atomic statistics and sharded
//! write ownership.
//!
//! PR 6 made individual lookups flow through reconfiguration lock-free,
//! but left two gaps that this module closes:
//!
//! * **Stats from `&self`** — [`ConcurrentStats`] mirrors the hot
//!   counters of `ClusterStats` (level counts, lookup/update latency,
//!   mask-cache hits, false-hit counters) word-for-word in atomics, so
//!   pinned walks running from a shared reference can record accounting
//!   that the owner later folds into the authoritative `ClusterStats`
//!   at a drain point.
//! * **Writes from `&self`** — [`NamespaceShards`] partitions the
//!   namespace by fingerprint hash into independently locked shards.
//!   Creates and removes append ordered *write records* to their shard's
//!   log under that shard's lock alone, so mutations on distinct shards
//!   proceed concurrently while reads consult a per-path overlay. The
//!   owner replays the logs against the real stores at the next `&mut`
//!   entry point (the *drain*), in shard-index order; per-path ordering
//!   is preserved because a path always hashes to the same shard, and
//!   records for distinct paths commute on the underlying stores.
//!
//! Neither type performs any synchronization beyond its own locks and
//! atomics: folding or draining requires the caller to hold `&mut` on
//! the owning cluster (or otherwise guarantee that no concurrent
//! recorder is live), which is exactly what the drain hooks on the
//! clusters' `&mut` entry points provide.

use core::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use core::time::Duration;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Mutex;

use ghba_bloom::Fingerprint;

use crate::cluster::ClusterStats;
use crate::ids::{GroupId, MdsId};
use crate::load::LoadRecorder;
use crate::op::PathKey;
use crate::query::QueryLevel;

/// Lock-free mirror of `LatencyStats`: same bucket geometry, atomic
/// words, drained wholesale into the real accumulator via
/// `LatencyStats::merge_parts`.
#[derive(Debug)]
struct AtomicLatency {
    count: AtomicU64,
    sum_nanos: AtomicU64,
    min_nanos: AtomicU64,
    max_nanos: AtomicU64,
    buckets: [AtomicU64; 64],
}

impl AtomicLatency {
    fn new() -> Self {
        AtomicLatency {
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            min_nanos: AtomicU64::new(u64::MAX),
            max_nanos: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, latency: Duration) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.min_nanos.fetch_min(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        // Same ×2 logarithmic geometry as `LatencyStats::record`.
        let bucket = if nanos == 0 {
            0
        } else {
            (63 - nanos.leading_zeros()) as usize
        };
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Resets the accumulator and returns the drained parts in
    /// `merge_parts` order.
    fn drain(&self) -> (u64, u128, u64, u64, [u64; 64]) {
        let count = self.count.swap(0, Ordering::Relaxed);
        let sum = u128::from(self.sum_nanos.swap(0, Ordering::Relaxed));
        let min = self.min_nanos.swap(u64::MAX, Ordering::Relaxed);
        let max = self.max_nanos.swap(0, Ordering::Relaxed);
        let mut buckets = [0u64; 64];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.swap(0, Ordering::Relaxed);
        }
        (count, sum, min, max, buckets)
    }
}

/// Atomic accounting for walks and publishes performed from `&self`.
///
/// Every counter mirrors a field (or named counter) of `ClusterStats`.
/// Recording is wait-free; [`fold_into`](ConcurrentStats::fold_into)
/// drains everything into the owner's stats and must only run once the
/// caller holds `&mut` on the owning cluster (no live recorders).
#[derive(Debug)]
pub struct ConcurrentStats {
    dirty: AtomicBool,
    levels: [AtomicU64; 5],
    lookup: AtomicLatency,
    update: AtomicLatency,
    update_messages: AtomicU64,
    update_bytes: AtomicU64,
    mask_hits: AtomicU64,
    mask_misses: AtomicU64,
    l1_false: AtomicU64,
    l2_false: AtomicU64,
    l3_false: AtomicU64,
    l4_disk: AtomicU64,
    /// Per-group load telemetry (see [`crate::load`]). Deliberately
    /// outside the `dirty` protocol: it is drained by the load report,
    /// not by the stats fold, so recording load never forces the
    /// `maybe_drain` slow path on the next `&mut` entry.
    load: LoadRecorder,
}

impl Default for ConcurrentStats {
    fn default() -> Self {
        ConcurrentStats::new()
    }
}

impl ConcurrentStats {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        ConcurrentStats {
            dirty: AtomicBool::new(false),
            levels: std::array::from_fn(|_| AtomicU64::new(0)),
            lookup: AtomicLatency::new(),
            update: AtomicLatency::new(),
            update_messages: AtomicU64::new(0),
            update_bytes: AtomicU64::new(0),
            mask_hits: AtomicU64::new(0),
            mask_misses: AtomicU64::new(0),
            l1_false: AtomicU64::new(0),
            l2_false: AtomicU64::new(0),
            l3_false: AtomicU64::new(0),
            l4_disk: AtomicU64::new(0),
            load: LoadRecorder::new(),
        }
    }

    /// Whether anything has been recorded since the last fold.
    pub fn is_dirty(&self) -> bool {
        self.dirty.load(Ordering::Acquire)
    }

    fn touch(&self) {
        self.dirty.store(true, Ordering::Release);
    }

    /// Records one resolved lookup: the level that served it and its
    /// modeled latency.
    pub fn record_lookup(&self, level: QueryLevel, latency: Duration) {
        let idx = match level {
            QueryLevel::L1Lru => 0,
            QueryLevel::L2Segment => 1,
            QueryLevel::L3Group => 2,
            QueryLevel::L4Global => 3,
            QueryLevel::Nonexistent => 4,
        };
        self.levels[idx].fetch_add(1, Ordering::Relaxed);
        self.lookup.record(latency);
        self.touch();
    }

    /// Records false-hit escalations observed during one walk.
    pub fn record_false_hits(&self, l1: u64, l2: u64, l3: u64, l4_disk: u64) {
        if l1 | l2 | l3 | l4_disk == 0 {
            return;
        }
        self.l1_false.fetch_add(l1, Ordering::Relaxed);
        self.l2_false.fetch_add(l2, Ordering::Relaxed);
        self.l3_false.fetch_add(l3, Ordering::Relaxed);
        self.l4_disk.fetch_add(l4_disk, Ordering::Relaxed);
        self.touch();
    }

    /// Records one mask-cache consult (memoized mask reuse counts as a
    /// hit, a fresh build as a miss).
    pub fn record_mask(&self, hit: bool) {
        if hit {
            self.mask_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.mask_misses.fetch_add(1, Ordering::Relaxed);
        }
        self.touch();
    }

    /// Attributes one finished walk to its entry group for the load
    /// telemetry: traffic, escalation depth, and charged false hits.
    /// Does **not** set the dirty flag — load windows are closed by
    /// [`LoadFold::close_window`](crate::load::LoadFold::close_window),
    /// not by the stats fold.
    pub fn record_group_walk(
        &self,
        gid: GroupId,
        entry: MdsId,
        level: QueryLevel,
        false_hits: u64,
    ) {
        self.load.record_walk(gid, entry, level, false_hits);
    }

    /// Attributes one L2/L3 mask consult to `gid` for the load
    /// telemetry. Companion of
    /// [`record_mask`](ConcurrentStats::record_mask); same dirty-flag
    /// exemption as [`record_group_walk`](Self::record_group_walk).
    pub fn record_group_mask(&self, gid: GroupId, hit: bool) {
        self.load.record_mask(gid, hit);
    }

    /// Not-yet-folded mask consults `(hits, misses)` — peeked, not
    /// drained, so a `&self` reader can assemble an up-to-date
    /// [`MaskCacheStats`](crate::load::MaskCacheStats) view without a
    /// drain barrier.
    pub fn pending_mask(&self) -> (u64, u64) {
        (
            self.mask_hits.load(Ordering::Relaxed),
            self.mask_misses.load(Ordering::Relaxed),
        )
    }

    pub(crate) fn load_recorder(&self) -> &LoadRecorder {
        &self.load
    }

    /// Records one staged publish: replica-update messages, wire bytes,
    /// and the modeled propagation latency.
    pub fn record_update(&self, messages: u64, bytes: u64, latency: Duration) {
        self.update_messages.fetch_add(messages, Ordering::Relaxed);
        self.update_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.update.record(latency);
        self.touch();
    }

    /// Drains every counter into `stats` and returns the folded
    /// `(mask_hits, mask_misses)` pair so callers with a separate
    /// lifetime view of the mask cache can absorb it too.
    ///
    /// Requires external synchronization: no recorder may be live.
    pub fn fold_into(&self, stats: &mut ClusterStats) -> (u64, u64) {
        self.dirty.store(false, Ordering::Release);
        stats.levels.l1 += self.levels[0].swap(0, Ordering::Relaxed);
        stats.levels.l2 += self.levels[1].swap(0, Ordering::Relaxed);
        stats.levels.l3 += self.levels[2].swap(0, Ordering::Relaxed);
        stats.levels.l4 += self.levels[3].swap(0, Ordering::Relaxed);
        stats.levels.nonexistent += self.levels[4].swap(0, Ordering::Relaxed);

        let (count, sum, min, max, buckets) = self.lookup.drain();
        stats
            .lookup_latency
            .merge_parts(count, sum, min, max, &buckets);
        let (count, sum, min, max, buckets) = self.update.drain();
        stats
            .update_latency
            .merge_parts(count, sum, min, max, &buckets);

        stats.update_messages += self.update_messages.swap(0, Ordering::Relaxed);
        stats.update_bytes += self.update_bytes.swap(0, Ordering::Relaxed);

        for (label, counter) in [
            ("l1_false_hits", &self.l1_false),
            ("l2_false_hits", &self.l2_false),
            ("l3_false_hits", &self.l3_false),
            ("l4_false_positive_disk_checks", &self.l4_disk),
        ] {
            let n = counter.swap(0, Ordering::Relaxed);
            if n > 0 {
                stats.counters.add(label, n);
            }
        }

        let hits = self.mask_hits.swap(0, Ordering::Relaxed);
        let misses = self.mask_misses.swap(0, Ordering::Relaxed);
        stats.mask_cache_hits += hits;
        stats.mask_cache_misses += misses;
        (hits, misses)
    }
}

/// What the write overlay knows about a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlayEntry {
    /// No pending write touches this path; the real stores are
    /// authoritative.
    Untracked,
    /// The latest pending write removed this path.
    Removed,
    /// The latest pending write created this path at the given home.
    Created(MdsId),
}

/// The kind of a pending write, tagged with the home server it targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteKind {
    /// Create the path at this home.
    Create(MdsId),
    /// Remove the path from this home.
    Remove(MdsId),
}

/// One pending write, replayed verbatim against the real stores at
/// drain time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteRecord {
    /// The path the write targets.
    pub path: String,
    /// The path's fingerprint (precomputed at record time).
    pub fp: Fingerprint,
    /// Create-at-home or remove-from-home.
    pub kind: WriteKind,
}

/// One namespace shard: an ordered log of pending writes plus an index
/// of the latest record per path (the overlay).
#[derive(Debug, Default)]
struct Shard {
    log: Vec<WriteRecord>,
    /// path → index of the latest record for it in `log`.
    latest: HashMap<String, usize>,
}

/// Namespace partitioned into independently locked write shards.
///
/// The shard of a path is a mask of its fingerprint's first hash lane,
/// so the mapping is stable across calls and across servers. Writes on
/// distinct shards contend only on their own shard's mutex; reads take
/// at most one shard lock (and none at all while the structure is
/// clean — the common case — thanks to the `dirty` fast path).
#[derive(Debug)]
pub struct NamespaceShards {
    shards: Vec<Mutex<Shard>>,
    mask: usize,
    dirty: AtomicBool,
    /// Creates recorded but not yet staged, counted across all shards:
    /// the cheap publish-cadence gate (one atomic load per batch
    /// commit, no shard locks).
    unpublished_creates: AtomicU64,
    /// Per-home staging buffers: the fingerprints of unstaged creates,
    /// keyed by home, so `stage_ripe_creates` can publish one home's
    /// accumulated delta without scanning the shard logs or touching
    /// homes still under the cadence bar.
    pending_creates: Mutex<BTreeMap<MdsId, Vec<Fingerprint>>>,
    /// Homes whose published probe columns carry staged create bits
    /// that the server's own published filter does not know about yet;
    /// the drain reconciles them.
    staged: Mutex<BTreeSet<MdsId>>,
}

impl NamespaceShards {
    /// Creates `shard_count` shards, rounded up to a power of two
    /// (minimum 1).
    pub fn new(shard_count: usize) -> Self {
        let n = shard_count.max(1).next_power_of_two();
        NamespaceShards {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            mask: n - 1,
            dirty: AtomicBool::new(false),
            unpublished_creates: AtomicU64::new(0),
            pending_creates: Mutex::new(BTreeMap::new()),
            staged: Mutex::new(BTreeSet::new()),
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether any pending write or staged publish exists.
    pub fn is_dirty(&self) -> bool {
        self.dirty.load(Ordering::Acquire)
    }

    fn shard_of(&self, fp: &Fingerprint) -> usize {
        (fp.lanes().0 as usize) & self.mask
    }

    fn lock_for(&self, fp: &Fingerprint) -> std::sync::MutexGuard<'_, Shard> {
        self.shards[self.shard_of(fp)]
            .lock()
            .expect("namespace shard poisoned")
    }

    /// Consults the overlay for `key`. Lock-free when clean.
    pub fn overlay(&self, key: &PathKey) -> OverlayEntry {
        self.overlay_keyed(key.path(), key.fingerprint())
    }

    /// [`overlay`](NamespaceShards::overlay) for callers holding the
    /// path and its precomputed fingerprint separately (the pinned walk
    /// never re-hashes).
    pub fn overlay_keyed(&self, path: &str, fp: &Fingerprint) -> OverlayEntry {
        if !self.is_dirty() {
            return OverlayEntry::Untracked;
        }
        let shard = self.lock_for(fp);
        match shard.latest.get(path) {
            None => OverlayEntry::Untracked,
            Some(&idx) => match shard.log[idx].kind {
                WriteKind::Create(home) => OverlayEntry::Created(home),
                WriteKind::Remove(_) => OverlayEntry::Removed,
            },
        }
    }

    /// Whether any create past the staging watermark exists — a cheap
    /// pre-check (one atomic load, no shard locks) so a reads-only (or
    /// removes-only) batch commit can skip the slab writer lock
    /// entirely.
    pub fn has_unpublished_creates(&self) -> bool {
        self.unpublished_create_count() > 0
    }

    /// Creates recorded but not yet staged into the published probe
    /// state — the batch commit compares this against the publish
    /// cadence so staging amortizes like the sequential drift gate
    /// instead of paying a column clone per batch.
    pub fn unpublished_create_count(&self) -> u64 {
        self.unpublished_creates.load(Ordering::Acquire)
    }

    /// Pending write records across all shards, awaiting the next
    /// drain. Lock-free (zero) when clean; long-running `&self`-only
    /// servers use this to observe whether their background reconciler
    /// is keeping the logs bounded.
    pub fn pending_record_count(&self) -> u64 {
        if !self.is_dirty() {
            return 0;
        }
        self.shards
            .iter()
            .map(|slot| slot.lock().expect("namespace shard poisoned").log.len() as u64)
            .sum()
    }

    fn record(&self, key: &PathKey, kind: WriteKind) {
        let create_home = match kind {
            WriteKind::Create(home) => Some(home),
            WriteKind::Remove(_) => None,
        };
        {
            let mut shard = self.lock_for(key.fingerprint());
            let idx = shard.log.len();
            shard.log.push(WriteRecord {
                path: key.path().to_owned(),
                fp: *key.fingerprint(),
                kind,
            });
            shard.latest.insert(key.path().to_owned(), idx);
        }
        if let Some(home) = create_home {
            self.pending_creates
                .lock()
                .expect("pending set poisoned")
                .entry(home)
                .or_default()
                .push(*key.fingerprint());
            self.unpublished_creates.fetch_add(1, Ordering::AcqRel);
        }
        self.dirty.store(true, Ordering::Release);
    }

    /// Appends a pending create of `key` at `home`.
    pub fn record_create(&self, key: &PathKey, home: MdsId) {
        self.record(key, WriteKind::Create(home));
    }

    /// Appends a pending removal of `key` from `home`.
    pub fn record_remove(&self, key: &PathKey, home: MdsId) {
        self.record(key, WriteKind::Remove(home));
    }

    /// Extracts the staging buffers of every home holding at least
    /// `min_per_home` unstaged creates, transferring ownership of their
    /// fingerprints to the caller (who folds them into the published
    /// probe state). Homes below the bar keep accumulating — the
    /// per-home analog of the sequential drift gate, so one busy home
    /// publishes one amortized delta instead of every batch paying a
    /// column clone for a handful of bits.
    ///
    /// Only *creates* are staged: published columns are plain Bloom
    /// filters, so pending removes cannot be reflected there and stay
    /// invisible to probes until the drain — the same staleness window
    /// the sequential pipeline's publish gate already tolerates.
    pub fn stage_ripe_creates(&self, min_per_home: u64) -> Vec<(MdsId, Vec<Fingerprint>)> {
        let min = min_per_home.max(1) as usize;
        let mut pending = self.pending_creates.lock().expect("pending set poisoned");
        let ripe: Vec<MdsId> = pending
            .iter()
            .filter(|(_, fps)| fps.len() >= min)
            .map(|(&home, _)| home)
            .collect();
        let mut staged = 0u64;
        let out: Vec<(MdsId, Vec<Fingerprint>)> = ripe
            .into_iter()
            .map(|home| {
                let fps = pending.remove(&home).expect("just listed");
                staged += fps.len() as u64;
                (home, fps)
            })
            .collect();
        drop(pending);
        if staged > 0 {
            self.unpublished_creates.fetch_sub(staged, Ordering::AcqRel);
        }
        out
    }

    /// Marks homes whose columns now carry staged create bits, so the
    /// drain knows to reconcile their published filters.
    pub fn mark_staged(&self, homes: impl IntoIterator<Item = MdsId>) {
        let mut staged = self.staged.lock().expect("staged set poisoned");
        staged.extend(homes);
        self.dirty.store(true, Ordering::Release);
    }

    /// Drains every pending write (shard-index order, log order within
    /// a shard) and the staged-home set, resetting the structure to
    /// clean. Per-path ordering is total because a path always lands in
    /// the same shard.
    ///
    /// Requires external synchronization (the owner's `&mut`): a
    /// concurrent `record_*` during the drain would land in an
    /// arbitrary position.
    pub fn take_all(&self) -> (Vec<WriteRecord>, Vec<MdsId>) {
        let mut records = Vec::new();
        for slot in &self.shards {
            let mut shard = slot.lock().expect("namespace shard poisoned");
            records.append(&mut shard.log);
            shard.latest.clear();
        }
        self.pending_creates
            .lock()
            .expect("pending set poisoned")
            .clear();
        let staged = {
            let mut staged = self.staged.lock().expect("staged set poisoned");
            std::mem::take(&mut *staged)
        };
        self.unpublished_creates.store(0, Ordering::Release);
        self.dirty.store(false, Ordering::Release);
        (records, staged.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlay_tracks_latest_write_per_path() {
        let shards = NamespaceShards::new(4);
        let key = PathKey::new("/a/b");
        assert_eq!(shards.overlay(&key), OverlayEntry::Untracked);
        assert!(!shards.is_dirty());

        shards.record_create(&key, MdsId(3));
        assert_eq!(shards.overlay(&key), OverlayEntry::Created(MdsId(3)));
        shards.record_remove(&key, MdsId(3));
        assert_eq!(shards.overlay(&key), OverlayEntry::Removed);
        assert!(shards.is_dirty());

        let (records, staged) = shards.take_all();
        assert_eq!(records.len(), 2);
        assert!(staged.is_empty());
        assert!(!shards.is_dirty());
        assert_eq!(shards.overlay(&key), OverlayEntry::Untracked);
    }

    #[test]
    fn staging_covers_each_create_exactly_once() {
        let shards = NamespaceShards::new(2);
        shards.record_create(&PathKey::new("/x"), MdsId(1));
        shards.record_create(&PathKey::new("/y"), MdsId(1));
        shards.record_remove(&PathKey::new("/y"), MdsId(1));
        assert_eq!(shards.unpublished_create_count(), 2);

        let staged = shards.stage_ripe_creates(1);
        let total: usize = staged.iter().map(|(_, fps)| fps.len()).sum();
        assert_eq!(total, 2, "removes are not staged, creates are");
        assert!(staged.iter().all(|(home, _)| *home == MdsId(1)));
        assert_eq!(shards.unpublished_create_count(), 0);

        // Second staging pass sees nothing new.
        assert!(shards.stage_ripe_creates(1).is_empty());

        shards.record_create(&PathKey::new("/z"), MdsId(2));
        let staged = shards.stage_ripe_creates(1);
        assert_eq!(staged.len(), 1);
        assert_eq!(staged[0].0, MdsId(2));
        assert_eq!(staged[0].1.len(), 1);
    }

    #[test]
    fn staging_gate_holds_back_homes_under_the_bar() {
        let shards = NamespaceShards::new(2);
        for i in 0..3 {
            shards.record_create(&PathKey::new(format!("/busy/{i}")), MdsId(1));
        }
        shards.record_create(&PathKey::new("/quiet"), MdsId(2));

        // Only the home with >= 3 pending creates is ripe.
        let staged = shards.stage_ripe_creates(3);
        assert_eq!(staged.len(), 1);
        assert_eq!(staged[0].0, MdsId(1));
        assert_eq!(staged[0].1.len(), 3);
        assert_eq!(shards.unpublished_create_count(), 1, "/quiet accumulates");

        // The held-back home stages once it crosses the bar.
        for i in 0..2 {
            shards.record_create(&PathKey::new(format!("/quiet/{i}")), MdsId(2));
        }
        let staged = shards.stage_ripe_creates(3);
        assert_eq!(staged.len(), 1);
        assert_eq!(staged[0].0, MdsId(2));
        assert_eq!(staged[0].1.len(), 3);
        assert_eq!(shards.unpublished_create_count(), 0);
    }

    #[test]
    fn atomic_latency_matches_latency_stats_geometry() {
        use ghba_simnet::LatencyStats;
        let atomic = AtomicLatency::new();
        let mut reference = LatencyStats::new();
        for nanos in [0u64, 1, 7, 1024, 65_537, 1_000_000_000] {
            atomic.record(Duration::from_nanos(nanos));
            reference.record(Duration::from_nanos(nanos));
        }
        let (count, sum, min, max, buckets) = atomic.drain();
        let mut folded = LatencyStats::new();
        folded.merge_parts(count, sum, min, max, &buckets);
        assert_eq!(folded, reference);
    }
}
