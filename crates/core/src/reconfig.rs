//! Dynamic reconfiguration: MDS join/leave, light-weight replica
//! migration, and group splitting/merging (§3.1–3.2 of the paper).
//!
//! The headline property reproduced here (Figure 11): a join migrates only
//! `(N − M′)/(M′ + 1)` replicas — the share handed to the new member —
//! versus `N` for HBA (full mirror copy) and up to `N − M′` for modular
//! hash placement.
//!
//! Every operation here is a **routing edit**: it opens a
//! [`RouteEdit`] against the published snapshot, builds the successor
//! configuration off to the side (copy-on-write per group, slab
//! mutations queued as [`SlabOp`]s), and publishes it with one pointer
//! swap. Pinned lookups keep resolving against the epoch they admitted
//! under for the whole duration — reconfiguration never blocks reads.

use core::fmt;

use std::sync::Arc;

use crate::cluster::GhbaCluster;
use crate::group::Group;
use crate::ids::{GroupId, MdsId};
use crate::mds::Mds;
use crate::snapshot::{RouteEdit, SlabOp};

/// What one reconfiguration operation cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReconfigReport {
    /// Replica filters copied or moved between servers.
    pub migrated_replicas: u64,
    /// Network messages exchanged (replica transfers, IDBFA multicasts,
    /// replica-placement and deletion notices).
    pub messages: u64,
    /// Whether the operation triggered a group split.
    pub split: bool,
    /// Whether the operation triggered one or more group merges.
    pub merged: bool,
    /// Files re-homed (only on departures).
    pub rehomed_files: u64,
}

/// Errors from reconfiguration requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconfigError {
    /// The named server is not part of the cluster.
    UnknownMds(MdsId),
    /// The last server cannot be removed.
    LastServer,
}

impl fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconfigError::UnknownMds(id) => write!(f, "unknown server {id}"),
            ReconfigError::LastServer => write!(f, "cannot remove the last server"),
        }
    }
}

impl std::error::Error for ReconfigError {}

/// The pure routing algorithms of §3.1–3.2, expressed against an open
/// edit's working snapshot. Shared by the owner's compound operations
/// (`add_mds`, `remove_mds`, `fail_mds`) and the concurrent
/// [`ReconfigHandle`](crate::ReconfigHandle) paths, so both publish
/// byte-identical successor configurations for the same move.
impl RouteEdit<'_> {
    /// Moves replicas from the heaviest to the lightest member until the
    /// spread is at most one. Returns the number of moves.
    ///
    /// # Panics
    ///
    /// Panics if `gid` is not a live group.
    pub(crate) fn rebalance(&mut self, gid: GroupId) -> u64 {
        let group = self.group_mut(gid);
        let mut moves = 0;
        loop {
            let members = group.members().to_vec();
            if members.len() < 2 {
                break;
            }
            let heaviest = members
                .iter()
                .copied()
                .max_by_key(|&m| (group.replicas_held_by(m).len(), m))
                .expect("non-empty");
            let lightest = members
                .iter()
                .copied()
                .min_by_key(|&m| (group.replicas_held_by(m).len(), m))
                .expect("non-empty");
            let heavy_count = group.replicas_held_by(heaviest).len();
            let light_count = group.replicas_held_by(lightest).len();
            if heavy_count <= light_count + 1 {
                break;
            }
            let origin = group.replicas_held_by(heaviest)[0];
            group.move_replica(origin, lightest);
            moves += 1;
        }
        moves
    }

    /// A rebalance carrying its own invalidation: advances the
    /// membership epoch and `gid`'s [`GroupEpoch`](crate::GroupEpoch)
    /// (placement moved, so the group's derived masks are stale), then
    /// rebalances. Every rebalance step of a compound reconfiguration
    /// goes through this, keeping epoch advancement a deterministic
    /// function of the operation sequence.
    pub(crate) fn rebalance_bumping(&mut self, gid: GroupId) -> u64 {
        self.bump_epoch();
        self.touch_group(gid);
        self.rebalance(gid)
    }

    /// Splits an over-full group into two per §3.2: the original keeps
    /// `M − ⌊M/2⌋` members, the new group takes `⌊M/2⌋ + 1` (including
    /// the most recent joiner). Both sides rebuild full system coverage;
    /// each migrating member *keeps* the replicas it already holds
    /// (Figure 5's "keep migrated replicas"), so only the coverage gaps
    /// cost copies. Returns the new group's id and the cost report.
    pub(crate) fn split(
        &mut self,
        gid: GroupId,
        max_group_size: usize,
    ) -> (GroupId, ReconfigReport) {
        let mut report = ReconfigReport::default();
        let moving: Vec<MdsId> = {
            let group = &self.work.groups[&gid];
            let take = max_group_size / 2 + 1;
            group.members()[group.len() - take..].to_vec()
        };

        let new_gid = self.alloc_group_id();
        let mut new_group = Group::new(new_gid);
        for &member in &moving {
            new_group.add_member(member);
            self.work.group_of.insert(member, new_gid);
        }

        // Members moving out keep their held replicas: seed the new
        // group's placement with them, free of charge.
        {
            let old_group = self.group_mut(gid);
            for &member in &moving {
                for origin in old_group.replicas_held_by(member) {
                    old_group.drop_replica(origin);
                    if !new_group.contains(origin) {
                        new_group.place_replica(origin, member);
                    }
                }
                old_group.remove_member(member);
            }
        }
        self.insert_group(new_group);

        // Both halves now rebuild complete coverage (every origin outside
        // the group must have exactly one replica inside it).
        for g in [gid, new_gid] {
            let (copies, msgs) = self.rebuild_coverage(g);
            report.migrated_replicas += copies;
            report.messages += msgs;
            let moves = self.rebalance_bumping(g);
            report.migrated_replicas += moves;
            report.messages += moves;
            // New IDBFA multicast within the group.
            report.messages += (self.work.groups[&g].len() as u64).saturating_sub(1);
        }

        // Only the two halves changed: their membership and placements
        // moved, every other group's replica layout is untouched — the
        // per-group epochs keep those masks warm.
        self.touch_group(gid);
        self.touch_group(new_gid);
        self.bump_epoch();
        report.split = true;
        (new_gid, report)
    }

    /// Merges group `b` into group `a` (light-weight: holders keep their
    /// replicas; only duplicate and now-internal replicas are dropped).
    /// `b`'s id (and its stale cache entries, which can never validate
    /// again) retires.
    pub(crate) fn merge(&mut self, a: GroupId, b: GroupId) -> ReconfigReport {
        let mut report = ReconfigReport::default();
        let b_group = self.remove_group(b).expect("merge source exists");
        let b_members: Vec<MdsId> = b_group.members().to_vec();
        let b_placements: Vec<(MdsId, MdsId)> = b_group
            .replica_origins()
            .into_iter()
            .filter_map(|origin| b_group.holder_of(origin).map(|holder| (origin, holder)))
            .collect();

        for &member in &b_members {
            self.work.group_of.insert(member, a);
        }
        {
            let a_group = self.group_mut(a);
            for &member in &b_members {
                a_group.add_member(member);
            }
            // Import b's placements where a lacks coverage; holders kept
            // their filters, so imports are free (no copy over the wire).
            for (origin, holder) in b_placements {
                if a_group.contains(origin) || a_group.holder_of(origin).is_some() {
                    continue; // now internal, or duplicate — drop silently
                }
                a_group.place_replica(origin, holder);
            }
            // Replicas of servers that are now members are internal: drop.
            for member in a_group.members().to_vec() {
                a_group.drop_replica(member);
            }
        }

        let (copies, msgs) = self.rebuild_coverage(a);
        report.migrated_replicas += copies;
        report.messages += msgs;
        let moves = self.rebalance_bumping(a);
        report.migrated_replicas += moves;
        report.messages += moves;
        report.messages += (self.work.groups[&a].len() as u64).saturating_sub(1);

        // Only the surviving group's layout changed.
        self.touch_group(a);
        self.bump_epoch();
        report.merged = true;
        report
    }

    /// Ensures the group holds exactly one replica of every server outside
    /// it: drops stale/internal placements, adds missing ones on the
    /// lightest members. Returns `(replicas copied, messages)`. The
    /// working snapshot's membership index is the server roster, so
    /// departures must be unindexed before coverage is rebuilt.
    pub(crate) fn rebuild_coverage(&mut self, gid: GroupId) -> (u64, u64) {
        let all: Vec<MdsId> = self.work.group_of.keys().copied().collect();
        let group = self.group_mut(gid);
        let mut copies = 0;
        let mut messages = 0;
        for origin in group.replica_origins() {
            if group.contains(origin) || !all.contains(&origin) {
                group.drop_replica(origin);
            }
        }
        for &origin in &all {
            if group.contains(origin) || group.holder_of(origin).is_some() {
                continue;
            }
            let lightest = group.lightest_member().expect("group is non-empty");
            group.place_replica(origin, lightest);
            copies += 1;
            messages += 1;
        }
        (copies, messages)
    }

    /// The pair of distinct groups with the smallest combined size, if
    /// that size fits within `max_group_size`.
    pub(crate) fn mergeable_pair(&self, max_group_size: usize) -> Option<(GroupId, GroupId)> {
        let mut sizes: Vec<(usize, GroupId)> = self
            .work
            .groups
            .values()
            .map(|g| (g.len(), g.id()))
            .collect();
        sizes.sort_unstable();
        if sizes.len() >= 2 && sizes[0].0 + sizes[1].0 <= max_group_size {
            Some((sizes[0].1, sizes[1].1))
        } else {
            None
        }
    }
}

impl GhbaCluster {
    /// Commits an edit and evicts the mask-cache state of any group it
    /// dissolved (the owner-side half of snapshot retirement: the epochs
    /// left with the snapshot, the cached masks live here).
    pub(crate) fn finish_edit(&mut self, mut edit: RouteEdit<'_>) {
        let dissolved = core::mem::take(&mut edit.dissolved);
        edit.commit();
        for gid in dissolved {
            self.mask_cache.forget_group(gid);
        }
    }

    /// Adds a new MDS to the cluster, joining the most suitable group
    /// (§3.1) and splitting it if it overflows `M` (§3.2). Returns the new
    /// server's id; per-operation costs are in the accumulated
    /// [`stats`](GhbaCluster::stats) and the returned report of
    /// [`add_mds_reported`].
    ///
    /// [`add_mds_reported`]: GhbaCluster::add_mds_reported
    pub fn add_mds(&mut self) -> MdsId {
        self.add_mds_reported().0
    }

    /// Like [`add_mds`](GhbaCluster::add_mds), also returning the cost
    /// report for this single operation.
    pub fn add_mds_reported(&mut self) -> (MdsId, ReconfigReport) {
        self.maybe_drain();
        let mut report = ReconfigReport::default();
        let id = MdsId(self.next_mds);
        self.next_mds += 1;
        self.mdss.insert(id, Mds::new(id, &self.config));

        let routes = Arc::clone(&self.routes);
        let mut edit = RouteEdit::begin(&routes, self.config.epoch_granularity);
        edit.push_op(SlabOp::Push(id));

        // Choose the smallest group with room; otherwise the smallest
        // group outright (it will split).
        let target = edit
            .work
            .groups
            .values()
            .filter(|g| g.len() < self.config.max_group_size)
            .min_by_key(|g| (g.len(), g.id()))
            .map(|g| g.id())
            .or_else(|| {
                edit.work
                    .groups
                    .values()
                    .min_by_key(|g| (g.len(), g.id()))
                    .map(|g| g.id())
            });
        let gid = match target {
            Some(gid) => gid,
            None => {
                let gid = edit.alloc_group_id();
                edit.insert_group(Group::new(gid));
                gid
            }
        };
        edit.group_mut(gid).add_member(id);
        edit.work.group_of.insert(id, gid);

        // The newcomer's (empty) filter becomes a replica in every other
        // group: one message per group, placed on the lightest member.
        let other_gids: Vec<GroupId> = edit
            .work
            .groups
            .keys()
            .copied()
            .filter(|&g| g != gid)
            .collect();
        for g in other_gids {
            let group = edit.group_mut(g);
            let lightest = group.lightest_member().expect("groups are non-empty");
            group.place_replica(id, lightest);
            report.messages += 1;
        }

        // Light-weight migration: heavy members offload replicas to the
        // newcomer until the group is balanced (±1).
        let moves = edit.rebalance_bumping(gid);
        report.migrated_replicas += moves;
        report.messages += moves;

        // The updated IDBFA is multicast to the other group members.
        let group_len = edit.work.groups[&gid].len() as u64;
        report.messages += group_len.saturating_sub(1);

        if edit.work.groups[&gid].len() > self.config.max_group_size {
            let (_new_gid, split_report) = edit.split(gid, self.config.max_group_size);
            report.migrated_replicas += split_report.migrated_replicas;
            report.messages += split_report.messages;
            report.split = true;
            self.stats.splits += 1;
        }

        // A join places the newcomer's replica in *every* group (and may
        // have grown the published slab), so every group's derived masks
        // are stale — the one reconfiguration class that cannot be
        // confined to the touched group.
        edit.touch_all_groups();
        edit.bump_epoch();
        self.finish_edit(edit);
        self.refresh_replica_charges();
        self.stats.migrated_replicas += report.migrated_replicas;
        self.stats.reconfig_messages += report.messages;
        (id, report)
    }

    /// Removes an MDS: re-homes its files to the lightest peer, migrates
    /// its held replicas within the group, deletes its replica everywhere,
    /// and merges groups that now fit together (§3.1–3.2).
    ///
    /// # Errors
    ///
    /// [`ReconfigError::UnknownMds`] if `id` is not in the cluster;
    /// [`ReconfigError::LastServer`] when only one server remains.
    pub fn remove_mds(&mut self, id: MdsId) -> Result<ReconfigReport, ReconfigError> {
        if !self.mdss.contains_key(&id) {
            return Err(ReconfigError::UnknownMds(id));
        }
        if self.mdss.len() == 1 {
            return Err(ReconfigError::LastServer);
        }
        self.maybe_drain();
        let mut report = ReconfigReport::default();
        let gid = self.routes.pin().group_of(id).expect("member has a group");

        // 1. Re-home the departing server's files to the lightest peer
        //    (group-mate when possible). The paper focuses on replica
        //    migration; file re-homing is our documented completion of the
        //    departure path. This publishes the target's grown filter as
        //    its own edit, *before* the removal edit below.
        let files = self.mdss.get_mut(&id).expect("exists").evacuate();
        if !files.is_empty() {
            let snap = self.routes.pin();
            let target = self
                .mdss
                .iter()
                .filter(|(&mid, _)| mid != id)
                .min_by_key(|(&mid, mds)| {
                    let same_group = snap.group_of(mid) == Some(gid);
                    (!same_group, mds.file_count(), mid)
                })
                .map(|(&mid, _)| mid)
                .expect("another server exists");
            report.rehomed_files = files.len() as u64;
            report.messages += files.len() as u64;
            let target_mds = self.mdss.get_mut(&target).expect("target exists");
            for path in &files {
                target_mds.create_local(path);
            }
            drop(snap);
            let update = self.push_update(target);
            report.messages += update.messages;
        }

        let routes = Arc::clone(&self.routes);
        let mut edit = RouteEdit::begin(&routes, self.config.epoch_granularity);
        edit.push_op(SlabOp::Remove(id));

        // 2. Migrate the replicas the departing member held to the other
        //    members of its group.
        {
            let group = edit.group_mut(gid);
            let held = group.replicas_held_by(id);
            if group.len() > 1 {
                for origin in held {
                    let lightest = group
                        .members()
                        .iter()
                        .copied()
                        .filter(|&m| m != id)
                        .min_by_key(|&m| (group.replicas_held_by(m).len(), m))
                        .expect("another member exists");
                    group.move_replica(origin, lightest);
                    report.migrated_replicas += 1;
                    report.messages += 1;
                }
            } else {
                for origin in held {
                    group.drop_replica(origin);
                }
            }
            group.remove_member(id);
        }

        // 3. Every other group drops the departed server's replica (one
        //    deletion notice each), then rebalances: the drop can leave
        //    the former holder one light.
        let other_gids: Vec<GroupId> = edit
            .work
            .groups
            .keys()
            .copied()
            .filter(|&g| g != gid)
            .collect();
        for g in other_gids {
            if edit.group_mut(g).drop_replica(id).is_some() {
                report.messages += 1;
            }
            let moves = edit.rebalance_bumping(g);
            report.migrated_replicas += moves;
            report.messages += moves;
        }

        // 4. Forget the server; purge hot-cache entries pointing at it
        //    (the fail-over rule of §4.5) and its cached L2 mask (ids
        //    are never reused, so the entry could only leak).
        edit.work.group_of.remove(&id);
        self.mdss.remove(&id);
        self.mask_cache.forget_entry(id);
        for mds in self.mdss.values_mut() {
            if let Some(lru) = mds.lru_mut() {
                lru.purge_home(id);
            }
        }
        if edit.work.groups[&gid].is_empty() {
            edit.remove_group(gid);
        } else {
            let moves = edit.rebalance_bumping(gid);
            report.migrated_replicas += moves;
            report.messages += moves;
        }

        // 5. Merge while two groups fit in one (§3.2).
        while let Some((a, b)) = edit.mergeable_pair(self.config.max_group_size) {
            let merge_report = edit.merge(a, b);
            report.migrated_replicas += merge_report.migrated_replicas;
            report.messages += merge_report.messages;
            report.merged = true;
            self.stats.merges += 1;
        }

        // Every group dropped the departed server's replica, so every
        // group's origin masks (and the former holders' held sets) moved.
        edit.touch_all_groups();
        edit.bump_epoch();
        self.finish_edit(edit);
        self.refresh_replica_charges();
        self.stats.migrated_replicas += report.migrated_replicas;
        self.stats.reconfig_messages += report.messages;
        Ok(report)
    }

    /// Fail-stops an MDS (§4.5): heart-beat detection removes its Bloom
    /// filters from every survivor so false positives stop pointing at it,
    /// but — unlike a graceful [`remove_mds`](GhbaCluster::remove_mds) —
    /// its files are **lost** until higher-level recovery re-creates them;
    /// the metadata service itself stays functional at degraded coverage.
    ///
    /// # Errors
    ///
    /// [`ReconfigError::UnknownMds`] if `id` is not in the cluster;
    /// [`ReconfigError::LastServer`] when only one server remains.
    pub fn fail_mds(&mut self, id: MdsId) -> Result<ReconfigReport, ReconfigError> {
        if !self.mdss.contains_key(&id) {
            return Err(ReconfigError::UnknownMds(id));
        }
        if self.mdss.len() == 1 {
            return Err(ReconfigError::LastServer);
        }
        self.maybe_drain();
        let mut report = ReconfigReport::default();
        let routes = Arc::clone(&self.routes);
        let mut edit = RouteEdit::begin(&routes, self.config.epoch_granularity);
        let gid = edit
            .work
            .group_of
            .get(&id)
            .copied()
            .expect("member has a group");
        edit.push_op(SlabOp::Remove(id));

        // The crash takes its files and its held replicas with it; the
        // group re-acquires coverage for the lost replicas from the
        // origins' published snapshots.
        {
            let group = edit.group_mut(gid);
            let held = group.replicas_held_by(id);
            for origin in held {
                group.drop_replica(origin);
            }
            group.remove_member(id);
        }
        edit.work.group_of.remove(&id);
        self.mdss.remove(&id);
        self.mask_cache.forget_entry(id);

        // Survivors drop the dead server's replica and hot-cache entries
        // (one heartbeat-timeout notice per group).
        let other_gids: Vec<GroupId> = edit
            .work
            .groups
            .keys()
            .copied()
            .filter(|&g| g != gid)
            .collect();
        for g in other_gids {
            if edit.group_mut(g).drop_replica(id).is_some() {
                report.messages += 1;
            }
        }
        for mds in self.mdss.values_mut() {
            if let Some(lru) = mds.lru_mut() {
                lru.purge_home(id);
            }
        }

        // Restore the mirror invariant: re-fetch lost replicas, rebalance,
        // merge shrunken groups.
        if edit.work.groups[&gid].is_empty() {
            edit.remove_group(gid);
        } else {
            let (copies, msgs) = edit.rebuild_coverage(gid);
            report.migrated_replicas += copies;
            report.messages += msgs;
            let moves = edit.rebalance_bumping(gid);
            report.migrated_replicas += moves;
            report.messages += moves;
        }
        while let Some((a, b)) = edit.mergeable_pair(self.config.max_group_size) {
            let merge_report = edit.merge(a, b);
            report.migrated_replicas += merge_report.migrated_replicas;
            report.messages += merge_report.messages;
            report.merged = true;
            self.stats.merges += 1;
        }
        // Other groups may have been left one replica light.
        let gids: Vec<GroupId> = edit.work.groups.keys().copied().collect();
        for g in gids {
            let moves = edit.rebalance_bumping(g);
            report.migrated_replicas += moves;
            report.messages += moves;
        }

        // Every survivor dropped the dead server's replica: all origin
        // masks moved.
        edit.touch_all_groups();
        edit.bump_epoch();
        self.finish_edit(edit);
        self.refresh_replica_charges();
        self.stats.migrated_replicas += report.migrated_replicas;
        self.stats.reconfig_messages += report.messages;
        Ok(report)
    }

    /// Moves replicas from the heaviest to the lightest member until the
    /// spread is at most one. Returns the number of moves. Placement
    /// moved, so the membership epoch advances — but only **this
    /// group's** [`GroupEpoch`](crate::GroupEpoch): a rebalance shuffles
    /// held replicas among the group's members and touches nothing any
    /// other group's masks depend on, which is exactly the case the
    /// per-group invalidation keeps warm (under
    /// [`EpochGranularity::PerGroup`](crate::EpochGranularity); the
    /// `Global` reference granularity still flushes everything).
    ///
    /// Public so churn workloads (the `par_exec` bench, operator-driven
    /// re-balancing) can trigger the single-group reconfiguration path
    /// directly.
    ///
    /// # Panics
    ///
    /// Panics if `gid` is not a live group.
    pub fn rebalance_group(&mut self, gid: GroupId) -> u64 {
        let routes = Arc::clone(&self.routes);
        let mut edit = RouteEdit::begin(&routes, self.config.epoch_granularity);
        assert!(
            edit.work.groups.contains_key(&gid),
            "group exists: {gid} is not live"
        );
        let moves = edit.rebalance_bumping(gid);
        edit.commit();
        if moves > 0 {
            // A standalone rebalance must leave memory charges correct
            // on its own (the compound reconfigurations refresh the
            // whole cluster afterwards, but a direct caller gets no such
            // sweep); only this group's members' held counts moved.
            let snap = self.routes.pin();
            let group = snap.group(gid).expect("group exists");
            let member_held: Vec<(MdsId, usize)> = group
                .members()
                .iter()
                .map(|&member| (member, group.replicas_held_by(member).len()))
                .collect();
            for (member, count) in member_held {
                self.mdss
                    .get_mut(&member)
                    .expect("group member exists")
                    .set_replica_charge(count);
            }
        }
        moves
    }

    /// Re-derives every server's replica memory charge from the published
    /// placement maps (called after any reconfiguration).
    pub(crate) fn refresh_replica_charges(&mut self) {
        let snap = self.routes.pin();
        let held: Vec<(MdsId, usize)> = self
            .mdss
            .keys()
            .map(|&id| (id, snap.replicas_held_by(id).len()))
            .collect();
        for (id, count) in held {
            self.mdss
                .get_mut(&id)
                .expect("listed server exists")
                .set_replica_charge(count);
        }
    }
}
