//! Configuration of a G-HBA cluster.

use ghba_simnet::LatencyModel;

use crate::ids::MembershipEpoch;

/// How long the L2/L3 candidate-mask cache of a lookup walk lives (see
/// `MaskCache` in `cluster.rs`).
///
/// Masks and membership snapshots depend only on cluster layout, which
/// **writes never touch** — only reconfiguration (join/leave/fail/split/
/// merge/rebalance) changes them. The modes trade invalidation plumbing
/// for amortization reach:
///
/// * [`Persistent`](MaskCacheMode::Persistent) — cache entries survive
///   across batches *and* across the 1-op string shims, validated
///   lazily against the cluster's membership epoch (every
///   reconfiguration bumps it). The default.
/// * [`PerBatch`](MaskCacheMode::PerBatch) — the pre-epoch behaviour:
///   entries live for one `OpBatch` (armed by `batch_begin`, dropped by
///   `batch_end`), or one walk outside the op pipeline.
/// * [`Off`](MaskCacheMode::Off) — rebuild every mask per walk; the
///   cache-free reference the property tests compare against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MaskCacheMode {
    /// Epoch-validated, survives across batches and string shims.
    #[default]
    Persistent,
    /// Scoped to one executing `OpBatch` (the pre-PR-4 behaviour).
    PerBatch,
    /// No caching; every walk rebuilds its masks (reference semantics).
    Off,
}

/// How fine-grained the persistent mask cache's invalidation fences are.
///
/// Candidate masks and membership snapshots are derived per entry server
/// (L2) and per group (L3); a reconfiguration invalidates only the groups
/// whose placement it actually touched. The granularity selects whether
/// the cache exploits that:
///
/// * [`PerGroup`](EpochGranularity::PerGroup) (default) — every cache
///   entry is tagged with its group's
///   [`GroupEpoch`](crate::GroupEpoch); a single-group rebalance,
///   split, or merge bumps only the involved groups, so every other
///   entry stays warm. Joins/leaves/fail-stops place or drop a replica
///   in *every* group and therefore still bump them all.
/// * [`Global`](EpochGranularity::Global) — every reconfiguration bumps
///   every group: the all-or-nothing flush of the pre-PR-5 design, kept
///   as the reference the property tests (and the `par_exec` bench's
///   churn comparison) run against.
///
/// Outcomes are identical under both granularities (property-tested);
/// only how much derived state survives a reconfiguration differs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EpochGranularity {
    /// Tag cache entries per group; invalidate only touched groups.
    #[default]
    PerGroup,
    /// Any reconfiguration invalidates every cached mask (reference).
    Global,
}

/// Sizing of the data-parallel batch execution engine (see
/// [`crate::exec`]).
///
/// `workers` is the number of chunks a large fused-lookup run is split
/// into, each walked concurrently against the shared read-only slab
/// (worker 1 is the calling thread; workers 2..N run on the persistent
/// process-wide pool). `workers = 1` — the default — never touches the
/// pool and takes the exact single-threaded walk. Batches smaller than
/// `min_parallel_batch` also stay single-threaded: below that size the
/// chunk dispatch overhead outweighs the overlap.
///
/// Parallel outcomes are bit-identical to `workers = 1` at every worker
/// count (property-tested): the read phase is pure, and all side
/// effects (LRU fills, statistics) are spliced back in stream order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorConfig {
    /// Concurrent chunks per fused lookup run (1 = sequential).
    pub workers: usize,
    /// Minimum lookups in a run before it is worth parallelizing.
    pub min_parallel_batch: usize,
}

impl Default for ExecutorConfig {
    /// Sequential execution (`workers = 1`), 64-lookup parallel floor.
    fn default() -> Self {
        ExecutorConfig {
            workers: 1,
            min_parallel_batch: 64,
        }
    }
}

impl ExecutorConfig {
    /// Returns `self` with a different worker count.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "executor needs at least one worker");
        self.workers = workers;
        self
    }

    /// Returns `self` with a different parallel floor.
    ///
    /// # Panics
    ///
    /// Panics if `min == 0`.
    #[must_use]
    pub fn with_min_parallel_batch(mut self, min: usize) -> Self {
        assert!(min > 0, "parallel floor must be positive");
        self.min_parallel_batch = min;
        self
    }
}

/// The lifetime state machine shared by every scheme's derived-state
/// cache (G-HBA's L2/L3 `MaskCache`, HBA's per-entry mask cache): armed
/// flag for [`MaskCacheMode::PerBatch`], build epoch for
/// [`MaskCacheMode::Persistent`], and hit/miss counters. Keeping the
/// mode-validation logic in one place means the schemes' cache lifetime
/// semantics cannot diverge.
///
/// Every method that can invalidate returns `true` when the holder must
/// drop its cached entries; the counters survive drops.
#[derive(Debug, Clone, Default)]
pub struct MaskCacheLifecycle {
    armed: bool,
    epoch: MembershipEpoch,
    hits: u64,
    misses: u64,
}

impl MaskCacheLifecycle {
    /// Called at the top of every walk: `true` if the cache contents
    /// are stale under `mode` (older epoch, unarmed per-batch scope, or
    /// caching off) and must be dropped before use.
    #[must_use]
    pub fn begin_walk(&mut self, mode: MaskCacheMode, epoch: MembershipEpoch) -> bool {
        match mode {
            MaskCacheMode::Persistent => {
                if self.epoch == epoch {
                    false
                } else {
                    self.epoch = epoch;
                    true
                }
            }
            MaskCacheMode::PerBatch => !self.armed,
            MaskCacheMode::Off => true,
        }
    }

    /// Variant of [`begin_walk`](MaskCacheLifecycle::begin_walk) for
    /// caches whose entries carry their **own** validity tags (G-HBA's
    /// per-group-epoch mask cache): under
    /// [`MaskCacheMode::Persistent`] the holder validates entry by
    /// entry, so no bulk drop ever happens here — only the
    /// `PerBatch`-unarmed and `Off` cases still clear wholesale.
    #[must_use]
    pub fn begin_walk_keyed(&mut self, mode: MaskCacheMode) -> bool {
        match mode {
            MaskCacheMode::Persistent => false,
            MaskCacheMode::PerBatch => !self.armed,
            MaskCacheMode::Off => true,
        }
    }

    /// Arms the per-batch scope (a no-op outside
    /// [`MaskCacheMode::PerBatch`]); `true` if the holder must start
    /// the batch with dropped entries.
    #[must_use]
    pub fn arm(&mut self, mode: MaskCacheMode) -> bool {
        if mode == MaskCacheMode::PerBatch {
            self.armed = true;
            true
        } else {
            false
        }
    }

    /// Disarms the per-batch scope (a no-op outside
    /// [`MaskCacheMode::PerBatch`]); `true` if the holder must drop its
    /// entries now that the batch ended.
    #[must_use]
    pub fn disarm(&mut self, mode: MaskCacheMode) -> bool {
        if mode == MaskCacheMode::PerBatch {
            self.armed = false;
            true
        } else {
            false
        }
    }

    /// Whether the per-batch scope is currently armed.
    #[must_use]
    pub fn armed(&self) -> bool {
        self.armed
    }

    /// Records a consultation answered from cache.
    pub fn hit(&mut self) {
        self.hits += 1;
    }

    /// Records a consultation that had to build the entry.
    pub fn miss(&mut self) {
        self.misses += 1;
    }

    /// Absorbs counters recorded out-of-band (the atomic recorders of
    /// the `&self` walk path fold their mask-cache consults here at
    /// drain time).
    pub fn absorb(&mut self, hits: u64, misses: u64) {
        self.hits += hits;
        self.misses += misses;
    }

    /// Lifetime `(hits, misses)`.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Tunable parameters of a [`GhbaCluster`](crate::GhbaCluster).
///
/// Defaults follow the paper's recommended operating point; override
/// builder-style:
///
/// ```
/// use ghba_core::GhbaConfig;
///
/// let config = GhbaConfig::default()
///     .with_max_group_size(7)
///     .with_bits_per_file(16.0)
///     .with_seed(42);
/// assert_eq!(config.max_group_size, 7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GhbaConfig {
    /// Maximum MDSs per group (`M` in the paper). A join into a full group
    /// triggers a split; departures can trigger merges.
    pub max_group_size: usize,
    /// Bloom filter bits per file (`m/n`). The paper's premise: G-HBA's
    /// memory savings let it afford a higher ratio than HBA, shrinking
    /// Eq. (1)'s false-hit rate.
    pub bits_per_file: f64,
    /// Expected files per MDS — sizes each server's local filter.
    pub filter_capacity: usize,
    /// Files resident in the L1 LRU array per MDS.
    pub lru_capacity: usize,
    /// Counters per home filter in the L1 array.
    pub lru_bits: usize,
    /// Hash functions in the L1 array filters.
    pub lru_hashes: u32,
    /// XOR-distance (in bits) between a live filter and its published
    /// snapshot that triggers a replica refresh (§3.4).
    pub update_threshold_bits: usize,
    /// Seed for all deterministic randomness (placement, entry-MDS
    /// choice, jitter).
    pub seed: u64,
    /// Latency model for simulated operation timing.
    pub latency: LatencyModel,
    /// Per-MDS memory budget in bytes; `None` disables spill modelling.
    pub memory_per_mds: Option<usize>,
    /// Contention model: per-message server utilization. Each query's
    /// latency is inflated by `1/(1 − min(0.9, c·messages))`, modelling
    /// the queueing delay multicast fan-out induces under load (the
    /// "queuing" the paper folds into `U(laten.)`). Zero disables it.
    pub contention_per_message: f64,
    /// Lifetime of the L2/L3 candidate-mask cache (see [`MaskCacheMode`]).
    pub mask_cache: MaskCacheMode,
    /// Invalidation granularity of the persistent mask cache (see
    /// [`EpochGranularity`]).
    pub epoch_granularity: EpochGranularity,
    /// Sizing of the parallel batch execution engine (see
    /// [`ExecutorConfig`]).
    pub executor: ExecutorConfig,
    /// Number of namespace write shards for the pin-once concurrent
    /// pipeline (rounded up to a power of two; minimum 1). Writes on
    /// distinct shards apply concurrently under independent locks.
    pub write_shards: usize,
}

impl Default for GhbaConfig {
    /// `M = 6` (the paper's optimum at N = 30), 16 bits/file, 100 k files
    /// per server, 4 k-entry LRU, 2 k-bit update threshold, unlimited
    /// memory.
    fn default() -> Self {
        GhbaConfig {
            max_group_size: 6,
            bits_per_file: 16.0,
            filter_capacity: 100_000,
            lru_capacity: 4_096,
            lru_bits: 65_536,
            lru_hashes: 5,
            update_threshold_bits: 2_048,
            seed: 0x67BA,
            latency: LatencyModel::default(),
            memory_per_mds: None,
            contention_per_message: 0.0,
            mask_cache: MaskCacheMode::default(),
            epoch_granularity: EpochGranularity::default(),
            executor: ExecutorConfig::default(),
            write_shards: 16,
        }
    }
}

impl GhbaConfig {
    /// Returns `self` with a different maximum group size `M`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    #[must_use]
    pub fn with_max_group_size(mut self, m: usize) -> Self {
        assert!(m > 0, "group size must be positive");
        self.max_group_size = m;
        self
    }

    /// Returns `self` with a different bits-per-file ratio.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not finite and positive.
    #[must_use]
    pub fn with_bits_per_file(mut self, ratio: f64) -> Self {
        assert!(
            ratio.is_finite() && ratio > 0.0,
            "bits per file must be positive"
        );
        self.bits_per_file = ratio;
        self
    }

    /// Returns `self` with a different per-MDS expected file count.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn with_filter_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "filter capacity must be positive");
        self.filter_capacity = capacity;
        self
    }

    /// Returns `self` with a different L1 LRU capacity (0 disables L1).
    #[must_use]
    pub fn with_lru_capacity(mut self, capacity: usize) -> Self {
        self.lru_capacity = capacity;
        self
    }

    /// Returns `self` with a different update threshold in bits.
    #[must_use]
    pub fn with_update_threshold(mut self, bits: usize) -> Self {
        self.update_threshold_bits = bits;
        self
    }

    /// Returns `self` re-seeded.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns `self` with a different latency model.
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Returns `self` with a per-MDS memory budget in bytes.
    #[must_use]
    pub fn with_memory_per_mds(mut self, bytes: usize) -> Self {
        self.memory_per_mds = Some(bytes);
        self
    }

    /// Returns `self` with a different namespace write-shard count
    /// (rounded up to a power of two at cluster construction; 0 is
    /// treated as 1).
    #[must_use]
    pub fn with_write_shards(mut self, shards: usize) -> Self {
        self.write_shards = shards;
        self
    }

    /// Returns `self` with unlimited per-MDS memory.
    #[must_use]
    pub fn with_unlimited_memory(mut self) -> Self {
        self.memory_per_mds = None;
        self
    }

    /// Returns `self` with the given per-message contention factor.
    ///
    /// # Panics
    ///
    /// Panics if `c` is negative or not finite.
    #[must_use]
    pub fn with_contention(mut self, c: f64) -> Self {
        assert!(c.is_finite() && c >= 0.0, "contention must be non-negative");
        self.contention_per_message = c;
        self
    }

    /// Returns `self` with a different mask-cache lifetime.
    #[must_use]
    pub fn with_mask_cache(mut self, mode: MaskCacheMode) -> Self {
        self.mask_cache = mode;
        self
    }

    /// Returns `self` with a different epoch-invalidation granularity.
    #[must_use]
    pub fn with_epoch_granularity(mut self, granularity: EpochGranularity) -> Self {
        self.epoch_granularity = granularity;
        self
    }

    /// Returns `self` with a different executor sizing.
    #[must_use]
    pub fn with_executor(mut self, executor: ExecutorConfig) -> Self {
        self.executor = executor;
        self
    }

    /// Returns `self` with `workers` parallel walk chunks (1 =
    /// sequential, the default).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.executor = self.executor.with_workers(workers);
        self
    }

    /// The queueing inflation factor for a query that exchanged
    /// `messages` messages.
    #[must_use]
    pub fn contention_factor(&self, messages: u32) -> f64 {
        if self.contention_per_message == 0.0 {
            return 1.0;
        }
        let rho = (self.contention_per_message * f64::from(messages)).min(0.9);
        1.0 / (1.0 - rho)
    }

    /// Size in bits of each server's published Bloom filter under this
    /// configuration.
    #[must_use]
    pub fn filter_bits(&self) -> usize {
        ((self.filter_capacity as f64) * self.bits_per_file).ceil() as usize
    }

    /// Hash count used by the per-server filters (optimal for the ratio).
    #[must_use]
    pub fn filter_hashes(&self) -> u32 {
        ghba_bloom::analysis::optimal_hash_count(self.bits_per_file)
    }

    /// Mutations that must accumulate before the publish gate pays for an
    /// exact drift check. Each new file sets at most `k` bits, so fewer
    /// than `threshold / k` mutations cannot have crossed the update
    /// threshold; checking at half that rate keeps the O(m) distance
    /// computation rare. Shared by every scheme's publish gate.
    #[must_use]
    pub fn publish_gate(&self) -> u64 {
        let hashes = self.filter_hashes() as usize;
        (self.update_threshold_bits / hashes.max(1) / 2).max(1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_papers_operating_point() {
        let c = GhbaConfig::default();
        assert_eq!(c.max_group_size, 6);
        assert_eq!(c.bits_per_file, 16.0);
        assert!(c.memory_per_mds.is_none());
    }

    #[test]
    fn builders_chain() {
        let c = GhbaConfig::default()
            .with_max_group_size(9)
            .with_bits_per_file(8.0)
            .with_filter_capacity(10)
            .with_lru_capacity(0)
            .with_update_threshold(64)
            .with_seed(1)
            .with_memory_per_mds(1024);
        assert_eq!(c.max_group_size, 9);
        assert_eq!(c.bits_per_file, 8.0);
        assert_eq!(c.filter_capacity, 10);
        assert_eq!(c.lru_capacity, 0);
        assert_eq!(c.update_threshold_bits, 64);
        assert_eq!(c.seed, 1);
        assert_eq!(c.memory_per_mds, Some(1024));
        assert!(c.with_unlimited_memory().memory_per_mds.is_none());
    }

    #[test]
    fn filter_geometry_derives_from_ratio() {
        let c = GhbaConfig::default()
            .with_filter_capacity(1_000)
            .with_bits_per_file(8.0);
        assert_eq!(c.filter_bits(), 8_000);
        assert_eq!(c.filter_hashes(), 6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_group_size_rejected() {
        let _ = GhbaConfig::default().with_max_group_size(0);
    }

    #[test]
    fn executor_defaults_are_sequential() {
        let c = GhbaConfig::default();
        assert_eq!(c.executor.workers, 1);
        assert_eq!(c.epoch_granularity, EpochGranularity::PerGroup);
        let c = c
            .with_workers(4)
            .with_executor(
                ExecutorConfig::default()
                    .with_workers(2)
                    .with_min_parallel_batch(8),
            )
            .with_epoch_granularity(EpochGranularity::Global);
        assert_eq!(
            c.executor,
            ExecutorConfig {
                workers: 2,
                min_parallel_batch: 8
            }
        );
        assert_eq!(c.epoch_granularity, EpochGranularity::Global);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = GhbaConfig::default().with_workers(0);
    }

    #[test]
    fn keyed_walk_never_bulk_drops_persistent_entries() {
        let mut life = MaskCacheLifecycle::default();
        assert!(!life.begin_walk_keyed(MaskCacheMode::Persistent));
        assert!(life.begin_walk_keyed(MaskCacheMode::Off));
        assert!(life.begin_walk_keyed(MaskCacheMode::PerBatch));
        assert!(life.arm(MaskCacheMode::PerBatch));
        assert!(!life.begin_walk_keyed(MaskCacheMode::PerBatch));
        assert!(life.disarm(MaskCacheMode::PerBatch));
    }
}
