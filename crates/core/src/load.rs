//! Per-group load telemetry: the measurement half of the adaptive
//! control plane.
//!
//! The paper derives an interior-optimal group size M* offline (fig6/
//! fig7); closing the loop online needs the cluster to *observe* where
//! its traffic lands. This module provides that observation surface in
//! three pieces:
//!
//! * `LoadRecorder` (private) — fixed-capacity tables of wait-free atomic
//!   counters, embedded in [`ConcurrentStats`](crate::ConcurrentStats),
//!   recorded on the `lookup_concurrent`/`walk_pinned` hot paths (and
//!   mirrored by the owner-side batched walk) with one slot index plus
//!   a handful of relaxed `fetch_add`s per walk. No locks, no
//!   allocation, callable from `&self` while reconfiguration publishes
//!   successor snapshots.
//! * `LoadWindows` (private) — the owner-side fold state: each call to
//!   [`GhbaCluster::load_report`](crate::GhbaCluster::load_report)
//!   closes one *window* (swap-to-zero on the atomics) and folds it
//!   into exponentially decayed per-group rates, so a controller
//!   sampling on a cadence sees smoothed recent load, not a lifetime
//!   average and not one noisy tick.
//! * [`LoadReport`] — the stable snapshot handed to consumers: one
//!   [`GroupLoad`] row per live group (shape from the pinned routing
//!   snapshot, rates from the decayed windows), plus window totals.
//!
//! The recorder's group table is indexed directly by [`GroupId`] (ids
//! are monotonic and never recycled); ids at or past the table capacity
//! share the final slot, so an extremely long split history degrades to
//! aggregated accounting for the newest groups rather than unbounded
//! memory or a lock. The same scheme covers the per-entry-server table
//! that feeds member-imbalance rates.
//!
//! False-hit accounting is recorded with full fidelity on both the
//! pinned (`&self`) and the owner batched walks. Mask-consult rates
//! cover two caches with one validity contract — the pinned walk's
//! snapshot-resident shared cache and the owner walk's persistent
//! cache, both tagged and validated per `(group, GroupEpoch)` — so a
//! group's `mask_hit_rate` staying ≥ 0.99 through someone *else's*
//! reconfiguration is the observable form of the per-group-epoch
//! guarantee on either path. The controller's decisions deliberately
//! depend only on traffic share, shape, and member imbalance, which
//! are identical across cache modes (see [`crate::adapt`]).

use core::sync::atomic::{AtomicU64, Ordering};
use std::collections::BTreeMap;

use crate::ids::{GroupId, MdsId, MembershipEpoch};
use crate::query::QueryLevel;

/// Group slots in the atomic table. Group ids `>= LOAD_GROUP_SLOTS - 1`
/// aggregate into the final slot.
pub(crate) const LOAD_GROUP_SLOTS: usize = 2048;
/// Entry-server slots; same overflow rule.
pub(crate) const LOAD_ENTRY_SLOTS: usize = 2048;

/// One group's wait-free counters for the current (open) window.
#[derive(Debug)]
struct GroupSlot {
    /// Walks whose entry server belonged to this group.
    lookups: AtomicU64,
    /// Of those, walks that escalated to the L3 group multicast.
    l3_walks: AtomicU64,
    /// Of those, walks that escalated to the L4 global multicast
    /// (including misses).
    l4_walks: AtomicU64,
    /// False hits charged to walks entering through this group.
    false_hits: AtomicU64,
    /// L2/L3 mask consults answered from a cache or memo.
    mask_hits: AtomicU64,
    /// L2/L3 mask consults that had to build the mask.
    mask_misses: AtomicU64,
}

impl GroupSlot {
    fn new() -> Self {
        GroupSlot {
            lookups: AtomicU64::new(0),
            l3_walks: AtomicU64::new(0),
            l4_walks: AtomicU64::new(0),
            false_hits: AtomicU64::new(0),
            mask_hits: AtomicU64::new(0),
            mask_misses: AtomicU64::new(0),
        }
    }
}

/// One group's raw counts for a just-closed window (see
/// [`LoadRecorder::drain_window`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct RawGroupWindow {
    pub lookups: u64,
    pub l3_walks: u64,
    pub l4_walks: u64,
    pub false_hits: u64,
    pub mask_hits: u64,
    pub mask_misses: u64,
}

/// The raw contents of one closed window: per-slot group counts plus
/// per-slot entry-server lookup counts (only non-zero slots reported).
#[derive(Debug, Clone, Default)]
pub(crate) struct RawLoadWindow {
    pub groups: Vec<(usize, RawGroupWindow)>,
    pub entries: Vec<(usize, u64)>,
}

impl RawLoadWindow {
    /// Total walks recorded in this window.
    pub(crate) fn total_lookups(&self) -> u64 {
        self.groups.iter().map(|(_, g)| g.lookups).sum()
    }
}

/// Fixed-capacity atomic tables recording per-group and per-entry
/// traffic from `&self`. Owned by
/// [`ConcurrentStats`](crate::ConcurrentStats); see the module docs.
#[derive(Debug)]
pub(crate) struct LoadRecorder {
    groups: Box<[GroupSlot]>,
    entries: Box<[AtomicU64]>,
}

#[inline]
fn group_slot(gid: GroupId) -> usize {
    (gid.0 as usize).min(LOAD_GROUP_SLOTS - 1)
}

#[inline]
fn entry_slot(entry: MdsId) -> usize {
    (entry.0 as usize).min(LOAD_ENTRY_SLOTS - 1)
}

impl LoadRecorder {
    pub(crate) fn new() -> Self {
        LoadRecorder {
            groups: (0..LOAD_GROUP_SLOTS).map(|_| GroupSlot::new()).collect(),
            entries: (0..LOAD_ENTRY_SLOTS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one finished walk attributed to entry group `gid`:
    /// traffic, escalation depth, and false hits.
    pub(crate) fn record_walk(
        &self,
        gid: GroupId,
        entry: MdsId,
        level: QueryLevel,
        false_hits: u64,
    ) {
        let slot = &self.groups[group_slot(gid)];
        slot.lookups.fetch_add(1, Ordering::Relaxed);
        match level {
            QueryLevel::L1Lru | QueryLevel::L2Segment => {}
            QueryLevel::L3Group => {
                slot.l3_walks.fetch_add(1, Ordering::Relaxed);
            }
            QueryLevel::L4Global | QueryLevel::Nonexistent => {
                slot.l3_walks.fetch_add(1, Ordering::Relaxed);
                slot.l4_walks.fetch_add(1, Ordering::Relaxed);
            }
        }
        if false_hits > 0 {
            slot.false_hits.fetch_add(false_hits, Ordering::Relaxed);
        }
        self.entries[entry_slot(entry)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one L2/L3 mask consult attributed to group `gid`.
    pub(crate) fn record_mask(&self, gid: GroupId, hit: bool) {
        let slot = &self.groups[group_slot(gid)];
        if hit {
            slot.mask_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            slot.mask_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Closes the open window: swaps every counter to zero and returns
    /// the non-zero slots. Wait-free recorders may interleave; a count
    /// recorded during the drain lands in exactly one window.
    pub(crate) fn drain_window(&self) -> RawLoadWindow {
        let mut raw = RawLoadWindow::default();
        for (index, slot) in self.groups.iter().enumerate() {
            let window = RawGroupWindow {
                lookups: slot.lookups.swap(0, Ordering::Relaxed),
                l3_walks: slot.l3_walks.swap(0, Ordering::Relaxed),
                l4_walks: slot.l4_walks.swap(0, Ordering::Relaxed),
                false_hits: slot.false_hits.swap(0, Ordering::Relaxed),
                mask_hits: slot.mask_hits.swap(0, Ordering::Relaxed),
                mask_misses: slot.mask_misses.swap(0, Ordering::Relaxed),
            };
            if window != RawGroupWindow::default() {
                raw.groups.push((index, window));
            }
        }
        for (index, slot) in self.entries.iter().enumerate() {
            let count = slot.swap(0, Ordering::Relaxed);
            if count > 0 {
                raw.entries.push((index, count));
            }
        }
        raw
    }
}

/// Decayed per-group rates, folded once per closed window.
#[derive(Debug, Clone, Copy, Default)]
struct DecayedGroup {
    lookups: f64,
    l3_walks: f64,
    l4_walks: f64,
    false_hits: f64,
    mask_hits: f64,
    mask_misses: f64,
}

/// Owner-side window fold state: exponentially decayed per-group and
/// per-entry rates. One instance per cluster, behind a mutex touched
/// only at report cadence (never on the walk hot path).
#[derive(Debug)]
pub(crate) struct LoadWindows {
    window: u64,
    /// Weight of history when a new window folds in: `decayed = alpha *
    /// decayed + fresh`. At the default 0.5 a group's rate halves every
    /// quiet window, so a flash crowd fades from the report within a
    /// few ticks of ending.
    alpha: f64,
    groups: BTreeMap<usize, DecayedGroup>,
    entries: BTreeMap<usize, f64>,
}

impl LoadWindows {
    pub(crate) fn new() -> Self {
        LoadWindows {
            window: 0,
            alpha: 0.5,
            groups: BTreeMap::new(),
            entries: BTreeMap::new(),
        }
    }

    /// Folds one closed raw window into the decayed rates and returns
    /// the new window index.
    pub(crate) fn fold(&mut self, raw: &RawLoadWindow) -> u64 {
        self.window += 1;
        for decayed in self.groups.values_mut() {
            decayed.lookups *= self.alpha;
            decayed.l3_walks *= self.alpha;
            decayed.l4_walks *= self.alpha;
            decayed.false_hits *= self.alpha;
            decayed.mask_hits *= self.alpha;
            decayed.mask_misses *= self.alpha;
        }
        for rate in self.entries.values_mut() {
            *rate *= self.alpha;
        }
        for &(slot, ref window) in &raw.groups {
            let decayed = self.groups.entry(slot).or_default();
            decayed.lookups += window.lookups as f64;
            decayed.l3_walks += window.l3_walks as f64;
            decayed.l4_walks += window.l4_walks as f64;
            decayed.false_hits += window.false_hits as f64;
            decayed.mask_hits += window.mask_hits as f64;
            decayed.mask_misses += window.mask_misses as f64;
        }
        for &(slot, count) in &raw.entries {
            *self.entries.entry(slot).or_default() += count as f64;
        }
        // Drop rows decayed to dust so dissolved groups and retired
        // servers do not accumulate forever.
        self.groups.retain(|_, d| d.lookups >= 1e-3);
        self.entries.retain(|_, rate| *rate >= 1e-3);
        self.window
    }

    fn group(&self, gid: GroupId) -> DecayedGroup {
        self.groups
            .get(&group_slot(gid))
            .copied()
            .unwrap_or_default()
    }

    fn entry_rate(&self, entry: MdsId) -> f64 {
        self.entries
            .get(&entry_slot(entry))
            .copied()
            .unwrap_or_default()
    }
}

/// One live group's row in a [`LoadReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct GroupLoad {
    /// The group.
    pub gid: GroupId,
    /// Member count under the report's snapshot.
    pub members: usize,
    /// Window-decayed walks entering through this group.
    pub lookups: f64,
    /// This group's fraction of the report's total decayed traffic
    /// (zero when the cluster is idle).
    pub share: f64,
    /// Fraction of this group's walks escalating to the L3 group
    /// multicast or beyond.
    pub l3_share: f64,
    /// Fraction escalating all the way to the L4 global multicast.
    pub l4_share: f64,
    /// Window-decayed false hits per walk.
    pub false_hit_rate: f64,
    /// L2/L3 mask consults answered from cache (`1.0` when the group
    /// saw no consults — an idle group's caches are trivially warm).
    pub mask_hit_rate: f64,
    /// Max-over-mean entry traffic across the group's members (`1.0`
    /// for perfectly even or idle groups). A member answering all of
    /// its group's walks in a group of 4 scores `4.0`.
    pub imbalance: f64,
}

/// A stable snapshot of cluster load, one row per live group. Produced
/// by [`GhbaCluster::load_report`](crate::GhbaCluster::load_report)
/// (and the HBA baseline's mirror), consumed by
/// [`GroupController`](crate::adapt::GroupController).
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Monotonic window index (one per report).
    pub window: u64,
    /// Membership epoch of the snapshot the shape was read from.
    pub epoch: MembershipEpoch,
    /// Raw walks recorded in the just-closed window (undecayed) — the
    /// controller's idle gate.
    pub fresh_lookups: u64,
    /// Total window-decayed traffic across all groups.
    pub total: f64,
    /// Per-group rows, ascending by group id.
    pub groups: Vec<GroupLoad>,
}

impl LoadReport {
    /// Total servers across all reported groups.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.groups.iter().map(|g| g.members).sum()
    }

    /// The row for `gid`, if live.
    #[must_use]
    pub fn group(&self, gid: GroupId) -> Option<&GroupLoad> {
        self.groups.iter().find(|g| g.gid == gid)
    }
}

/// Owner-side fold state for one cluster: closes the recorder's open
/// window and keeps the exponentially decayed rates. `GhbaCluster`
/// holds one behind a mutex touched only at report cadence; the HBA
/// baseline holds its own for the mirrored report.
#[derive(Debug)]
pub struct LoadFold {
    windows: LoadWindows,
}

impl Default for LoadFold {
    fn default() -> Self {
        LoadFold::new()
    }
}

impl LoadFold {
    /// Creates an empty fold (window 0, no history).
    #[must_use]
    pub fn new() -> Self {
        LoadFold {
            windows: LoadWindows::new(),
        }
    }

    /// Closes `stats`' open load window and folds it into the decayed
    /// rates, returning the raw walk count of the just-closed window.
    pub fn close_window(&mut self, stats: &crate::ConcurrentStats) -> u64 {
        let raw = stats.load_recorder().drain_window();
        let fresh = raw.total_lookups();
        self.windows.fold(&raw);
        fresh
    }

    /// Builds the stable [`LoadReport`] snapshot from the folded rates
    /// plus the live shape `(gid, members)` and the window's raw walk
    /// count (from [`close_window`](Self::close_window)).
    #[must_use]
    pub fn report(
        &self,
        epoch: MembershipEpoch,
        fresh_lookups: u64,
        shape: &[(GroupId, Vec<MdsId>)],
    ) -> LoadReport {
        build_report(&self.windows, epoch, fresh_lookups, shape)
    }
}

/// Builds a [`LoadReport`] from the decayed windows plus the live shape
/// `(gid, members)` — shared by the G-HBA cluster and the HBA mirror.
pub(crate) fn build_report(
    windows: &LoadWindows,
    epoch: MembershipEpoch,
    fresh_lookups: u64,
    shape: &[(GroupId, Vec<MdsId>)],
) -> LoadReport {
    let total: f64 = shape
        .iter()
        .map(|&(gid, _)| windows.group(gid).lookups)
        .sum();
    let groups = shape
        .iter()
        .map(|(gid, members)| {
            let decayed = windows.group(*gid);
            let rates: Vec<f64> = members.iter().map(|&m| windows.entry_rate(m)).collect();
            let member_total: f64 = rates.iter().sum();
            let imbalance = if members.is_empty() || member_total <= f64::EPSILON {
                1.0
            } else {
                let mean = member_total / members.len() as f64;
                rates.iter().copied().fold(0.0_f64, f64::max) / mean
            };
            let consults = decayed.mask_hits + decayed.mask_misses;
            GroupLoad {
                gid: *gid,
                members: members.len(),
                lookups: decayed.lookups,
                share: if total > f64::EPSILON {
                    decayed.lookups / total
                } else {
                    0.0
                },
                l3_share: if decayed.lookups > f64::EPSILON {
                    decayed.l3_walks / decayed.lookups
                } else {
                    0.0
                },
                l4_share: if decayed.lookups > f64::EPSILON {
                    decayed.l4_walks / decayed.lookups
                } else {
                    0.0
                },
                false_hit_rate: if decayed.lookups > f64::EPSILON {
                    decayed.false_hits / decayed.lookups
                } else {
                    0.0
                },
                mask_hit_rate: if consults > f64::EPSILON {
                    decayed.mask_hits / consults
                } else {
                    1.0
                },
                imbalance,
            }
        })
        .collect();
    LoadReport {
        window: windows.window,
        epoch,
        fresh_lookups,
        total,
        groups,
    }
}

/// Unified L2/L3 mask-cache accounting: **one documented accessor, two
/// scopes**. Before this type, the lifetime view
/// (`MaskCacheLifecycle`-backed, spanning every batch since
/// construction) and the reset-scoped view (the
/// [`ClusterStats`](crate::ClusterStats) fields, cleared by
/// `reset_stats`) diverged in naming and in *when* concurrent-path
/// consults became visible (only after a drain). Both scopes now come
/// from one accessor that also folds in consults still sitting in the
/// atomic recorders, so a `&self` reader — the load report, a
/// controller, a bench — sees every consult that has happened, drained
/// or not.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaskCacheStats {
    /// Consults answered from cache over the cluster's lifetime.
    pub lifetime_hits: u64,
    /// Consults that had to build their mask, lifetime.
    pub lifetime_misses: u64,
    /// Hits since the last `reset_stats` (the figure-binary scope).
    pub window_hits: u64,
    /// Misses since the last `reset_stats`.
    pub window_misses: u64,
}

impl MaskCacheStats {
    /// Assembles the unified view from the lifetime accumulator, the
    /// reset-scoped fold, and not-yet-folded atomic consults. Exposed
    /// so baselines mirroring the accessor assemble identically.
    #[must_use]
    pub fn assemble(
        lifetime: (u64, u64),
        window: (u64, u64),
        pending: (u64, u64),
    ) -> MaskCacheStats {
        MaskCacheStats {
            lifetime_hits: lifetime.0 + pending.0,
            lifetime_misses: lifetime.1 + pending.1,
            window_hits: window.0 + pending.0,
            window_misses: window.1 + pending.1,
        }
    }

    /// Lifetime hit rate (`1.0` when nothing was consulted).
    #[must_use]
    pub fn lifetime_rate(&self) -> f64 {
        rate(self.lifetime_hits, self.lifetime_misses)
    }

    /// Reset-scoped hit rate (`1.0` when nothing was consulted).
    #[must_use]
    pub fn window_rate(&self) -> f64 {
        rate(self.window_hits, self.window_misses)
    }

    /// Lifetime `(hits, misses)` — the shape the pre-unification
    /// accessor returned.
    #[must_use]
    pub fn lifetime(&self) -> (u64, u64) {
        (self.lifetime_hits, self.lifetime_misses)
    }
}

fn rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        1.0
    } else {
        hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_attributes_walks_and_masks_per_group() {
        let recorder = LoadRecorder::new();
        recorder.record_walk(GroupId(0), MdsId(0), QueryLevel::L2Segment, 0);
        recorder.record_walk(GroupId(0), MdsId(1), QueryLevel::L3Group, 1);
        recorder.record_walk(GroupId(2), MdsId(5), QueryLevel::L4Global, 2);
        recorder.record_mask(GroupId(0), true);
        recorder.record_mask(GroupId(0), false);
        let raw = recorder.drain_window();
        assert_eq!(raw.total_lookups(), 3);
        let g0 = raw.groups.iter().find(|&&(s, _)| s == 0).expect("g0").1;
        assert_eq!(g0.lookups, 2);
        assert_eq!(g0.l3_walks, 1);
        assert_eq!(g0.l4_walks, 0);
        assert_eq!(g0.false_hits, 1);
        assert_eq!((g0.mask_hits, g0.mask_misses), (1, 1));
        let g2 = raw.groups.iter().find(|&&(s, _)| s == 2).expect("g2").1;
        assert_eq!((g2.lookups, g2.l3_walks, g2.l4_walks), (1, 1, 1));
        assert_eq!(g2.false_hits, 2);
        // Drained: the next window is empty.
        assert!(recorder.drain_window().groups.is_empty());
    }

    #[test]
    fn overflow_ids_share_the_final_slot() {
        let recorder = LoadRecorder::new();
        recorder.record_walk(GroupId(u16::MAX), MdsId(u16::MAX), QueryLevel::L2Segment, 0);
        recorder.record_walk(
            GroupId((LOAD_GROUP_SLOTS - 1) as u16),
            MdsId(9),
            QueryLevel::L2Segment,
            0,
        );
        let raw = recorder.drain_window();
        assert_eq!(raw.groups.len(), 1);
        assert_eq!(raw.groups[0].0, LOAD_GROUP_SLOTS - 1);
        assert_eq!(raw.groups[0].1.lookups, 2);
    }

    #[test]
    fn windows_decay_and_reports_rank_hot_groups() {
        let recorder = LoadRecorder::new();
        let mut windows = LoadWindows::new();
        let shape = vec![
            (GroupId(0), vec![MdsId(0), MdsId(1)]),
            (GroupId(1), vec![MdsId(2), MdsId(3)]),
        ];
        // Window 1: group 0 hot, all traffic through mds0.
        for _ in 0..90 {
            recorder.record_walk(GroupId(0), MdsId(0), QueryLevel::L3Group, 0);
        }
        for _ in 0..10 {
            recorder.record_walk(GroupId(1), MdsId(2), QueryLevel::L2Segment, 0);
        }
        let raw = recorder.drain_window();
        windows.fold(&raw);
        let report = build_report(&windows, MembershipEpoch(3), raw.total_lookups(), &shape);
        assert_eq!(report.window, 1);
        assert_eq!(report.fresh_lookups, 100);
        assert_eq!(report.servers(), 4);
        let g0 = report.group(GroupId(0)).expect("g0");
        assert!((g0.share - 0.9).abs() < 1e-9);
        assert!((g0.l3_share - 1.0).abs() < 1e-9);
        assert!((g0.imbalance - 2.0).abs() < 1e-9, "one of two members hot");
        // Window 2: silence. Rates halve, shares persist.
        windows.fold(&recorder.drain_window());
        let report = build_report(&windows, MembershipEpoch(3), 0, &shape);
        let g0 = report.group(GroupId(0)).expect("g0");
        assert!((g0.lookups - 45.0).abs() < 1e-9, "alpha 0.5 halves");
        assert!((g0.share - 0.9).abs() < 1e-9);
        assert_eq!(report.fresh_lookups, 0);
    }

    #[test]
    fn idle_groups_report_neutral_rates() {
        let windows = LoadWindows::new();
        let shape = vec![(GroupId(7), vec![MdsId(0)])];
        let report = build_report(&windows, MembershipEpoch(0), 0, &shape);
        let g = report.group(GroupId(7)).expect("g7");
        assert_eq!(g.share, 0.0);
        assert_eq!(g.mask_hit_rate, 1.0);
        assert_eq!(g.imbalance, 1.0);
    }

    #[test]
    fn mask_cache_stats_unify_scopes() {
        let stats = MaskCacheStats::assemble((100, 10), (40, 5), (6, 4));
        assert_eq!(stats.lifetime(), (106, 14));
        assert_eq!((stats.window_hits, stats.window_misses), (46, 9));
        assert!(stats.lifetime_rate() > stats.window_rate());
        assert_eq!(MaskCacheStats::default().lifetime_rate(), 1.0);
    }
}
