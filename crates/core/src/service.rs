//! The scheme-agnostic metadata service interface.
//!
//! The paper compares G-HBA against HBA, pure Bloom filter arrays, and
//! hash-based placement. [`MetadataService`] is the seam those schemes
//! share, so benchmarks and trace replay treat every scheme uniformly.
//!
//! The seam is **vectored**: the one required operation is
//! [`execute`](MetadataService::execute), which takes a typed, pre-hashed
//! [`OpBatch`] (mixed creates/lookups/removes/renames under an explicit
//! [`EntryPolicy`](crate::EntryPolicy)) and returns per-op
//! [`OpOutcome`]s. The classic string calls (`create`, `lookup`,
//! `remove`, …) are provided shims expressed as 1-op batches — same
//! semantics, none of the batching.

use std::sync::Arc;

use crate::cluster::GhbaCluster;
use crate::ids::MdsId;
use crate::op::{
    execute_vectored, execute_vectored_concurrent, ConcurrentScheme, EntryPolicy, OpBatch,
    OpOutcome, PathKey, VectoredScheme,
};
use crate::query::QueryOutcome;
use crate::snapshot::RouteSnapshot;

/// A distributed metadata lookup scheme under test.
///
/// Implemented by [`GhbaCluster`] here and by the HBA / BFA baselines in
/// `ghba-baselines`. Only [`execute`](MetadataService::execute) and the
/// three descriptive methods are required; every string-call entry point
/// is a 1-op-batch shim.
pub trait MetadataService {
    /// Scheme name for reports ("G-HBA", "HBA", …).
    fn scheme_name(&self) -> &'static str;

    /// Number of metadata servers.
    fn server_count(&self) -> usize;

    /// Executes a typed op batch, returning one [`OpOutcome`] per op in
    /// admission order.
    ///
    /// Native implementations fuse consecutive lookups into one batched
    /// L1→L4 slab pass, apply writes in stream order with gated grouped
    /// delta publishes, and migrate renames end-to-end; outcomes are
    /// bit-identical to executing every op as its own 1-op batch (see
    /// [`crate::execute_vectored`]).
    fn execute(&mut self, batch: &OpBatch) -> Vec<OpOutcome>;

    /// Executes a typed op batch through a **shared reference**: the
    /// pin-once concurrent pipeline. The scheme pins one probe snapshot
    /// at batch admission, fans fused lookup runs across its exec pool,
    /// records writes into sharded overlay logs, and folds the batch's
    /// create bits into the published probe state as a single atomic
    /// snapshot swap at commit — so any number of threads may call this
    /// on the same service while reconfiguration publishes successor
    /// snapshots. Authoritative per-server state is reconciled at the
    /// next `&mut` entry point (any [`execute`](MetadataService::execute)
    /// call, or `GhbaCluster::drain_concurrent` explicitly).
    ///
    /// Single-threaded, the outcome stream is bit-identical to
    /// [`execute`](MetadataService::execute) on schemes without an L1
    /// cache fill (`lru_capacity == 0`); under concurrency outcomes stay
    /// semantically correct (every resolved home is the true home at
    /// pin time modulo this era's pending writes).
    ///
    /// The default panics: schemes opt in by overriding. G-HBA, HBA, and
    /// BFA all do.
    fn execute_concurrent(&self, batch: &OpBatch) -> Vec<OpOutcome> {
        let _ = batch;
        panic!(
            "{} does not implement concurrent batch execution",
            self.scheme_name()
        );
    }

    /// Average bytes of Bloom filter structures per MDS (own filter, LRU
    /// array, held replicas) — the Table 5 quantity.
    fn filter_memory_per_mds(&self) -> usize;

    /// Sets the [`EntryPolicy`] the string-call shims execute under.
    ///
    /// The shims each build a **fresh** 1-op batch, so stateful policies
    /// cannot live on the batch: `RoundRobin { start }` state must
    /// persist on the service and advance across calls (otherwise every
    /// shim call would re-enter at `start` and the "round robin" would
    /// pin one server). Schemes store the policy and advance any cursor
    /// in [`next_shim_policy`](MetadataService::next_shim_policy); the
    /// default implementation ignores the request and keeps the
    /// historical `Random` behaviour.
    fn set_shim_policy(&mut self, policy: EntryPolicy) {
        let _ = policy;
    }

    /// Returns the policy for the next shim batch of `ops` ops,
    /// advancing any service-side round-robin cursor past them. The
    /// default is [`EntryPolicy::Random`] (the paper's client model).
    fn next_shim_policy(&mut self, ops: usize) -> EntryPolicy {
        let _ = ops;
        EntryPolicy::Random
    }

    /// Creates metadata for `path` at a random home, returning it.
    /// Back-compat shim: a 1-op [`OpBatch`].
    fn create(&mut self, path: &str) -> MdsId {
        let policy = self.next_shim_policy(1);
        let mut batch = OpBatch::new().with_entry(policy);
        batch.push_create(path);
        match self.execute(&batch).pop() {
            Some(OpOutcome::Created { home }) => home,
            other => unreachable!("create op yields Created, got {other:?}"),
        }
    }

    /// Looks up the home MDS of `path` from a random entry server.
    /// Back-compat shim: a 1-op [`OpBatch`].
    fn lookup(&mut self, path: &str) -> QueryOutcome {
        let policy = self.next_shim_policy(1);
        let mut batch = OpBatch::new().with_entry(policy);
        batch.push_lookup(path);
        match self.execute(&batch).pop() {
            Some(OpOutcome::Resolved(outcome)) => outcome,
            other => unreachable!("lookup op yields Resolved, got {other:?}"),
        }
    }

    /// Resolves a batch of concurrent lookups, each from a random entry
    /// server, returning one outcome per path in order. Shim over one
    /// all-lookup [`OpBatch`].
    fn lookup_batch(&mut self, paths: &[&str]) -> Vec<QueryOutcome> {
        let policy = self.next_shim_policy(paths.len());
        let mut batch = OpBatch::new().with_entry(policy);
        for path in paths {
            batch.push_lookup(*path);
        }
        self.execute(&batch)
            .into_iter()
            .map(|outcome| match outcome {
                OpOutcome::Resolved(outcome) => outcome,
                other => unreachable!("lookup op yields Resolved, got {other:?}"),
            })
            .collect()
    }

    /// Removes `path`'s metadata, returning its former home.
    /// Back-compat shim: a 1-op [`OpBatch`].
    fn remove(&mut self, path: &str) -> Option<MdsId> {
        let policy = self.next_shim_policy(1);
        let mut batch = OpBatch::new().with_entry(policy);
        batch.push_remove(path);
        match self.execute(&batch).pop() {
            Some(OpOutcome::Removed { home }) => home,
            other => unreachable!("remove op yields Removed, got {other:?}"),
        }
    }

    /// Renames `from` to `to` (metadata migration), returning the old and
    /// new homes. Shim: a 1-op [`OpBatch`].
    fn rename(&mut self, from: &str, to: &str) -> (Option<MdsId>, Option<MdsId>) {
        let policy = self.next_shim_policy(1);
        let mut batch = OpBatch::new().with_entry(policy);
        batch.push_rename(from, to);
        match self.execute(&batch).pop() {
            Some(OpOutcome::Renamed { old_home, new_home }) => (old_home, new_home),
            other => unreachable!("rename op yields Renamed, got {other:?}"),
        }
    }
}

impl VectoredScheme for GhbaCluster {
    fn resolve_entry(&mut self, policy: EntryPolicy, op_index: usize) -> MdsId {
        self.entry_for(policy, op_index)
    }

    fn repeat_sensitive(&self) -> bool {
        // No LRU level ⇒ no per-entry fill a repeat could observe.
        self.config().lru_capacity > 0
    }

    fn batch_begin(&mut self) {
        GhbaCluster::batch_begin(self);
    }

    fn batch_end(&mut self) {
        GhbaCluster::batch_end(self);
    }

    fn lookup_fused(&mut self, queries: &[(MdsId, &PathKey)]) -> Vec<QueryOutcome> {
        let prehashed: Vec<(MdsId, &str, ghba_bloom::Fingerprint)> = queries
            .iter()
            .map(|&(entry, key)| (entry, key.path(), *key.fingerprint()))
            .collect();
        self.lookup_batch_prehashed(&prehashed)
    }

    fn apply_create(&mut self, key: &PathKey, home: MdsId) {
        self.create_file_keyed(key, home);
    }

    fn apply_remove(&mut self, key: &PathKey) -> Option<MdsId> {
        self.remove_file_keyed(key)
    }
}

impl ConcurrentScheme for GhbaCluster {
    /// An owned pin on the routing snapshot: lock-free to take, valid
    /// across successor publishes, never blocks a publisher while held.
    type Pinned = Arc<RouteSnapshot>;

    fn pin_batch(&self) -> Self::Pinned {
        self.pin_route_snapshot()
    }

    fn resolve_entry_concurrent(&self, policy: EntryPolicy, op_index: usize) -> MdsId {
        self.entry_for(policy, op_index)
    }

    // `repeat_sensitive_concurrent` keeps the default `false`: the
    // pinned walk never fills the L1 cache, so a repeated path cannot
    // observe an earlier op of the same fused run.

    fn lookup_fused_pinned(
        &self,
        pinned: &Self::Pinned,
        queries: &[(MdsId, &PathKey)],
    ) -> Vec<QueryOutcome> {
        GhbaCluster::lookup_fused_pinned(self, pinned, queries)
    }

    fn apply_create_concurrent(&self, key: &PathKey, home: MdsId) {
        self.apply_create_shared(key, home);
    }

    fn apply_remove_concurrent(&self, key: &PathKey) -> Option<MdsId> {
        self.apply_remove_shared(key)
    }

    fn commit_batch(&self, _pinned: &Self::Pinned) {
        self.commit_concurrent();
    }
}

impl MetadataService for GhbaCluster {
    fn scheme_name(&self) -> &'static str {
        "G-HBA"
    }

    fn server_count(&self) -> usize {
        self.server_count()
    }

    fn execute(&mut self, batch: &OpBatch) -> Vec<OpOutcome> {
        execute_vectored(self, batch)
    }

    fn execute_concurrent(&self, batch: &OpBatch) -> Vec<OpOutcome> {
        execute_vectored_concurrent(self, batch)
    }

    fn filter_memory_per_mds(&self) -> usize {
        let n = self.server_count();
        if n == 0 {
            return 0;
        }
        let total: usize = self
            .server_ids()
            .into_iter()
            .map(|id| self.filter_memory_bytes(id))
            .sum();
        total / n
    }

    fn set_shim_policy(&mut self, policy: EntryPolicy) {
        self.shim_entry = policy;
    }

    fn next_shim_policy(&mut self, ops: usize) -> EntryPolicy {
        self.shim_entry.advance(ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GhbaConfig, MaskCacheMode};

    fn config() -> GhbaConfig {
        GhbaConfig::default()
            .with_filter_capacity(1_000)
            .with_max_group_size(4)
            .with_seed(5)
    }

    /// N string-shim calls under a service-side round-robin policy visit
    /// N distinct entry servers in id order: the cursor persists on the
    /// service, not on the (fresh-per-call) 1-op batch.
    #[test]
    fn round_robin_shim_state_persists_across_calls() {
        let n = 10;
        let mut cluster = GhbaCluster::with_servers(config(), n);
        cluster.create("/rr/file");
        cluster.set_shim_policy(EntryPolicy::RoundRobin { start: 0 });
        let ids = cluster.server_ids();
        // `GhbaCluster::lookup` (the inherent walk) shadows the trait
        // shim, so name the shim explicitly — it is the 1-op-batch path
        // under audit here.
        let entries: Vec<MdsId> = (0..n)
            .map(|_| MetadataService::lookup(&mut cluster, "/rr/file").entry)
            .collect();
        assert_eq!(entries, ids, "shim calls must advance the cursor");
        // The cursor wraps: the next call re-enters at the first server.
        assert_eq!(
            MetadataService::lookup(&mut cluster, "/rr/file").entry,
            ids[0]
        );
    }

    /// `lookup_batch` advances the cursor by its whole length, so a
    /// following 1-op shim continues where the batch left off.
    #[test]
    fn round_robin_cursor_advances_past_batches() {
        let mut cluster = GhbaCluster::with_servers(config(), 8);
        cluster.create("/rr/batched");
        cluster.set_shim_policy(EntryPolicy::RoundRobin { start: 0 });
        let ids = cluster.server_ids();
        let outcomes = MetadataService::lookup_batch(
            &mut cluster,
            &["/rr/batched", "/rr/batched", "/rr/batched"],
        );
        let entries: Vec<MdsId> = outcomes.iter().map(|o| o.entry).collect();
        assert_eq!(entries, ids[..3]);
        assert_eq!(
            MetadataService::lookup(&mut cluster, "/rr/batched").entry,
            ids[3]
        );
    }

    /// A batch that panics mid-pipeline (pinned to an unknown server)
    /// must not leak an armed per-batch cache into the next call.
    #[test]
    fn poisoned_ghba_batch_does_not_leak_armed_cache() {
        let mut cluster =
            GhbaCluster::with_servers(config().with_mask_cache(MaskCacheMode::PerBatch), 8);
        cluster.create("/p/keep");
        let mut batch = OpBatch::new().with_entry(EntryPolicy::Pinned(MdsId(99)));
        batch.push_lookup("/p/keep");
        let poisoned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = cluster.execute(&batch);
        }));
        assert!(poisoned.is_err(), "pinned unknown server must panic");
        assert!(
            !cluster.mask_cache_armed(),
            "stale armed cache leaked past the poisoned batch"
        );
        // The next (valid) call runs cleanly on a cold cache.
        assert!(cluster.lookup("/p/keep").home.is_some());
    }
}
