//! The scheme-agnostic metadata service interface.
//!
//! The paper compares G-HBA against HBA, pure Bloom filter arrays, and
//! hash-based placement. [`MetadataService`] is the seam those schemes
//! share, so benchmarks and trace replay treat every scheme uniformly.
//!
//! The seam is **vectored**: the one required operation is
//! [`execute`](MetadataService::execute), which takes a typed, pre-hashed
//! [`OpBatch`] (mixed creates/lookups/removes/renames under an explicit
//! [`EntryPolicy`](crate::EntryPolicy)) and returns per-op
//! [`OpOutcome`]s. The classic string calls (`create`, `lookup`,
//! `remove`, …) are provided shims expressed as 1-op batches — same
//! semantics, none of the batching.

use crate::cluster::GhbaCluster;
use crate::ids::MdsId;
use crate::op::{execute_vectored, EntryPolicy, OpBatch, OpOutcome, PathKey, VectoredScheme};
use crate::query::QueryOutcome;

/// A distributed metadata lookup scheme under test.
///
/// Implemented by [`GhbaCluster`] here and by the HBA / BFA baselines in
/// `ghba-baselines`. Only [`execute`](MetadataService::execute) and the
/// three descriptive methods are required; every string-call entry point
/// is a 1-op-batch shim.
pub trait MetadataService {
    /// Scheme name for reports ("G-HBA", "HBA", …).
    fn scheme_name(&self) -> &'static str;

    /// Number of metadata servers.
    fn server_count(&self) -> usize;

    /// Executes a typed op batch, returning one [`OpOutcome`] per op in
    /// admission order.
    ///
    /// Native implementations fuse consecutive lookups into one batched
    /// L1→L4 slab pass, apply writes in stream order with gated grouped
    /// delta publishes, and migrate renames end-to-end; outcomes are
    /// bit-identical to executing every op as its own 1-op batch (see
    /// [`crate::execute_vectored`]).
    fn execute(&mut self, batch: &OpBatch) -> Vec<OpOutcome>;

    /// Average bytes of Bloom filter structures per MDS (own filter, LRU
    /// array, held replicas) — the Table 5 quantity.
    fn filter_memory_per_mds(&self) -> usize;

    /// Creates metadata for `path` at a random home, returning it.
    /// Back-compat shim: a 1-op [`OpBatch`].
    fn create(&mut self, path: &str) -> MdsId {
        let mut batch = OpBatch::new();
        batch.push_create(path);
        match self.execute(&batch).pop() {
            Some(OpOutcome::Created { home }) => home,
            other => unreachable!("create op yields Created, got {other:?}"),
        }
    }

    /// Looks up the home MDS of `path` from a random entry server.
    /// Back-compat shim: a 1-op [`OpBatch`].
    fn lookup(&mut self, path: &str) -> QueryOutcome {
        let mut batch = OpBatch::new();
        batch.push_lookup(path);
        match self.execute(&batch).pop() {
            Some(OpOutcome::Resolved(outcome)) => outcome,
            other => unreachable!("lookup op yields Resolved, got {other:?}"),
        }
    }

    /// Resolves a batch of concurrent lookups, each from a random entry
    /// server, returning one outcome per path in order. Shim over one
    /// all-lookup [`OpBatch`].
    fn lookup_batch(&mut self, paths: &[&str]) -> Vec<QueryOutcome> {
        let mut batch = OpBatch::new();
        for path in paths {
            batch.push_lookup(*path);
        }
        self.execute(&batch)
            .into_iter()
            .map(|outcome| match outcome {
                OpOutcome::Resolved(outcome) => outcome,
                other => unreachable!("lookup op yields Resolved, got {other:?}"),
            })
            .collect()
    }

    /// Removes `path`'s metadata, returning its former home.
    /// Back-compat shim: a 1-op [`OpBatch`].
    fn remove(&mut self, path: &str) -> Option<MdsId> {
        let mut batch = OpBatch::new();
        batch.push_remove(path);
        match self.execute(&batch).pop() {
            Some(OpOutcome::Removed { home }) => home,
            other => unreachable!("remove op yields Removed, got {other:?}"),
        }
    }

    /// Renames `from` to `to` (metadata migration), returning the old and
    /// new homes. Shim: a 1-op [`OpBatch`].
    fn rename(&mut self, from: &str, to: &str) -> (Option<MdsId>, Option<MdsId>) {
        let mut batch = OpBatch::new();
        batch.push_rename(from, to);
        match self.execute(&batch).pop() {
            Some(OpOutcome::Renamed { old_home, new_home }) => (old_home, new_home),
            other => unreachable!("rename op yields Renamed, got {other:?}"),
        }
    }
}

impl VectoredScheme for GhbaCluster {
    fn resolve_entry(&mut self, policy: EntryPolicy, op_index: usize) -> MdsId {
        self.entry_for(policy, op_index)
    }

    fn repeat_sensitive(&self) -> bool {
        // No LRU level ⇒ no per-entry fill a repeat could observe.
        self.config().lru_capacity > 0
    }

    fn batch_begin(&mut self) {
        GhbaCluster::batch_begin(self);
    }

    fn batch_end(&mut self) {
        GhbaCluster::batch_end(self);
    }

    fn lookup_fused(&mut self, queries: &[(MdsId, &PathKey)]) -> Vec<QueryOutcome> {
        let prehashed: Vec<(MdsId, &str, ghba_bloom::Fingerprint)> = queries
            .iter()
            .map(|&(entry, key)| (entry, key.path(), *key.fingerprint()))
            .collect();
        self.lookup_batch_prehashed(&prehashed)
    }

    fn apply_create(&mut self, key: &PathKey, home: MdsId) {
        self.create_file_keyed(key, home);
    }

    fn apply_remove(&mut self, key: &PathKey) -> Option<MdsId> {
        self.remove_file_keyed(key)
    }
}

impl MetadataService for GhbaCluster {
    fn scheme_name(&self) -> &'static str {
        "G-HBA"
    }

    fn server_count(&self) -> usize {
        self.server_count()
    }

    fn execute(&mut self, batch: &OpBatch) -> Vec<OpOutcome> {
        execute_vectored(self, batch)
    }

    fn filter_memory_per_mds(&self) -> usize {
        let n = self.server_count();
        if n == 0 {
            return 0;
        }
        let total: usize = self
            .server_ids()
            .into_iter()
            .map(|id| self.filter_memory_bytes(id))
            .sum();
        total / n
    }
}
