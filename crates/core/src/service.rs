//! The scheme-agnostic metadata service interface.
//!
//! The paper compares G-HBA against HBA, pure Bloom filter arrays, and
//! hash-based placement. [`MetadataService`] is the seam those schemes
//! share, so benchmarks and trace replay treat every scheme uniformly.

use crate::cluster::GhbaCluster;
use crate::ids::MdsId;
use crate::query::QueryOutcome;

/// A distributed metadata lookup scheme under test.
///
/// Implemented by [`GhbaCluster`] here and by the HBA / BFA baselines in
/// `ghba-baselines`.
pub trait MetadataService {
    /// Scheme name for reports ("G-HBA", "HBA", …).
    fn scheme_name(&self) -> &'static str;

    /// Number of metadata servers.
    fn server_count(&self) -> usize;

    /// Creates metadata for `path`, returning its home MDS.
    fn create(&mut self, path: &str) -> MdsId;

    /// Looks up the home MDS of `path` from a random entry server.
    fn lookup(&mut self, path: &str) -> QueryOutcome;

    /// Resolves a batch of concurrent lookups, each from a random entry
    /// server, returning one outcome per path in order.
    ///
    /// Schemes with a batched probe path (G-HBA's and HBA's bit-sliced
    /// published slab) override this to resolve the whole batch in one
    /// slab pass per level; the default falls back to sequential lookups.
    fn lookup_batch(&mut self, paths: &[&str]) -> Vec<QueryOutcome> {
        paths.iter().map(|path| self.lookup(path)).collect()
    }

    /// Removes `path`'s metadata, returning its former home.
    fn remove(&mut self, path: &str) -> Option<MdsId>;

    /// Average bytes of Bloom filter structures per MDS (own filter, LRU
    /// array, held replicas) — the Table 5 quantity.
    fn filter_memory_per_mds(&self) -> usize;
}

impl MetadataService for GhbaCluster {
    fn scheme_name(&self) -> &'static str {
        "G-HBA"
    }

    fn server_count(&self) -> usize {
        self.server_count()
    }

    fn create(&mut self, path: &str) -> MdsId {
        self.create_file(path)
    }

    fn lookup(&mut self, path: &str) -> QueryOutcome {
        GhbaCluster::lookup(self, path)
    }

    fn lookup_batch(&mut self, paths: &[&str]) -> Vec<QueryOutcome> {
        GhbaCluster::lookup_batch(self, paths)
    }

    fn remove(&mut self, path: &str) -> Option<MdsId> {
        self.remove_file(path)
    }

    fn filter_memory_per_mds(&self) -> usize {
        let n = self.server_count();
        if n == 0 {
            return 0;
        }
        let total: usize = self
            .server_ids()
            .into_iter()
            .map(|id| self.filter_memory_bytes(id))
            .sum();
        total / n
    }
}
