//! The online controller: closes the loop from [`LoadReport`]s to
//! live split/merge/rebalance through a [`ReconfigHandle`].
//!
//! The paper derives an interior-optimal group size M* offline and
//! assumes an administrator applies it. [`GroupController`] uses the
//! same model *online*: each tick it consumes one window-decayed
//! [`LoadReport`], compares every group's observed traffic share
//! against its fair share, and emits typed [`AdaptAction`]s. Actuation
//! goes through the existing [`ReconfigHandle`], so every applied
//! action is one pointer-swap publish: in-flight walks finish on their
//! pinned snapshot and untouched groups keep their per-group epochs —
//! and therefore their warm mask caches — through every decision.
//!
//! # The hysteresis / cooldown contract
//!
//! The controller is built so that **measurement noise and its own
//! actions can never drive an oscillation**:
//!
//! 1. **Shape drift alone never triggers an action.** Every trigger
//!    compares a group's *traffic* (share of decayed lookups, or
//!    member imbalance) against thresholds; the M* model only *gates*
//!    candidate actions (which groups may split, how large a merge may
//!    grow). A cluster whose group sizes differ from M* but whose load
//!    is uniform gets zero actions, and a report with fewer than
//!    [`min_window_lookups`](ControllerConfig::min_window_lookups)
//!    fresh walks is treated as idle and planned as empty.
//! 2. **The hot and cold thresholds are separated by construction.**
//!    A split requires share ≥
//!    [`hot_share`](ControllerConfig::hot_share) × fair (default
//!    1.6×); a merge requires *both* partners at share ≤
//!    [`cold_share`](ControllerConfig::cold_share) × fair (default
//!    0.5×). A freshly split group's halves inherit roughly half its
//!    share each, landing between the thresholds, so a split is never
//!    immediately undone — and a merged pair of cold groups sums to at
//!    most 2 × cold × fair ≤ fair, so a merge never creates a hot
//!    group.
//! 3. **Cooldowns.** Every group named by a planned action (including
//!    the id a split mints, registered at actuation) is barred from
//!    further actions for [`cooldown_ticks`](ControllerConfig::cooldown_ticks)
//!    ticks, giving the decayed windows time to re-converge on the new
//!    shape before the controller may touch it again.
//! 4. **A per-tick budget.** A plan never exceeds
//!    [`max_actions_per_tick`](ControllerConfig::max_actions_per_tick)
//!    actions regardless of the report, so churn cannot outrun the
//!    epoch machinery — each tick publishes at most a handful of
//!    snapshots, and the proptest suite holds this bound over
//!    arbitrary report sequences.
//!
//! Planning is pure and deterministic: the same controller state and
//! the same report always yield the same action list (groups are
//! scanned in ascending id order, candidates ranked by severity with
//! id tie-breaks, no randomness, no clocks). The reconfig-interleaving
//! property suite leans on this to drive lock-step cluster variants
//! through identical controller-chosen churn.

use std::collections::HashMap;

use crate::ids::GroupId;
use crate::load::LoadReport;
use crate::snapshot::ReconfigHandle;

/// One typed reconfiguration decision, actuated through
/// [`ReconfigHandle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptAction {
    /// Split this hot group per the paper's §3.2 rule.
    Split(GroupId),
    /// Merge the second (cold) group into the first.
    Merge(GroupId, GroupId),
    /// Re-spread replica load inside this skewed group.
    Rebalance(GroupId),
}

impl AdaptAction {
    /// Groups this action names (the merge names two).
    #[must_use]
    pub fn touches(&self) -> (GroupId, Option<GroupId>) {
        match *self {
            AdaptAction::Split(g) | AdaptAction::Rebalance(g) => (g, None),
            AdaptAction::Merge(a, b) => (a, Some(b)),
        }
    }

    /// Applies this action through `handle`, returning whether the
    /// handle accepted it (the shape may have changed since planning —
    /// a refusal is benign). Deterministic: the handle's operations
    /// use no randomness, so applying one action list to lock-step
    /// clusters keeps their shapes identical.
    pub fn apply(&self, handle: &ReconfigHandle) -> bool {
        match *self {
            AdaptAction::Split(g) => handle.split_group(g).is_some(),
            AdaptAction::Merge(a, b) => handle.merge_groups(a, b),
            AdaptAction::Rebalance(g) => handle.rebalance_group(g).is_some(),
        }
    }
}

/// How the controller derives its target group size M*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TargetM {
    /// Pin M* to a fixed value (the "static M" baseline).
    Fixed(usize),
    /// The paper's analytic optimum, tracked online as `round(√N)` of
    /// the *observed* server count — within ±1 of
    /// `ghba_analysis::AnalyticModel::optimal_m` across the paper's
    /// fig6/fig7 range (M* ≈ 6 at N=30, 9 at N=100, 14 at N=200); a
    /// cross-check test in `ghba-core` holds the two together.
    PaperModel,
}

impl TargetM {
    /// The target group size for a cluster of `servers`, clamped to
    /// `[2, max_group_size]`.
    #[must_use]
    pub fn group_size(&self, servers: usize, max_group_size: usize) -> usize {
        let raw = match *self {
            TargetM::Fixed(m) => m,
            TargetM::PaperModel => (servers as f64).sqrt().round() as usize,
        };
        raw.clamp(2, max_group_size.max(2))
    }
}

/// Tuning knobs for [`GroupController`]; the defaults encode the
/// hysteresis/cooldown contract in the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerConfig {
    /// How M* is derived each tick.
    pub target: TargetM,
    /// Split trigger: share ≥ `hot_share` × fair share.
    pub hot_share: f64,
    /// Merge trigger: both partners at share ≤ `cold_share` × fair.
    pub cold_share: f64,
    /// Rebalance trigger: member imbalance ≥ this (max/mean ≥ 1).
    pub imbalance_limit: f64,
    /// Imbalance is a max/mean *estimator*: at low per-member rates it
    /// is dominated by Poisson noise (relative spread ~1/√rate), and a
    /// controller that rebalances on noise churns uniform traffic
    /// forever. A group is considered for rebalance only once its
    /// window-decayed lookups reach `min_rebalance_rate × members`.
    pub min_rebalance_rate: f64,
    /// Merged groups may not exceed `ceil(merge_headroom × M*)`
    /// members (and never the handle's hard maximum).
    pub merge_headroom: f64,
    /// Ticks a group stays untouchable after an action names it.
    pub cooldown_ticks: u64,
    /// Hard per-tick cap on emitted actions.
    pub max_actions_per_tick: usize,
    /// Reports with fewer fresh walks than this are planned as empty.
    pub min_window_lookups: u64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            target: TargetM::PaperModel,
            hot_share: 1.6,
            cold_share: 0.5,
            imbalance_limit: 1.5,
            min_rebalance_rate: 32.0,
            merge_headroom: 1.25,
            cooldown_ticks: 2,
            max_actions_per_tick: 2,
            min_window_lookups: 64,
        }
    }
}

impl ControllerConfig {
    /// Replaces the M* source.
    #[must_use]
    pub fn with_target(mut self, target: TargetM) -> Self {
        self.target = target;
        self
    }

    /// Replaces the per-tick action budget (min 1).
    #[must_use]
    pub fn with_budget(mut self, max_actions_per_tick: usize) -> Self {
        self.max_actions_per_tick = max_actions_per_tick.max(1);
        self
    }

    /// Replaces the cooldown length.
    #[must_use]
    pub fn with_cooldown(mut self, ticks: u64) -> Self {
        self.cooldown_ticks = ticks;
        self
    }

    /// Replaces the idle gate.
    #[must_use]
    pub fn with_min_window_lookups(mut self, lookups: u64) -> Self {
        self.min_window_lookups = lookups;
        self
    }
}

/// The online controller. Feed it successive [`LoadReport`]s via
/// [`plan`](GroupController::plan) (pure) or
/// [`actuate`](GroupController::actuate) (plan + apply through a
/// [`ReconfigHandle`]); see the module docs for the stability
/// contract.
#[derive(Debug)]
pub struct GroupController {
    cfg: ControllerConfig,
    tick: u64,
    /// gid → first tick at which the group may be acted on again.
    cooldowns: HashMap<GroupId, u64>,
    actions_total: u64,
}

impl Default for GroupController {
    fn default() -> Self {
        GroupController::new(ControllerConfig::default())
    }
}

impl GroupController {
    /// Creates a controller with the given tuning.
    #[must_use]
    pub fn new(cfg: ControllerConfig) -> Self {
        GroupController {
            cfg,
            tick: 0,
            cooldowns: HashMap::new(),
            actions_total: 0,
        }
    }

    /// The tuning this controller runs with.
    #[must_use]
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    /// Ticks consumed so far.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// Actions planned over the controller's lifetime.
    #[must_use]
    pub fn actions_total(&self) -> u64 {
        self.actions_total
    }

    fn on_cooldown(&self, gid: GroupId) -> bool {
        self.cooldowns
            .get(&gid)
            .is_some_and(|&until| self.tick < until)
    }

    fn start_cooldown(&mut self, gid: GroupId) {
        self.cooldowns
            .insert(gid, self.tick + self.cfg.cooldown_ticks);
    }

    /// Consumes one report and returns this tick's actions (possibly
    /// empty, never more than the budget). Pure decision logic — no
    /// actuation — but it *does* advance the tick, age cooldowns, and
    /// start cooldowns for every group the plan names, so callers
    /// applying the plan themselves (the lock-step property suite, the
    /// bench's shadow clusters) get the same follow-up behavior as
    /// [`actuate`](Self::actuate).
    pub fn plan(&mut self, report: &LoadReport, max_group_size: usize) -> Vec<AdaptAction> {
        self.tick += 1;
        self.cooldowns.retain(|_, &mut until| self.tick < until);
        if report.fresh_lookups < self.cfg.min_window_lookups || report.groups.is_empty() {
            return Vec::new();
        }
        let servers = report.servers();
        if servers == 0 || report.total <= f64::EPSILON {
            return Vec::new();
        }
        let target = self.cfg.target.group_size(servers, max_group_size);
        let merge_cap =
            ((self.cfg.merge_headroom * target as f64).ceil() as usize).min(max_group_size);
        let split_floor = max_group_size / 2 + 1;

        let mut plan: Vec<AdaptAction> = Vec::new();
        let budget = self.cfg.max_actions_per_tick.max(1);

        // Hot groups, hottest first (id tie-break): split the ones the
        // handle's rule can actually split.
        let mut hot: Vec<_> = report
            .groups
            .iter()
            .filter(|g| {
                let fair = g.members as f64 / servers as f64;
                !self.on_cooldown(g.gid)
                    && g.members > split_floor
                    && g.share >= self.cfg.hot_share * fair
            })
            .collect();
        hot.sort_by(|a, b| b.share.total_cmp(&a.share).then(a.gid.0.cmp(&b.gid.0)));
        for g in hot {
            if plan.len() >= budget {
                break;
            }
            plan.push(AdaptAction::Split(g.gid));
        }

        // Cold groups, coldest first: pack adjacent pairs back toward
        // M*, never past the headroom or the hard maximum.
        let mut cold: Vec<_> = report
            .groups
            .iter()
            .filter(|g| {
                let fair = g.members as f64 / servers as f64;
                !self.on_cooldown(g.gid)
                    && !plan.iter().any(|a| a.touches().0 == g.gid)
                    && g.share <= self.cfg.cold_share * fair
            })
            .collect();
        cold.sort_by(|a, b| a.share.total_cmp(&b.share).then(a.gid.0.cmp(&b.gid.0)));
        let mut cold_iter = cold.into_iter().peekable();
        while let Some(a) = cold_iter.next() {
            if plan.len() >= budget {
                break;
            }
            let Some(b) = cold_iter.peek() else { break };
            if a.members + b.members <= merge_cap {
                let b = cold_iter.next().expect("peeked");
                plan.push(AdaptAction::Merge(a.gid, b.gid));
            }
        }

        // Skewed groups, most skewed first: internal rebalance.
        let mut skewed: Vec<_> = report
            .groups
            .iter()
            .filter(|g| {
                !self.on_cooldown(g.gid)
                    && g.members >= 2
                    && g.lookups >= self.cfg.min_rebalance_rate * g.members as f64
                    && g.imbalance >= self.cfg.imbalance_limit
                    && !plan
                        .iter()
                        .any(|x| x.touches().0 == g.gid || x.touches().1 == Some(g.gid))
            })
            .collect();
        skewed.sort_by(|a, b| {
            b.imbalance
                .total_cmp(&a.imbalance)
                .then(a.gid.0.cmp(&b.gid.0))
        });
        for g in skewed {
            if plan.len() >= budget {
                break;
            }
            plan.push(AdaptAction::Rebalance(g.gid));
        }

        for action in &plan {
            let (a, b) = action.touches();
            self.start_cooldown(a);
            if let Some(b) = b {
                self.start_cooldown(b);
            }
        }
        self.actions_total += plan.len() as u64;
        plan
    }

    /// Plans against `report` and applies the plan through `handle`,
    /// returning the actions the handle accepted. A split's minted
    /// group id is put on cooldown too, so the new group gets the same
    /// settling time as its parent.
    pub fn actuate(&mut self, report: &LoadReport, handle: &ReconfigHandle) -> Vec<AdaptAction> {
        let plan = self.plan(report, handle.max_group_size());
        let mut applied = Vec::with_capacity(plan.len());
        for action in plan {
            let ok = match action {
                AdaptAction::Split(g) => match handle.split_group(g) {
                    Some(minted) => {
                        self.start_cooldown(minted);
                        true
                    }
                    None => false,
                },
                _ => action.apply(handle),
            };
            if ok {
                applied.push(action);
            }
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::MembershipEpoch;
    use crate::load::{GroupLoad, LoadReport};

    fn report(shares: &[(u16, usize, f64)]) -> LoadReport {
        let total = 1000.0;
        LoadReport {
            window: 1,
            epoch: MembershipEpoch(1),
            fresh_lookups: 1000,
            total,
            groups: shares
                .iter()
                .map(|&(gid, members, share)| GroupLoad {
                    gid: GroupId(gid),
                    members,
                    lookups: share * total,
                    share,
                    l3_share: 0.2,
                    l4_share: 0.0,
                    false_hit_rate: 0.0,
                    mask_hit_rate: 1.0,
                    imbalance: 1.0,
                })
                .collect(),
        }
    }

    #[test]
    fn uniform_load_plans_nothing() {
        let mut ctl = GroupController::default();
        // 3 groups × 4 members, each at exactly its fair share.
        let r = report(&[(0, 4, 1.0 / 3.0), (1, 4, 1.0 / 3.0), (2, 4, 1.0 / 3.0)]);
        for _ in 0..50 {
            assert!(ctl.plan(&r, 8).is_empty());
        }
        assert_eq!(ctl.actions_total(), 0);
    }

    #[test]
    fn idle_windows_plan_nothing_even_when_skewed() {
        let mut ctl = GroupController::default();
        let mut r = report(&[(0, 8, 0.9), (1, 4, 0.1)]);
        r.fresh_lookups = 3;
        assert!(ctl.plan(&r, 8).is_empty());
    }

    #[test]
    fn hot_large_group_splits_and_cools_down() {
        let mut ctl = GroupController::new(ControllerConfig::default().with_cooldown(3));
        // Group 0: 8 of 12 servers (fair 0.667), share 0.95 ≥ 1.6×… no —
        // 1.6 × 0.667 > 1. Use a hotter-than-fair mid-size group: 6 of
        // 16 servers, fair 0.375, hot bar 0.6.
        let r = report(&[(0, 6, 0.8), (1, 5, 0.1), (2, 5, 0.1)]);
        let plan = ctl.plan(&r, 8);
        assert_eq!(plan.first(), Some(&AdaptAction::Split(GroupId(0))));
        // Cooldown: the same report plans no further split of group 0.
        for _ in 0..2 {
            let plan = ctl.plan(&r, 8);
            assert!(
                !plan.iter().any(|a| a.touches().0 == GroupId(0)),
                "cooldown violated: {plan:?}"
            );
        }
        // After the cooldown expires it may fire again.
        let plan = ctl.plan(&r, 8);
        assert_eq!(plan.first(), Some(&AdaptAction::Split(GroupId(0))));
    }

    #[test]
    fn small_hot_groups_are_not_splittable() {
        let mut ctl = GroupController::default();
        // Hot but at the split floor (max 8 → floor 5): refuse.
        let r = report(&[(0, 5, 0.9), (1, 5, 0.05), (2, 6, 0.05)]);
        let plan = ctl.plan(&r, 8);
        assert!(!plan.iter().any(|a| matches!(a, AdaptAction::Split(_))));
    }

    #[test]
    fn cold_pairs_merge_within_headroom() {
        let mut ctl = GroupController::default();
        // 4 groups of 3 on 12 servers (fair 0.25, cold bar 0.125);
        // groups 2 and 3 nearly idle. M* = round(√12) = 3 with headroom
        // 1.25 → cap ceil(3.75) = 4 < 6 members: merge refused by cap.
        let r = report(&[(0, 3, 0.45), (1, 3, 0.45), (2, 3, 0.05), (3, 3, 0.05)]);
        assert!(
            !ctl.plan(&r, 8)
                .iter()
                .any(|a| matches!(a, AdaptAction::Merge(..))),
            "headroom cap must refuse a 6-member merge at M*=3"
        );
        // Pinning the target higher lifts the cap and the pair merges.
        let mut ctl =
            GroupController::new(ControllerConfig::default().with_target(TargetM::Fixed(6)));
        let plan = ctl.plan(&r, 8);
        assert!(
            plan.contains(&AdaptAction::Merge(GroupId(2), GroupId(3))),
            "{plan:?}"
        );
    }

    #[test]
    fn skew_triggers_rebalance() {
        let mut ctl = GroupController::default();
        let mut r = report(&[(0, 4, 0.5), (1, 4, 0.5)]);
        r.groups[1].imbalance = 3.0;
        let plan = ctl.plan(&r, 8);
        assert_eq!(plan, vec![AdaptAction::Rebalance(GroupId(1))]);
    }

    #[test]
    fn sparse_imbalance_is_noise_and_plans_nothing() {
        let mut ctl = GroupController::default();
        let mut r = report(&[(0, 4, 0.5), (1, 4, 0.5)]);
        // Same 3× skew as above, but at ~6 decayed lookups per member
        // the max/mean estimator is Poisson noise: hold still.
        r.total = 48.0;
        for g in &mut r.groups {
            g.lookups = 24.0;
        }
        r.groups[1].imbalance = 3.0;
        assert!(ctl.plan(&r, 8).is_empty());
    }

    #[test]
    fn budget_caps_every_plan() {
        let mut ctl = GroupController::new(ControllerConfig::default().with_budget(1));
        let mut r = report(&[
            (0, 6, 0.40),
            (1, 6, 0.40),
            (2, 6, 0.04),
            (3, 6, 0.04),
            (4, 6, 0.12),
        ]);
        for g in &mut r.groups {
            g.imbalance = 5.0;
        }
        let plan = ctl.plan(&r, 8);
        assert_eq!(plan.len(), 1, "{plan:?}");
    }

    #[test]
    fn paper_model_tracks_root_n() {
        assert_eq!(TargetM::PaperModel.group_size(30, 64), 5);
        assert_eq!(TargetM::PaperModel.group_size(100, 64), 10);
        assert_eq!(TargetM::PaperModel.group_size(200, 64), 14);
        assert_eq!(TargetM::PaperModel.group_size(4, 64), 2, "clamped up");
        assert_eq!(TargetM::PaperModel.group_size(200, 8), 8, "clamped down");
        assert_eq!(TargetM::Fixed(6).group_size(100, 64), 6);
    }
}
