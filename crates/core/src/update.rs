//! The replica-update protocol (§3.4).
//!
//! Each home MDS tracks how far its live filter has drifted from the
//! published snapshot its peers hold, via the XOR (Hamming) distance of the
//! two bit vectors. Once the drift crosses the configured threshold, the
//! home pushes a sparse [`FilterDelta`] — and, unlike HBA's system-wide
//! broadcast, G-HBA addresses **one server per group**: the replica holder,
//! located through the group's IDBFA. A multi-hit in the IDBFA costs only
//! extra dropped messages (the paper's "light false positive penalty").

use core::time::Duration;

use ghba_bloom::Hit;

use crate::cluster::GhbaCluster;
use crate::ids::MdsId;

/// Cost accounting for one replica-update push.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateReport {
    /// Messages sent (one per IDBFA candidate per group; non-holders drop
    /// theirs).
    pub messages: u64,
    /// Bytes of delta traffic.
    pub bytes: u64,
    /// Simulated latency of the push (recipients are contacted in
    /// parallel).
    pub latency: Duration,
    /// Whether a refresh actually happened (`false` when the live filter
    /// had not changed).
    pub refreshed: bool,
}

impl GhbaCluster {
    /// Cheap drift gate called after every mutation: publishes only when
    /// the mutation count suggests the XOR distance may have crossed the
    /// threshold, and the exact distance confirms it.
    pub(crate) fn maybe_publish(&mut self, origin: MdsId) -> Option<UpdateReport> {
        let threshold = self.config.update_threshold_bits;
        let hashes = self.config.filter_hashes() as usize;
        // Each new file sets at most k bits, so fewer than threshold/k
        // mutations cannot have crossed the threshold; checking at half
        // that rate keeps the exact (O(m)) distance computation rare.
        let gate = (threshold / hashes.max(1) / 2).max(1) as u64;
        let mds = self.mdss.get(&origin)?;
        if mds.mutations_since_publish() < gate {
            return None;
        }
        if mds.drift_bits() < threshold {
            return None;
        }
        Some(self.push_update(origin))
    }

    /// Unconditionally refreshes `origin`'s replicas across all groups,
    /// returning the cost report. A no-op (with `refreshed: false`) when
    /// the live filter matches the published snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `origin` is not in the cluster.
    pub fn push_update(&mut self, origin: MdsId) -> UpdateReport {
        let mds = self.mdss.get_mut(&origin).expect("origin must exist");
        let delta = match mds.publish() {
            Some(delta) => delta,
            None => return UpdateReport::default(),
        };
        // Refresh the origin's column of the bit-sliced published slab the
        // hash-once L2/L3 probes read.
        self.published_array
            .replace_filter(origin, mds.published())
            .expect("published slab tracks every server");
        let own_group = self.group_of(origin);
        let mut report = UpdateReport {
            refreshed: true,
            ..UpdateReport::default()
        };
        let mut recipient_groups = 0usize;
        for group in self.groups.values() {
            if Some(group.id()) == own_group {
                continue;
            }
            recipient_groups += 1;
            match group.locate_via_idbfa(origin) {
                Hit::Unique(_) => {
                    report.messages += 1;
                }
                Hit::Multiple(candidates) => {
                    // Send to every candidate; the non-holders drop it.
                    report.messages += candidates.len() as u64;
                    self.stats
                        .counters
                        .add("idbfa_dropped_updates", candidates.len() as u64 - 1);
                }
                Hit::None => {
                    // Counting filters have no false negatives, so this
                    // means the group holds no replica (e.g. mid-
                    // reconfiguration); fall back to a group multicast.
                    report.messages += group.len() as u64;
                    self.stats.counters.incr("idbfa_fallback_multicasts");
                }
            }
            report.bytes += delta.wire_bytes() as u64;
        }
        // All groups are contacted in parallel: one multicast round over
        // the recipient set.
        report.latency = self.config.latency.multicast_rtt(recipient_groups);
        self.stats.update_messages += report.messages;
        self.stats.update_bytes += report.bytes;
        self.stats.update_latency.record(report.latency);
        report
    }

    /// Pushes updates for every server whose live filter drifted at all —
    /// a barrier used by experiments that need fresh replicas (and by
    /// departures).
    pub fn flush_all_updates(&mut self) -> UpdateReport {
        let ids = self.server_ids();
        let mut total = UpdateReport::default();
        for id in ids {
            let report = self.push_update(id);
            total.messages += report.messages;
            total.bytes += report.bytes;
            total.latency = total.latency.max(report.latency);
            total.refreshed |= report.refreshed;
        }
        total
    }
}
