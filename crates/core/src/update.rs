//! The replica-update protocol (§3.4).
//!
//! Each home MDS tracks how far its live filter has drifted from the
//! published snapshot its peers hold, via the XOR (Hamming) distance of the
//! two bit vectors. Once the drift crosses the configured threshold, the
//! home pushes a sparse [`FilterDelta`] — and, unlike HBA's system-wide
//! broadcast, G-HBA addresses **one server per group**: the replica holder,
//! located through the group's IDBFA. A multi-hit in the IDBFA costs only
//! extra dropped messages (the paper's "light false positive penalty").

use core::time::Duration;

use ghba_bloom::Hit;

use crate::cluster::GhbaCluster;
use crate::ids::MdsId;

/// Cost accounting for one replica-update push.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateReport {
    /// Messages sent (one per IDBFA candidate per group; non-holders drop
    /// theirs).
    pub messages: u64,
    /// Bytes of delta traffic.
    pub bytes: u64,
    /// Simulated latency of the push (recipients are contacted in
    /// parallel).
    pub latency: Duration,
    /// Whether a refresh actually happened (`false` when the live filter
    /// had not changed).
    pub refreshed: bool,
}

impl GhbaCluster {
    /// Cheap drift gate called after every mutation: publishes only when
    /// the mutation count suggests the XOR distance may have crossed the
    /// threshold, and the exact distance confirms it.
    ///
    /// The exact O(m) distance runs at the gated *cadence*, not on every
    /// mutation: after a check comes up under threshold, another `gate`
    /// mutations must accumulate before the next one (the
    /// `drift_exact_checks` counter makes the cadence observable).
    pub(crate) fn maybe_publish(&mut self, origin: MdsId) -> Option<UpdateReport> {
        let threshold = self.config.update_threshold_bits;
        let gate = self.config.publish_gate();
        let exceeded = self.mdss.get_mut(&origin)?.drift_exceeds(gate, threshold)?;
        self.stats.counters.incr("drift_exact_checks");
        if exceeded {
            Some(self.push_update(origin))
        } else {
            None
        }
    }

    /// Unconditionally refreshes `origin`'s replicas across all groups,
    /// returning the cost report. A no-op (with `refreshed: false`) when
    /// the live filter matches the published snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `origin` is not in the cluster.
    pub fn push_update(&mut self, origin: MdsId) -> UpdateReport {
        self.maybe_drain();
        let mds = self.mdss.get_mut(&origin).expect("origin must exist");
        let delta = match mds.publish() {
            Some(delta) => delta,
            None => return UpdateReport::default(),
        };
        // Refresh the origin's column of the bit-sliced published slab the
        // hash-once L2/L3 probes read, as its own snapshot publish. The
        // sparse delta touches only the bit-rows of changed words — cost
        // scales with churn since the last publish, not with the O(m)
        // filter width. No epoch bump: a publish refreshes filter
        // *content* under the same layout, so cached masks stay valid,
        // and in-flight pinned walks keep probing the exact bits they
        // admitted against.
        {
            let routes = std::sync::Arc::clone(&self.routes);
            let mut edit =
                crate::snapshot::RouteEdit::begin(&routes, self.config.epoch_granularity);
            edit.push_op(crate::snapshot::SlabOp::Delta(origin, delta.clone()));
            edit.commit();
        }
        let snap = self.routes.pin();
        debug_assert_eq!(
            snap.slab.extract(origin).as_ref(),
            self.mdss.get(&origin).map(|mds| mds.published()),
            "sparse delta application diverged from the published snapshot"
        );
        let own_group = snap.group_of(origin);
        let mut report = UpdateReport {
            refreshed: true,
            ..UpdateReport::default()
        };
        let mut recipient_groups = 0usize;
        for group in snap.groups.values() {
            if Some(group.id()) == own_group {
                continue;
            }
            recipient_groups += 1;
            match group.locate_via_idbfa(origin) {
                Hit::Unique(_) => {
                    report.messages += 1;
                }
                Hit::Multiple(candidates) => {
                    // Send to every candidate; the non-holders drop it.
                    report.messages += candidates.len() as u64;
                    self.stats
                        .counters
                        .add("idbfa_dropped_updates", candidates.len() as u64 - 1);
                }
                Hit::None => {
                    // Counting filters have no false negatives, so this
                    // means the group holds no replica (e.g. mid-
                    // reconfiguration); fall back to a group multicast.
                    report.messages += group.len() as u64;
                    self.stats.counters.incr("idbfa_fallback_multicasts");
                }
            }
            report.bytes += delta.wire_bytes() as u64;
        }
        // All groups are contacted in parallel: one multicast round over
        // the recipient set.
        report.latency = self.config.latency.multicast_rtt(recipient_groups);
        self.stats.update_messages += report.messages;
        self.stats.update_bytes += report.bytes;
        self.stats.update_latency.record(report.latency);
        report
    }

    /// Pushes updates for every server whose live filter drifted at all —
    /// a barrier used by experiments that need fresh replicas (and by
    /// departures).
    pub fn flush_all_updates(&mut self) -> UpdateReport {
        // Write-ahead: drain (and log) pending concurrent writes first so
        // the flush record lands *after* the drain whose effects it
        // publishes; the per-server `push_update` drains below are then
        // clean no-ops.
        self.maybe_drain();
        if let Some(wal) = self.wal.as_mut() {
            wal.append_flush()
                .expect("WAL append failed: cannot publish unlogged flush");
        }
        let ids = self.server_ids();
        let mut total = UpdateReport::default();
        for id in ids {
            let report = self.push_update(id);
            total.messages += report.messages;
            total.bytes += report.bytes;
            total.latency = total.latency.max(report.latency);
            total.refreshed |= report.refreshed;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use crate::cluster::GhbaCluster;
    use crate::config::GhbaConfig;

    /// Regression: once `mutations_since_publish` passed the gate but
    /// drift stayed under threshold, the seed recomputed the exact O(m)
    /// XOR distance on **every** subsequent mutation. The exact check must
    /// instead run once per `gate` mutations.
    #[test]
    fn exact_drift_checks_run_at_gated_cadence() {
        let config = GhbaConfig::default()
            .with_filter_capacity(10_000)
            .with_bits_per_file(12.0)
            .with_update_threshold(1_600)
            .with_seed(3);
        let hashes = u64::from(config.filter_hashes());
        let gate = (1_600 / hashes.max(1) / 2).max(1);
        let mut cluster = GhbaCluster::with_servers(config, 1);
        // Enough mutations to pass the gate several times over, few
        // enough that the drift (≈ k bits per create) stays under the
        // threshold, so no publish ever resolves the pressure.
        let mutations = gate * 2 - 10;
        for i in 0..mutations {
            cluster.create_file(&format!("/cadence/f{i}"));
        }
        let checks = cluster.stats().counters.get("drift_exact_checks");
        assert!(checks >= 1, "the gate passed; at least one exact check");
        assert!(
            checks <= mutations / gate + 1,
            "{checks} exact checks for {mutations} mutations (gate {gate}): \
             the O(m) distance is being recomputed per mutation"
        );
        assert_eq!(
            cluster.stats().update_messages,
            0,
            "drift must have stayed under threshold for this test to bite"
        );
    }

    /// The published slab is refreshed by sparse delta application; it
    /// must stay bit-identical to every server's published snapshot.
    #[test]
    fn push_update_keeps_slab_in_sync_via_deltas() {
        let config = GhbaConfig::default()
            .with_filter_capacity(2_000)
            .with_max_group_size(4)
            .with_update_threshold(usize::MAX)
            .with_seed(11);
        let mut cluster = GhbaCluster::with_servers(config, 12);
        for round in 0..3 {
            for i in 0..40 {
                cluster.create_file(&format!("/sync/r{round}/f{i}"));
            }
            if round == 1 {
                for i in 0..10 {
                    cluster.remove_file(&format!("/sync/r0/f{i}"));
                }
            }
            cluster.flush_all_updates();
            cluster
                .check_invariants()
                .expect("published slab mirrors every snapshot");
        }
    }
}
