//! Per-server state: the metadata store, the live and published Bloom
//! filters, the L1 LRU array, and the memory budget.
//!
//! Two filters per server is the heart of the staleness model:
//!
//! * the **live** filter (counting, so `unlink` works) tracks the store
//!   exactly and is probed by L4 and by the server itself;
//! * the **published** filter is the snapshot other servers hold as a
//!   replica. It lags the live filter until the XOR-distance threshold
//!   triggers a refresh (§3.4) — the lag is what sends queries to L4 in
//!   Figure 13.

use ghba_bloom::{
    BloomFilter, CountingBloomFilter, FilterDelta, FilterShape, Fingerprint, LruBloomArray,
};
use ghba_simnet::MemoryBudget;

use crate::config::GhbaConfig;
use crate::ids::MdsId;
use crate::metadata::MetadataStore;

/// Charge labels within each server's [`MemoryBudget`].
const CHARGE_LOCAL: &str = "local";
const CHARGE_LRU: &str = "lru";
const CHARGE_REPLICAS: &str = "replicas";
const CHARGE_METACACHE: &str = "metacache";

/// Bytes of cache one metadata entry occupies (inode + dentry + slack).
pub const META_ENTRY_BYTES: usize = 512;

/// The shape every server's live/published filter uses under `config`.
///
/// All servers of a cluster share it, which is what lets a cluster (and the
/// HBA baseline, and the threaded prototype's nodes) keep published
/// replicas in one bit-sliced
/// [`SharedShapeArray`](ghba_bloom::SharedShapeArray).
#[must_use]
pub fn published_shape(config: &GhbaConfig) -> FilterShape {
    FilterShape {
        bits: config.filter_bits(),
        hashes: config.filter_hashes(),
        seed: config.seed ^ 0x5E6_3E47, // filter family distinct from LRU's
    }
}

/// One metadata server.
#[derive(Debug, Clone)]
pub struct Mds {
    id: MdsId,
    store: MetadataStore,
    live: CountingBloomFilter,
    /// Plain (bit-vector) projection of `live`, maintained incrementally on
    /// creates and rebuilt **lazily** after unlinks: a remove may drop
    /// counters to zero, so the projection goes stale until
    /// [`drift_bits`](Mds::drift_bits) or [`publish`](Mds::publish) next
    /// needs it. Unlink itself stays O(k) instead of O(m).
    live_plain: BloomFilter,
    /// `true` while `live_plain` lags `live` (set by unlinks).
    live_plain_dirty: bool,
    /// O(m) projection rebuilds performed (observability for the lazy
    /// path; tests assert rebuilds scale with publish checks, not unlinks).
    plain_rebuilds: u64,
    published: BloomFilter,
    lru: Option<LruBloomArray<MdsId>>,
    memory: Option<MemoryBudget>,
    mutations_since_publish: u64,
    /// Mutations since the last *exact* drift check (or publish), so the
    /// O(m) XOR distance runs at the gated cadence instead of on every
    /// mutation once the publish gate is passed.
    mutations_since_drift_check: u64,
    replica_charge_count: usize,
}

impl Mds {
    /// Creates an empty server under `config`.
    #[must_use]
    pub fn new(id: MdsId, config: &GhbaConfig) -> Self {
        let FilterShape { bits, hashes, seed } = published_shape(config);
        let live = CountingBloomFilter::new(bits, hashes, seed);
        let live_plain = BloomFilter::new(bits, hashes, seed);
        let published = BloomFilter::new(bits, hashes, seed);
        let lru = (config.lru_capacity > 0).then(|| {
            LruBloomArray::new(
                config.lru_capacity,
                config.lru_bits,
                config.lru_hashes,
                config.seed ^ 0x14B_0A11,
            )
        });
        let memory = config.memory_per_mds.map(MemoryBudget::new);
        let mut mds = Mds {
            id,
            store: MetadataStore::new(),
            live,
            live_plain,
            live_plain_dirty: false,
            plain_rebuilds: 0,
            published,
            lru,
            memory,
            mutations_since_publish: 0,
            mutations_since_drift_check: 0,
            replica_charge_count: 0,
        };
        mds.recharge_memory();
        mds
    }

    /// This server's id.
    #[must_use]
    pub fn id(&self) -> MdsId {
        self.id
    }

    /// The authoritative metadata store.
    #[must_use]
    pub fn store(&self) -> &MetadataStore {
        &self.store
    }

    /// Number of files homed here.
    #[must_use]
    pub fn file_count(&self) -> usize {
        self.store.len()
    }

    /// The snapshot filter other groups hold as this server's replica.
    #[must_use]
    pub fn published(&self) -> &BloomFilter {
        &self.published
    }

    /// The L1 LRU array, if enabled.
    #[must_use]
    pub fn lru(&self) -> Option<&LruBloomArray<MdsId>> {
        self.lru.as_ref()
    }

    /// Mutable access to the L1 LRU array, if enabled.
    pub fn lru_mut(&mut self) -> Option<&mut LruBloomArray<MdsId>> {
        self.lru.as_mut()
    }

    /// Inserts `path` into the store and live filter (hashing it once for
    /// both filter projections).
    pub fn create_local(&mut self, path: &str) {
        self.create_local_fp(path, &Fingerprint::of(path));
    }

    /// Pre-hashed variant of [`create_local`](Mds::create_local): callers
    /// holding the path's admission-time fingerprint (a batched op
    /// pipeline) skip the byte pass entirely.
    pub fn create_local_fp(&mut self, path: &str, fp: &Fingerprint) {
        let existed = self.store.create(path).is_some();
        // Re-creating an existing path bumps its version but must not
        // double-insert into the counting filter: the live filter holds
        // exactly one count per stored path, so a later remove clears its
        // bits fully instead of stranding a permanent false positive —
        // and so live state stays a pure function of the namespace (the
        // property checkpoint/WAL recovery rebuilds it from).
        if !existed {
            self.live.insert_fp(fp);
            // Keep the plain projection current when it is clean; when it
            // is dirty the pending rebuild overwrites this anyway.
            self.live_plain.insert_fp(fp);
        }
        self.mutations_since_publish += 1;
        self.mutations_since_drift_check += 1;
        self.recharge_metacache();
    }

    /// Removes `path` from the store and live filter; returns `false` when
    /// the path was not homed here.
    pub fn remove_local(&mut self, path: &str) -> bool {
        self.remove_local_fp(path, &Fingerprint::of(path))
    }

    /// Pre-hashed variant of [`remove_local`](Mds::remove_local).
    pub fn remove_local_fp(&mut self, path: &str, fp: &Fingerprint) -> bool {
        if self.store.remove(path).is_none() {
            return false;
        }
        let removed = self.live.remove_fp(fp);
        debug_assert!(removed.is_ok(), "live filter desynchronized from store");
        // Counters may have dropped to zero, so the plain projection is now
        // stale. Defer the O(m) rebuild until `drift_bits`/`publish`
        // actually needs it — unlink itself stays O(k).
        self.live_plain_dirty = true;
        self.mutations_since_publish += 1;
        self.mutations_since_drift_check += 1;
        self.recharge_metacache();
        true
    }

    /// Rebuilds the plain projection from the counting filter if an unlink
    /// left it stale.
    fn refresh_plain(&mut self) {
        if self.live_plain_dirty {
            self.live_plain = self.live.to_bloom_filter();
            self.live_plain_dirty = false;
            self.plain_rebuilds += 1;
        }
    }

    /// Authoritative membership check (the "disk" verification of L4 and
    /// of unique-hit confirmation).
    #[must_use]
    pub fn stores(&self, path: &str) -> bool {
        self.store.contains(path)
    }

    /// Probes the live local filter: no false negatives for files homed
    /// here; false positives possible.
    #[must_use]
    pub fn probe_live(&self, path: &str) -> bool {
        self.live.contains(path)
    }

    /// Hash-once variant of [`probe_live`](Mds::probe_live): reuses the
    /// fingerprint the query walk computed at its entry server.
    #[must_use]
    pub fn probe_live_fp(&self, fp: &Fingerprint) -> bool {
        self.live.contains_fp(fp)
    }

    /// Precomputed-rows variant of [`probe_live_fp`](Mds::probe_live_fp):
    /// `rows` must be derived for this cluster's shared live-filter shape
    /// ([`published_shape`]). Lets a batched sweep derive each
    /// fingerprint's rows once and probe every server's live filter with
    /// them — identical answers to `probe_live_fp` for the same item.
    #[must_use]
    pub fn probe_live_rows(&self, rows: &[u32]) -> bool {
        self.live.contains_rows(rows)
    }

    /// Hamming distance between the live filter and the published
    /// snapshot — Eq. §3.4's update trigger. This is the *exact* O(m)
    /// check; gate it with [`drift_check_due`](Mds::drift_check_due) on
    /// hot paths.
    #[must_use]
    pub fn drift_bits(&mut self) -> usize {
        self.refresh_plain();
        self.live_plain
            .xor_distance(&self.published)
            .expect("live and published share geometry")
    }

    /// Mutations since the last publish (a cheap proxy consulted before
    /// paying for the exact XOR distance).
    #[must_use]
    pub fn mutations_since_publish(&self) -> u64 {
        self.mutations_since_publish
    }

    /// `true` when enough mutations have accumulated — since the last
    /// publish *and* since the last exact check — that paying for the
    /// O(m) [`drift_bits`](Mds::drift_bits) distance is warranted.
    ///
    /// Without the second clause, a server whose drift hovers under the
    /// threshold would recompute the exact distance on **every** mutation
    /// once past the publish gate; with it, exact checks run at the gated
    /// cadence. Pair with [`note_drift_checked`](Mds::note_drift_checked)
    /// when the check does not lead to a publish.
    #[must_use]
    pub fn drift_check_due(&self, gate: u64) -> bool {
        self.mutations_since_publish >= gate && self.mutations_since_drift_check >= gate
    }

    /// Records that an exact drift check ran (and came up under
    /// threshold), restarting the cadence countdown.
    pub fn note_drift_checked(&mut self) {
        self.mutations_since_drift_check = 0;
    }

    /// The whole gated drift protocol in one call: `None` when the
    /// cadence says an exact check is not yet due (no filter touched);
    /// otherwise pays the exact O(m) distance, restarts the cadence on an
    /// under-threshold result, and returns `Some(exceeded)`.
    ///
    /// Every publish gate (G-HBA, HBA, the threaded prototype) goes
    /// through here so no call site can forget the cadence reset and
    /// silently regress to per-mutation O(m) checks.
    pub fn drift_exceeds(&mut self, gate: u64, threshold: usize) -> Option<bool> {
        if !self.drift_check_due(gate) {
            return None;
        }
        if self.drift_bits() < threshold {
            self.note_drift_checked();
            Some(false)
        } else {
            Some(true)
        }
    }

    /// Refreshes the published snapshot from the live filter, returning
    /// the delta that must be shipped to replica holders, or `None` if
    /// nothing changed.
    pub fn publish(&mut self) -> Option<FilterDelta> {
        self.refresh_plain();
        let delta = FilterDelta::between(&self.published, &self.live_plain)
            .expect("published and live share geometry");
        self.mutations_since_publish = 0;
        self.mutations_since_drift_check = 0;
        if delta.is_empty() {
            return None;
        }
        self.published = self.live_plain.clone();
        Some(delta)
    }

    /// The publish-cadence counters `(since_publish, since_drift_check)`
    /// — captured into checkpoints so recovery resumes the gated drift
    /// protocol exactly where the crash left it.
    pub(crate) fn durable_counters(&self) -> (u64, u64) {
        (
            self.mutations_since_publish,
            self.mutations_since_drift_check,
        )
    }

    /// Checkpoint restore: overwrites the published snapshot and the
    /// publish-cadence counters. Called *after* the namespace has been
    /// replayed into the live filters (which bumps the counters), so
    /// the restore must come last to land the captured values.
    pub(crate) fn restore_published(
        &mut self,
        published: BloomFilter,
        since_publish: u64,
        since_drift: u64,
    ) {
        self.published = published;
        self.mutations_since_publish = since_publish;
        self.mutations_since_drift_check = since_drift;
    }

    /// Hands every file (path and attributes) to the caller and resets the
    /// filters — the departing-server path of group reconfiguration.
    pub fn evacuate(&mut self) -> Vec<String> {
        let paths: Vec<String> = self.store.drain().map(|(p, _)| p).collect();
        self.live.clear();
        self.live_plain.clear();
        self.live_plain_dirty = false;
        self.published.clear();
        self.mutations_since_publish = 0;
        self.mutations_since_drift_check = 0;
        paths
    }

    /// Updates the replica memory charge to `count` replicas of this
    /// cluster's filter size.
    pub fn set_replica_charge(&mut self, count: usize) {
        self.replica_charge_count = count;
        self.recharge_memory();
    }

    /// Number of this server's held replicas that are resident in RAM
    /// (the rest spill to disk). Equals `held` when no budget is set.
    #[must_use]
    pub fn resident_replicas(&self, held: usize) -> usize {
        match &self.memory {
            Some(budget) => budget.resident_items(CHARGE_REPLICAS, held),
            None => held,
        }
    }

    /// Total bytes of filter structures this server keeps (its own filter,
    /// its LRU array, and `held` replicas) — the per-MDS figure behind
    /// Table 5.
    #[must_use]
    pub fn filter_memory_bytes(&self, held: usize) -> usize {
        self.published.memory_bytes()
            + self.lru.as_ref().map_or(0, LruBloomArray::memory_bytes)
            + held * self.published.memory_bytes()
    }

    /// Expected cost of serving one metadata access at this server: a
    /// memory probe when the entry is cached, a disk access otherwise,
    /// blended by the cache-resident fraction of the metadata working set.
    ///
    /// The metadata cache is the *lowest*-priority memory charge: Bloom
    /// filter replicas evict it first (they are probed on every query),
    /// which is how memory pressure turns into the latency growth of
    /// Figures 8–10.
    #[must_use]
    pub fn metadata_access_cost(&self, model: &ghba_simnet::LatencyModel) -> core::time::Duration {
        let resident = match &self.memory {
            Some(budget) => budget.resident_fraction(CHARGE_METACACHE),
            None => 1.0,
        };
        model.memory_probe + model.disk_access.mul_f64(1.0 - resident)
    }

    fn recharge_metacache(&mut self) {
        if let Some(budget) = &mut self.memory {
            // Metadata cache outranks replicas: a real MDS keeps its hot
            // dentries/inodes pinned and pages cold Bloom filter replicas
            // out — so growing cache demand progressively spills replicas
            // (the Figures 8–10 mechanism).
            budget.charge(CHARGE_METACACHE, 1, self.store.len() * META_ENTRY_BYTES);
            // The LRU array grows as homes are seen; keep its charge
            // honest so replicas feel true memory pressure.
            let lru = self.lru.as_ref().map_or(0, LruBloomArray::memory_bytes);
            budget.charge(CHARGE_LRU, 0, lru);
        }
    }

    fn recharge_memory(&mut self) {
        let local = self.published.memory_bytes() + self.live.memory_bytes();
        let lru = self.lru.as_ref().map_or(0, LruBloomArray::memory_bytes);
        let replicas = self.replica_charge_count * self.published.memory_bytes();
        if let Some(budget) = &mut self.memory {
            budget.charge(CHARGE_LOCAL, 0, local);
            budget.charge(CHARGE_LRU, 0, lru);
            budget.charge(CHARGE_REPLICAS, 2, replicas);
        }
        self.recharge_metacache();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config() -> GhbaConfig {
        GhbaConfig::default()
            .with_filter_capacity(1_000)
            .with_bits_per_file(12.0)
            .with_seed(5)
    }

    #[test]
    fn create_then_probe_and_verify() {
        let mut mds = Mds::new(MdsId(0), &test_config());
        mds.create_local("/a/b/c");
        assert!(mds.stores("/a/b/c"));
        assert!(mds.probe_live("/a/b/c"));
        assert_eq!(mds.file_count(), 1);
    }

    #[test]
    fn remove_clears_filter_membership() {
        let mut mds = Mds::new(MdsId(0), &test_config());
        mds.create_local("/x");
        assert!(mds.remove_local("/x"));
        assert!(!mds.stores("/x"));
        assert!(!mds.probe_live("/x"));
        assert!(!mds.remove_local("/x"));
    }

    #[test]
    fn published_lags_until_publish() {
        let mut mds = Mds::new(MdsId(0), &test_config());
        mds.create_local("/fresh");
        assert!(!mds.published().contains("/fresh"));
        assert!(mds.drift_bits() > 0);
        let delta = mds.publish().expect("changes pending");
        assert!(!delta.is_empty());
        assert!(mds.published().contains("/fresh"));
        assert_eq!(mds.drift_bits(), 0);
        assert_eq!(mds.mutations_since_publish(), 0);
    }

    #[test]
    fn publish_without_changes_is_none() {
        let mut mds = Mds::new(MdsId(0), &test_config());
        assert!(mds.publish().is_none());
        mds.create_local("/a");
        let _ = mds.publish();
        assert!(mds.publish().is_none());
    }

    #[test]
    fn delta_applies_to_stale_replica() {
        let mut mds = Mds::new(MdsId(0), &test_config());
        let mut replica = mds.published().clone();
        for i in 0..50 {
            mds.create_local(&format!("/f{i}"));
        }
        let delta = mds.publish().unwrap();
        delta.apply(&mut replica).unwrap();
        assert_eq!(&replica, mds.published());
    }

    #[test]
    fn evacuate_returns_all_files_and_clears() {
        let mut mds = Mds::new(MdsId(0), &test_config());
        mds.create_local("/a");
        mds.create_local("/b");
        let mut files = mds.evacuate();
        files.sort();
        assert_eq!(files, vec!["/a".to_owned(), "/b".to_owned()]);
        assert_eq!(mds.file_count(), 0);
        assert!(!mds.probe_live("/a"));
        assert_eq!(mds.drift_bits(), 0);
    }

    #[test]
    fn remove_heavy_workload_keeps_filter_and_store_in_sync() {
        let mut mds = Mds::new(MdsId(0), &test_config());
        for i in 0..200 {
            mds.create_local(&format!("/rm/f{i}"));
        }
        for i in 0..150 {
            assert!(mds.remove_local(&format!("/rm/f{i}")));
        }
        // Unlinks defer the O(m) projection rebuild entirely.
        assert_eq!(mds.plain_rebuilds, 0);
        for i in 0..150 {
            assert!(!mds.stores(&format!("/rm/f{i}")));
        }
        for i in 150..200 {
            let path = format!("/rm/f{i}");
            assert!(mds.stores(&path));
            assert!(mds.probe_live(&path), "no false negatives for {path}");
        }
        // The first consumer of the plain projection pays exactly one
        // rebuild; repeat reads stay free until the next unlink.
        assert!(mds.drift_bits() > 0);
        assert_eq!(mds.plain_rebuilds, 1);
        let _ = mds.drift_bits();
        assert_eq!(mds.plain_rebuilds, 1);
        mds.publish().expect("live drifted from published");
        assert_eq!(mds.drift_bits(), 0);
        assert_eq!(mds.published().item_count(), 50);
        for i in 150..200 {
            assert!(mds.published().contains(&format!("/rm/f{i}")));
        }
    }

    #[test]
    fn create_while_plain_dirty_publishes_correctly() {
        let mut mds = Mds::new(MdsId(0), &test_config());
        mds.create_local("/keep");
        mds.create_local("/gone");
        assert!(mds.remove_local("/gone")); // leaves the projection dirty
        mds.create_local("/after-dirty");
        let _ = mds.publish().expect("changes pending");
        assert!(mds.published().contains("/keep"));
        assert!(mds.published().contains("/after-dirty"));
        assert!(!mds.published().contains("/gone"));
        assert_eq!(mds.drift_bits(), 0);
    }

    #[test]
    fn drift_check_cadence_is_gated() {
        let mut mds = Mds::new(MdsId(0), &test_config());
        let gate = 10;
        for i in 0..9 {
            mds.create_local(&format!("/g/f{i}"));
        }
        assert!(!mds.drift_check_due(gate));
        mds.create_local("/g/f9");
        assert!(mds.drift_check_due(gate));
        // An under-threshold exact check restarts the cadence: the next
        // exact check must wait another `gate` mutations, even though the
        // publish gate stays passed.
        mds.note_drift_checked();
        assert!(!mds.drift_check_due(gate));
        for i in 10..19 {
            mds.create_local(&format!("/g/f{i}"));
        }
        assert!(!mds.drift_check_due(gate));
        mds.create_local("/g/f19");
        assert!(mds.drift_check_due(gate));
        mds.publish().expect("changes pending");
        assert!(!mds.drift_check_due(gate));
    }

    #[test]
    fn unlimited_memory_keeps_all_replicas_resident() {
        let mds = Mds::new(MdsId(0), &test_config());
        assert_eq!(mds.resident_replicas(50), 50);
    }

    #[test]
    fn tight_memory_spills_replicas() {
        let filter_bytes = {
            let probe = Mds::new(MdsId(0), &test_config());
            probe.published().memory_bytes()
        };
        // Room for local structures plus ~3 replicas.
        let config = test_config().with_memory_per_mds(filter_bytes * 14);
        let mut mds = Mds::new(MdsId(0), &config);
        mds.set_replica_charge(10);
        let resident = mds.resident_replicas(10);
        assert!(resident < 10, "expected spill, all resident");
        assert!(resident > 0, "expected some residency");
    }

    #[test]
    fn lru_disabled_when_capacity_zero() {
        let config = test_config().with_lru_capacity(0);
        let mds = Mds::new(MdsId(0), &config);
        assert!(mds.lru().is_none());
    }

    #[test]
    fn filter_memory_counts_replicas() {
        let mds = Mds::new(MdsId(0), &test_config());
        let own = mds.published().memory_bytes();
        assert_eq!(
            mds.filter_memory_bytes(4) - mds.filter_memory_bytes(0),
            4 * own
        );
    }
}
