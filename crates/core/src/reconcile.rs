//! The background reconciler: a cadence thread for `&self`-only servers.
//!
//! The pin-once pipeline defers all authoritative mutation to the next
//! `&mut` entry point ([`GhbaCluster::drain_concurrent`]): perfect for
//! batch drivers that alternate executing and inspecting, but a
//! long-running server that only ever touches its cluster through
//! `&self` ([`execute_concurrent`]) would accumulate namespace shard
//! logs without bound. [`Reconciler`] owns that drain on a dedicated
//! thread: it wakes at a fixed cadence (the publish cadence, typically),
//! runs the caller's reconciliation closure, and goes back to sleep.
//!
//! The closure is the whole contract — the reconciler knows nothing of
//! clusters. The network replica (the first consumer) passes a closure
//! that write-locks its shared cluster and calls
//! [`drain_concurrent`](GhbaCluster::drain_concurrent); because readers
//! hold the lock only for the duration of one batch, the drain slips
//! between batches instead of stalling the accept loop.
//!
//! Shutdown is prompt and joining: [`Reconciler::shutdown`] (or drop)
//! signals a condvar, so the thread exits within one lock handoff even
//! mid-sleep — never a full cadence later. One final tick runs before
//! the thread exits so no pending state is stranded by teardown.
//!
//! [`GhbaCluster::drain_concurrent`]: crate::GhbaCluster::drain_concurrent
//! [`execute_concurrent`]: crate::MetadataService::execute_concurrent

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

#[derive(Default)]
struct Signal {
    state: Mutex<State>,
    wake: Condvar,
}

#[derive(Default)]
struct State {
    stop: bool,
    /// Crash semantics: skip the final shutdown tick too (see
    /// [`Reconciler::abort`]).
    abandon: bool,
    /// Manual wakeups requested via [`Reconciler::trigger`] and not yet
    /// served.
    triggers: u64,
}

/// A dedicated thread running a reconciliation closure at a fixed
/// cadence (see the module docs).
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
/// use std::time::Duration;
///
/// let drains = Arc::new(AtomicU64::new(0));
/// let counter = Arc::clone(&drains);
/// let reconciler = ghba_core::Reconciler::spawn(Duration::from_millis(1), move || {
///     counter.fetch_add(1, Ordering::Relaxed);
/// });
/// reconciler.trigger();
/// reconciler.shutdown(); // joins; a final tick has run
/// assert!(drains.load(Ordering::Relaxed) >= 1);
/// ```
#[derive(Debug)]
pub struct Reconciler {
    signal: Arc<Signal>,
    ticks: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Signal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Signal").finish_non_exhaustive()
    }
}

impl Reconciler {
    /// Spawns the cadence thread: `tick` runs once every `cadence` (and
    /// immediately on [`trigger`](Reconciler::trigger)), plus one final
    /// time during shutdown.
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses to spawn a thread.
    #[must_use]
    pub fn spawn(cadence: Duration, mut tick: impl FnMut() + Send + 'static) -> Self {
        let signal = Arc::new(Signal::default());
        let ticks = Arc::new(AtomicU64::new(0));
        let thread_signal = Arc::clone(&signal);
        let thread_ticks = Arc::clone(&ticks);
        let handle = std::thread::Builder::new()
            .name("ghba-reconciler".into())
            .spawn(move || {
                let mut state = thread_signal.state.lock().expect("reconciler signal");
                loop {
                    if state.stop {
                        break;
                    }
                    if state.triggers > 0 {
                        state.triggers -= 1;
                    } else {
                        let (next, timeout) = thread_signal
                            .wake
                            .wait_timeout(state, cadence)
                            .expect("reconciler signal");
                        state = next;
                        if state.stop {
                            break;
                        }
                        if !timeout.timed_out() && state.triggers == 0 {
                            // Spurious wakeup: neither cadence nor a
                            // trigger — sleep again.
                            continue;
                        }
                        state.triggers = state.triggers.saturating_sub(1);
                    }
                    drop(state);
                    tick();
                    thread_ticks.fetch_add(1, Ordering::Release);
                    state = thread_signal.state.lock().expect("reconciler signal");
                }
                let abandon = state.abandon;
                drop(state);
                if abandon {
                    return;
                }
                // The shutdown tick: drain whatever accumulated since
                // the last cadence so teardown strands nothing.
                tick();
                thread_ticks.fetch_add(1, Ordering::Release);
            })
            .expect("spawn reconciler thread");
        Reconciler {
            signal,
            ticks,
            handle: Some(handle),
        }
    }

    /// Ticks completed so far (cadence, triggered, and shutdown ticks
    /// alike).
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Acquire)
    }

    /// Requests an immediate out-of-cadence tick (e.g. after a burst of
    /// writes the caller wants reconciled now). Queues if the thread is
    /// mid-tick; never blocks.
    pub fn trigger(&self) {
        let mut state = self.signal.state.lock().expect("reconciler signal");
        state.triggers += 1;
        drop(state);
        self.signal.wake.notify_one();
    }

    /// Stops the cadence thread and joins it. The thread runs one final
    /// tick on its way out; when `shutdown` returns, no further tick
    /// will ever run. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if the reconciliation closure panicked on the thread.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    /// Stops the cadence thread **without** the final tick — fault
    /// injection's kill switch. State the closure would have reconciled
    /// stays stranded, exactly as a crash would strand it; pair with a
    /// WAL-backed cluster to exercise recovery. Joins before returning.
    ///
    /// # Panics
    ///
    /// Panics if the reconciliation closure panicked on the thread.
    pub fn abort(mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        {
            let mut state = self.signal.state.lock().expect("reconciler signal");
            state.stop = true;
            state.abandon = true;
        }
        self.signal.wake.notify_one();
        handle.join().expect("reconciler thread panicked");
    }

    fn shutdown_in_place(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        {
            let mut state = self.signal.state.lock().expect("reconciler signal");
            state.stop = true;
        }
        self.signal.wake.notify_one();
        handle.join().expect("reconciler thread panicked");
    }
}

impl Drop for Reconciler {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn shutdown_joins_promptly_mid_sleep() {
        // A cadence far longer than the test: shutdown must interrupt
        // the sleep, not wait it out.
        let reconciler = Reconciler::spawn(Duration::from_secs(300), || {});
        let start = Instant::now();
        reconciler.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "shutdown waited on the cadence instead of the condvar"
        );
    }

    #[test]
    fn cadence_drives_ticks() {
        let reconciler = Reconciler::spawn(Duration::from_millis(2), || {});
        let deadline = Instant::now() + Duration::from_secs(60);
        while reconciler.ticks() < 3 {
            assert!(Instant::now() < deadline, "cadence never fired");
            std::thread::sleep(Duration::from_millis(2));
        }
        reconciler.shutdown();
    }

    #[test]
    fn trigger_preempts_a_long_cadence() {
        let reconciler = Reconciler::spawn(Duration::from_secs(300), || {});
        reconciler.trigger();
        let deadline = Instant::now() + Duration::from_secs(60);
        while reconciler.ticks() < 1 {
            assert!(Instant::now() < deadline, "trigger never fired");
            std::thread::sleep(Duration::from_millis(1));
        }
        reconciler.shutdown();
    }

    #[test]
    fn shutdown_runs_a_final_tick_and_drop_is_idempotent() {
        let count = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&count);
        let reconciler = Reconciler::spawn(Duration::from_secs(300), move || {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        reconciler.shutdown();
        // No cadence or trigger fired; exactly the shutdown tick ran.
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn abort_skips_the_final_tick() {
        let count = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&count);
        let reconciler = Reconciler::spawn(Duration::from_secs(300), move || {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        reconciler.abort();
        // Crash semantics: nothing ran — not even the teardown drain.
        assert_eq!(count.load(Ordering::Relaxed), 0);
    }
}
