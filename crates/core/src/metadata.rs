//! The authoritative per-MDS metadata store — the simulator's "disk".
//!
//! Bloom filters only summarize; the ground truth about which files an MDS
//! manages lives here. L4 queries and unique-hit verifications consult this
//! store, which is why they can never return a wrong answer (only pay more
//! latency).

use std::collections::HashMap;

/// Attributes held for each file (a compact stand-in for a real inode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileAttrs {
    /// Inode-like identifier, unique per store.
    pub ino: u64,
    /// File size in bytes (synthetic).
    pub size: u64,
    /// Version counter, bumped by metadata mutations.
    pub version: u32,
}

/// An in-memory map standing in for the on-disk metadata table of one MDS.
#[derive(Debug, Clone, Default)]
pub struct MetadataStore {
    files: HashMap<String, FileAttrs>,
    next_ino: u64,
}

impl MetadataStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        MetadataStore::default()
    }

    /// Number of files stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// `true` when no file is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Inserts metadata for `path`, returning the previous attributes if
    /// the path already existed (idempotent re-create bumps the version).
    pub fn create(&mut self, path: &str) -> Option<FileAttrs> {
        let ino = self.next_ino;
        self.next_ino += 1;
        match self.files.get_mut(path) {
            Some(attrs) => {
                let old = *attrs;
                attrs.version += 1;
                Some(old)
            }
            None => {
                self.files.insert(
                    path.to_owned(),
                    FileAttrs {
                        ino,
                        size: 0,
                        version: 0,
                    },
                );
                None
            }
        }
    }

    /// `true` if metadata for `path` is stored here. This is the
    /// authoritative membership check behind every filter verification.
    #[must_use]
    pub fn contains(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Reads the attributes of `path`.
    #[must_use]
    pub fn get(&self, path: &str) -> Option<&FileAttrs> {
        self.files.get(path)
    }

    /// Removes `path`, returning its attributes.
    pub fn remove(&mut self, path: &str) -> Option<FileAttrs> {
        self.files.remove(path)
    }

    /// Iterates stored paths in arbitrary order.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }

    /// Drains every entry out of the store (used when a departing MDS
    /// hands its files to a peer).
    pub fn drain(&mut self) -> impl Iterator<Item = (String, FileAttrs)> + '_ {
        self.files.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_lookup_remove() {
        let mut store = MetadataStore::new();
        assert!(store.create("/a/b").is_none());
        assert!(store.contains("/a/b"));
        assert_eq!(store.len(), 1);
        let attrs = store.remove("/a/b").unwrap();
        assert_eq!(attrs.version, 0);
        assert!(!store.contains("/a/b"));
        assert!(store.is_empty());
    }

    #[test]
    fn recreate_bumps_version() {
        let mut store = MetadataStore::new();
        store.create("/x");
        let old = store.create("/x").unwrap();
        assert_eq!(old.version, 0);
        assert_eq!(store.get("/x").unwrap().version, 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn inos_are_unique() {
        let mut store = MetadataStore::new();
        store.create("/a");
        store.create("/b");
        let ia = store.get("/a").unwrap().ino;
        let ib = store.get("/b").unwrap().ino;
        assert_ne!(ia, ib);
    }

    #[test]
    fn drain_empties() {
        let mut store = MetadataStore::new();
        store.create("/a");
        store.create("/b");
        let drained: Vec<_> = store.drain().collect();
        assert_eq!(drained.len(), 2);
        assert!(store.is_empty());
    }

    #[test]
    fn missing_path_reads() {
        let store = MetadataStore::new();
        assert!(!store.contains("/ghost"));
        assert!(store.get("/ghost").is_none());
    }
}
