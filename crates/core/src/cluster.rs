//! The G-HBA metadata cluster: construction, the L1→L4 query walk, and
//! file create/remove.
//!
//! Reconfiguration (join/leave/split/merge) lives in [`crate::reconfig`];
//! the replica-update protocol in [`crate::update`].

use core::time::Duration;
use std::collections::BTreeMap;

use ghba_bloom::{Fingerprint, Hit, ProbeBatch, SharedShapeArray, SlotMask};
use ghba_simnet::{Counters, DetRng, LatencyStats};

use crate::config::{GhbaConfig, MaskCacheLifecycle};
use crate::group::Group;
use crate::ids::{GroupId, MdsId, MembershipEpoch};
use crate::mds::{published_shape, Mds};
use crate::op::{EntryPolicy, PathKey};
use crate::query::{LevelCounts, QueryLevel, QueryOutcome};

/// Aggregate statistics of a cluster's lifetime.
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Per-level query hit counts (Figure 13).
    pub levels: LevelCounts,
    /// Lookup latency distribution.
    pub lookup_latency: LatencyStats,
    /// Replica-update latency distribution (Figure 12).
    pub update_latency: LatencyStats,
    /// Replicas moved between servers by reconfiguration (Figure 11).
    pub migrated_replicas: u64,
    /// Messages exchanged during reconfigurations (Figure 15).
    pub reconfig_messages: u64,
    /// Messages carrying replica updates.
    pub update_messages: u64,
    /// Bytes of replica-update traffic.
    pub update_bytes: u64,
    /// Group splits performed.
    pub splits: u64,
    /// Group merges performed.
    pub merges: u64,
    /// Named auxiliary counters (verification round trips, drops, …).
    pub counters: Counters,
}

/// Memoized candidate masks for the batched lookup walk.
///
/// Slot masks and membership snapshots depend only on cluster layout
/// (slot assignment, group placement) — state that **writes never
/// touch**; only reconfiguration invalidates them. How long entries
/// live is governed by [`MaskCacheMode`](crate::MaskCacheMode):
///
/// * `Persistent` (default) — entries are tagged with the
///   [`MembershipEpoch`] they were built under and validated lazily at
///   the start of every walk: a reconfiguration bumps the cluster's
///   epoch, and the first walk of the new epoch drops the stale entries.
///   The cache therefore amortizes across batches *and* across the
///   1-op string shims.
/// * `PerBatch` — armed by [`GhbaCluster::batch_begin`] via the
///   vectored op pipeline, dropped by `batch_end`; unarmed, the cache
///   lives for one walk (the pre-epoch behaviour).
/// * `Off` — cleared at the top of every walk (the cache-free reference
///   the property tests compare against).
///
/// Anything budget- or filter-dependent (probe durations, live-filter
/// verdicts) is deliberately *not* cached here and is recomputed per
/// run.
#[derive(Debug, Clone, Default)]
pub(crate) struct MaskCache {
    /// Armed flag, build epoch, hit/miss counters — the mode-validation
    /// state machine shared with the HBA baseline's cache.
    life: MaskCacheLifecycle,
    /// entry → (held replica count, L2 candidate mask).
    l2: Vec<(MdsId, usize, SlotMask)>,
    /// group → (each member's held count, group-mirror mask).
    l3: Vec<GroupMirror>,
}

/// One group's cached L3 snapshot: `(group, members' held counts,
/// group-mirror candidate mask)`.
type GroupMirror = (GroupId, Vec<(MdsId, usize)>, SlotMask);

impl MaskCache {
    fn clear(&mut self) {
        self.l2.clear();
        self.l3.clear();
    }
}

/// Reusable working memory for the batched walk (probe batch, row
/// table). Contents are fully re-initialized per walk; keeping the
/// allocations on the cluster means the 1-op string shims stop paying
/// a fresh `ProbeBatch` + row-table allocation per call.
#[derive(Debug, Clone, Default)]
struct WalkScratch {
    batch: ProbeBatch,
    live_rows: Vec<u32>,
}

/// A simulated G-HBA metadata server cluster.
///
/// # Examples
///
/// ```
/// use ghba_core::{GhbaCluster, GhbaConfig};
///
/// let mut cluster = GhbaCluster::with_servers(
///     GhbaConfig::default().with_filter_capacity(1_000),
///     12,
/// );
/// let home = cluster.create_file("/projects/paper.tex");
/// let outcome = cluster.lookup("/projects/paper.tex");
/// assert_eq!(outcome.home, Some(home));
/// ```
#[derive(Debug, Clone)]
pub struct GhbaCluster {
    pub(crate) config: GhbaConfig,
    pub(crate) mdss: BTreeMap<MdsId, Mds>,
    pub(crate) groups: BTreeMap<GroupId, Group>,
    pub(crate) group_of: BTreeMap<MdsId, GroupId>,
    /// Every server's published snapshot, bit-sliced for hash-once array
    /// probes. All published filters share [`published_shape`], so L2/L3
    /// segment probes become masked queries against this one slab instead
    /// of per-replica filter walks. Kept in sync by reconfiguration
    /// (add/remove) and [`GhbaCluster::push_update`];
    /// [`GhbaCluster::check_invariants`] verifies the mirror.
    pub(crate) published_array: SharedShapeArray<MdsId>,
    pub(crate) next_mds: u16,
    pub(crate) next_group: u16,
    pub(crate) rng: DetRng,
    pub(crate) stats: ClusterStats,
    pub(crate) mask_cache: MaskCache,
    pub(crate) epoch: MembershipEpoch,
    /// Entry policy the 1-op string shims execute under (see
    /// [`MetadataService::set_shim_policy`](crate::MetadataService::set_shim_policy));
    /// round-robin state advances here, on the service, across calls.
    pub(crate) shim_entry: EntryPolicy,
    scratch: WalkScratch,
}

impl GhbaCluster {
    /// Creates an empty cluster.
    #[must_use]
    pub fn new(config: GhbaConfig) -> Self {
        let rng = DetRng::new(config.seed).fork(0xC105);
        let published_array = SharedShapeArray::new(published_shape(&config));
        GhbaCluster {
            config,
            mdss: BTreeMap::new(),
            groups: BTreeMap::new(),
            group_of: BTreeMap::new(),
            published_array,
            next_mds: 0,
            next_group: 0,
            rng,
            stats: ClusterStats::default(),
            mask_cache: MaskCache::default(),
            epoch: MembershipEpoch::default(),
            shim_entry: EntryPolicy::Random,
            scratch: WalkScratch::default(),
        }
    }

    /// The current membership epoch. Advanced at least once by every
    /// reconfiguration path (join, leave, fail-stop, split, merge,
    /// rebalance — compound operations advance it per internal step, so
    /// this is an invalidation fence, not an operation counter); derived
    /// routing state cached under an older epoch is stale and must be
    /// rebuilt.
    #[must_use]
    pub fn membership_epoch(&self) -> MembershipEpoch {
        self.epoch
    }

    /// Advances the membership epoch (every reconfiguration path calls
    /// this before returning). The persistent mask cache validates
    /// lazily against it at the start of the next walk.
    pub(crate) fn bump_epoch(&mut self) {
        self.epoch.bump();
    }

    /// `(hits, misses)` of the L2/L3 mask cache over the cluster's
    /// lifetime — a hit is a mask consultation answered from cache, a
    /// miss one that had to build (and insert) the entry. Under
    /// [`MaskCacheMode::Persistent`](crate::MaskCacheMode::Persistent)
    /// hits span batches and string-shim
    /// calls; under `PerBatch`/`Off` they only reflect within-batch or
    /// within-walk reuse.
    #[must_use]
    pub fn mask_cache_stats(&self) -> (u64, u64) {
        self.mask_cache.life.stats()
    }

    /// Whether the per-batch mask cache is currently armed (regression
    /// surface for the exception-safety of the arm/disarm guard).
    #[cfg(test)]
    pub(crate) fn mask_cache_armed(&self) -> bool {
        self.mask_cache.life.armed()
    }

    /// Arms the batch-lifetime mask cache (see [`MaskCache`]); paired
    /// with [`batch_end`](GhbaCluster::batch_end) by the vectored op
    /// pipeline. A no-op outside
    /// [`MaskCacheMode`](crate::MaskCacheMode)`::PerBatch`: the
    /// persistent cache needs no arming (epoch validation governs it)
    /// and `Off` never keeps state.
    pub(crate) fn batch_begin(&mut self) {
        if self.mask_cache.life.arm(self.config.mask_cache) {
            self.mask_cache.clear();
        }
    }

    /// Disarms and drops the batch-lifetime mask cache (`PerBatch` mode
    /// only; see [`batch_begin`](GhbaCluster::batch_begin)).
    pub(crate) fn batch_end(&mut self) {
        if self.mask_cache.life.disarm(self.config.mask_cache) {
            self.mask_cache.clear();
        }
    }

    /// Creates a cluster of `servers` MDSs, grouped into groups of at most
    /// `config.max_group_size`, with replica placement balanced. The
    /// build-time reconfiguration traffic is *not* counted in the stats.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    #[must_use]
    pub fn with_servers(config: GhbaConfig, servers: usize) -> Self {
        assert!(servers > 0, "cluster needs at least one server");
        let mut cluster = GhbaCluster::new(config);
        for _ in 0..servers {
            cluster.add_mds();
        }
        cluster.reset_stats();
        cluster
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &GhbaConfig {
        &self.config
    }

    /// Number of metadata servers.
    #[must_use]
    pub fn server_count(&self) -> usize {
        self.mdss.len()
    }

    /// Number of groups.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// All server ids, ascending.
    #[must_use]
    pub fn server_ids(&self) -> Vec<MdsId> {
        self.mdss.keys().copied().collect()
    }

    /// Sizes of all groups, ascending by group id.
    #[must_use]
    pub fn group_sizes(&self) -> Vec<usize> {
        self.groups.values().map(Group::len).collect()
    }

    /// Borrow a server.
    #[must_use]
    pub fn mds(&self, id: MdsId) -> Option<&Mds> {
        self.mdss.get(&id)
    }

    /// The group a server belongs to.
    #[must_use]
    pub fn group_of(&self, id: MdsId) -> Option<GroupId> {
        self.group_of.get(&id).copied()
    }

    /// Borrow a group.
    #[must_use]
    pub fn group(&self, id: GroupId) -> Option<&Group> {
        self.groups.get(&id)
    }

    /// Lifetime statistics.
    #[must_use]
    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// Clears all statistics (e.g. after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = ClusterStats::default();
    }

    /// Total files homed across the cluster.
    #[must_use]
    pub fn total_files(&self) -> usize {
        self.mdss.values().map(Mds::file_count).sum()
    }

    /// Replicas held by `id` (origins from other groups placed on it).
    #[must_use]
    pub fn replicas_held_by(&self, id: MdsId) -> Vec<MdsId> {
        match self.group_of(id).and_then(|g| self.groups.get(&g)) {
            Some(group) => group.replicas_held_by(id),
            None => Vec::new(),
        }
    }

    /// Per-MDS filter memory (own filter + LRU + held replicas) in bytes —
    /// the Table 5 quantity.
    #[must_use]
    pub fn filter_memory_bytes(&self, id: MdsId) -> usize {
        let held = self.replicas_held_by(id).len();
        self.mdss
            .get(&id)
            .map_or(0, |mds| mds.filter_memory_bytes(held))
    }

    fn pick_random_mds(&mut self) -> MdsId {
        let ids = self.server_ids();
        *self.rng.choose(&ids).expect("cluster is never empty here")
    }

    /// Resolves the serving MDS for op `op_index` of a batch under
    /// `policy` (see [`EntryPolicy`]).
    ///
    /// # Panics
    ///
    /// Panics if the cluster has no servers or a pinned server is absent.
    pub(crate) fn entry_for(&mut self, policy: EntryPolicy, op_index: usize) -> MdsId {
        if policy == EntryPolicy::Random {
            return self.pick_random_mds();
        }
        policy
            .resolve_deterministic(&self.server_ids(), op_index)
            .expect("non-random policy resolves deterministically")
    }

    /// Creates metadata for `path` at a uniformly random home MDS (the
    /// paper populates servers randomly), returning the home.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has no servers.
    pub fn create_file(&mut self, path: &str) -> MdsId {
        assert!(!self.mdss.is_empty(), "cluster has no servers");
        let home = self.pick_random_mds();
        self.create_file_at(path, home);
        home
    }

    /// Creates metadata for `path` at a specific home (used by tests and
    /// by re-homing during departures).
    ///
    /// # Panics
    ///
    /// Panics if `home` is not a member of the cluster.
    pub fn create_file_at(&mut self, path: &str, home: MdsId) {
        let mds = self.mdss.get_mut(&home).expect("home must exist");
        mds.create_local(path);
        self.maybe_publish(home);
    }

    /// Pre-hashed variant of [`create_file_at`](GhbaCluster::create_file_at)
    /// for the batched op pipeline: reuses the key's admission
    /// fingerprint instead of re-hashing the path bytes.
    ///
    /// # Panics
    ///
    /// Panics if `home` is not a member of the cluster.
    pub fn create_file_keyed(&mut self, key: &PathKey, home: MdsId) {
        let mds = self.mdss.get_mut(&home).expect("home must exist");
        mds.create_local_fp(key.path(), key.fingerprint());
        self.maybe_publish(home);
    }

    /// Removes `path` from its home (if any), returning the former home.
    /// The caller typically locates the home with a [`lookup`] first; this
    /// method does the authoritative sweep directly.
    ///
    /// [`lookup`]: GhbaCluster::lookup
    pub fn remove_file(&mut self, path: &str) -> Option<MdsId> {
        let home = self.true_home(path)?;
        let mds = self.mdss.get_mut(&home).expect("home exists");
        mds.remove_local(path);
        self.maybe_publish(home);
        Some(home)
    }

    /// Pre-hashed variant of [`remove_file`](GhbaCluster::remove_file).
    pub fn remove_file_keyed(&mut self, key: &PathKey) -> Option<MdsId> {
        let home = self.true_home(key.path())?;
        let mds = self.mdss.get_mut(&home).expect("home exists");
        mds.remove_local_fp(key.path(), key.fingerprint());
        self.maybe_publish(home);
        Some(home)
    }

    /// Ground-truth home of `path` (authoritative store sweep, no filter
    /// involvement) — for verification and tests.
    #[must_use]
    pub fn true_home(&self, path: &str) -> Option<MdsId> {
        self.mdss
            .iter()
            .find(|(_, mds)| mds.stores(path))
            .map(|(&id, _)| id)
    }

    /// Looks `path` up starting from a uniformly random entry MDS (the
    /// paper's client model: "Each request can randomly choose an MDS to
    /// carry out query operations").
    ///
    /// # Panics
    ///
    /// Panics if the cluster has no servers.
    pub fn lookup(&mut self, path: &str) -> QueryOutcome {
        assert!(!self.mdss.is_empty(), "cluster has no servers");
        let entry = self.pick_random_mds();
        self.lookup_from(entry, path)
    }

    /// Looks `path` up starting from a chosen entry MDS, walking the
    /// L1 → L2 → L3 → L4 hierarchy of §2.3.
    ///
    /// # Panics
    ///
    /// Panics if `entry` is not a member of the cluster.
    pub fn lookup_from(&mut self, entry: MdsId, path: &str) -> QueryOutcome {
        self.lookup_batch_from(&[(entry, path)])
            .pop()
            .expect("one query in, one outcome out")
    }

    /// Looks up a batch of paths, each from a uniformly random entry MDS —
    /// the paper's client model applied to a burst of concurrent requests.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has no servers.
    pub fn lookup_batch<S: AsRef<str>>(&mut self, paths: &[S]) -> Vec<QueryOutcome> {
        assert!(!self.mdss.is_empty(), "cluster has no servers");
        let queries: Vec<(MdsId, &str)> = paths
            .iter()
            .map(|path| (self.pick_random_mds(), path.as_ref()))
            .collect();
        self.lookup_batch_from(&queries)
    }

    /// Resolves a batch of concurrent lookups, walking the L1 → L4
    /// hierarchy **level by level across the whole batch**: every query
    /// still past L1 joins one [`ProbeBatch`] against the published slab
    /// at L2, and again (group-masked) at L3, so the slab's `k` probe rows
    /// per fingerprint are resolved in one sorted, prefetched pass per
    /// level instead of one dependent walk per query.
    ///
    /// Per-query accounting (latency, messages, level counters) is
    /// identical to running [`lookup_from`](GhbaCluster::lookup_from) once
    /// per query; the only visible difference is that an L1 cache fill
    /// produced by one query of the batch is not seen by the *later* L2+
    /// probes of the same batch — the concurrent-request model.
    ///
    /// # Panics
    ///
    /// Panics if any entry is not a member of the cluster.
    pub fn lookup_batch_from(&mut self, queries: &[(MdsId, &str)]) -> Vec<QueryOutcome> {
        // Hash each path once at its entry server; the fingerprint drives
        // every filter probe of the whole L1 → L4 escalation (and in a
        // real deployment travels inside the multicast probe messages).
        let prehashed: Vec<(MdsId, &str, Fingerprint)> = queries
            .iter()
            .map(|&(entry, path)| (entry, path, Fingerprint::of(path)))
            .collect();
        self.lookup_batch_prehashed(&prehashed)
    }

    /// The batched walk behind [`lookup_batch_from`], taking queries whose
    /// fingerprints were already computed (at batch admission by the
    /// vectored op pipeline, or just above for string callers).
    ///
    /// # Panics
    ///
    /// Panics if any entry is not a member of the cluster.
    ///
    /// [`lookup_batch_from`]: GhbaCluster::lookup_batch_from
    pub(crate) fn lookup_batch_prehashed(
        &mut self,
        queries: &[(MdsId, &str, Fingerprint)],
    ) -> Vec<QueryOutcome> {
        let model = self.config.latency.clone();
        let total = queries.len();
        let mut outcomes: Vec<Option<QueryOutcome>> = vec![None; total];
        let mut latency: Vec<Duration> = vec![model.dispatch; total];
        let mut messages: Vec<u32> = vec![0; total];
        let fps: Vec<Fingerprint> = queries.iter().map(|&(_, _, fp)| fp).collect();
        // Every live-filter probe of the walk (the entry's at L2, group
        // members' at L3, the global L4 sweep) shares one row table,
        // derived once per batch through the ProbeBatch fastmod machinery
        // instead of once per (query, server) pair. Live filters share
        // [`published_shape`], so one derivation serves them all.
        let live_shape = published_shape(&self.config);
        let k_live = live_shape.hashes as usize;
        let mut batch = core::mem::take(&mut self.scratch.batch);
        let mut live_rows = core::mem::take(&mut self.scratch.live_rows);
        batch.clear();
        for fp in &fps {
            batch.push(*fp);
        }
        batch.derive_rows_into(live_shape, &mut live_rows);
        // Validate-or-drop the mask cache per its configured lifetime:
        // persistent entries survive until the membership epoch moves,
        // per-batch entries until `batch_end` (or the walk's end when
        // unarmed), and `Off` starts every walk cold.
        if self
            .mask_cache
            .life
            .begin_walk(self.config.mask_cache, self.epoch)
        {
            self.mask_cache.clear();
        }
        let mut active: Vec<usize> = Vec::with_capacity(total);

        // ---- L1: each entry server's LRU Bloom filter array. ----
        for (qi, &(entry, path, _)) in queries.iter().enumerate() {
            assert!(self.mdss.contains_key(&entry), "unknown entry MDS");
            let fp = fps[qi];
            let l1_hit = self
                .mdss
                .get(&entry)
                .and_then(Mds::lru)
                .map(|lru| lru.query_fp(&fp));
            if let Some(hit) = l1_hit {
                latency[qi] += model.memory_probe; // small resident array
                if let Hit::Unique(candidate) = hit {
                    if let Some(home) =
                        self.verify_at(candidate, entry, path, &mut latency[qi], &mut messages[qi])
                    {
                        outcomes[qi] = Some(self.finish(
                            entry,
                            &fp,
                            home,
                            QueryLevel::L1Lru,
                            latency[qi],
                            messages[qi],
                        ));
                        continue;
                    }
                    self.stats.counters.incr("l1_false_hits");
                }
            }
            active.push(qi);
        }

        // ---- L2: every entry server's segment array (θ replicas + own):
        // one batched masked probe of the published slab for the whole
        // batch. The candidate mask and held count depend only on the
        // *entry* (and only reconfiguration changes them), so each
        // entry's mask is built once per batch instead of once per
        // query; the budget-sensitive probe duration is recomputed here,
        // inside the run, where no write can interleave.
        batch.clear();
        for &qi in &active {
            let (entry, _, _) = queries[qi];
            if self.mask_cache.l2.iter().any(|(id, _, _)| *id == entry) {
                self.mask_cache.life.hit();
            } else {
                self.mask_cache.life.miss();
                let held = self.replicas_held_by(entry);
                let mask = self.published_array.subset_mask(held.iter().copied());
                self.mask_cache.l2.push((entry, held.len(), mask));
            }
        }
        for &qi in &active {
            let (entry, _, _) = queries[qi];
            let &(_, held, ref mask) = self
                .mask_cache
                .l2
                .iter()
                .find(|(id, _, _)| *id == entry)
                .expect("cached just above");
            let resident = self.mdss[&entry].resident_replicas(held);
            latency[qi] += model.array_probe(held + 1, held - resident);
            batch.push_masked(fps[qi], mask.clone());
        }
        let hits = self.published_array.query_batch(&mut batch);
        let mut next_active = Vec::with_capacity(active.len());
        for (&qi, hit) in active.iter().zip(&hits) {
            let (entry, path, _) = queries[qi];
            let mut positives = hit.candidates().to_vec();
            if self.mdss[&entry].probe_live_rows(&live_rows[qi * k_live..(qi + 1) * k_live]) {
                positives.push(entry);
            }
            if positives.len() == 1 {
                let candidate = positives[0];
                if let Some(home) =
                    self.verify_at(candidate, entry, path, &mut latency[qi], &mut messages[qi])
                {
                    outcomes[qi] = Some(self.finish(
                        entry,
                        &fps[qi],
                        home,
                        QueryLevel::L2Segment,
                        latency[qi],
                        messages[qi],
                    ));
                    continue;
                }
                self.stats.counters.incr("l2_false_hits");
            }
            next_active.push(qi);
        }
        let active = next_active;

        // ---- L3: multicast within each entry server's group; the
        // group-mirror probes of the whole batch share one slab pass. ----
        batch.clear();
        // Per-group L3 state, built once per batch: the member list with
        // held counts and the group-mirror candidate mask depend only on
        // the *group* (and only reconfiguration changes them), so a batch
        // whose queries enter through few groups pays the (member-scan +
        // mask-build) work per group instead of per query. The
        // budget-sensitive probe durations and the entry-dependent
        // worst-peer max reduce over the cached snapshot per query.
        for &qi in &active {
            let (entry, _, _) = queries[qi];
            let gid = self.group_of(entry).expect("entry has a group");
            if self.mask_cache.l3.iter().any(|(id, _, _)| *id == gid) {
                self.mask_cache.life.hit();
            } else {
                self.mask_cache.life.miss();
                let member_held: Vec<(MdsId, usize)> = self.groups[&gid]
                    .members()
                    .iter()
                    .map(|&member| (member, self.groups[&gid].replicas_held_by(member).len()))
                    .collect();
                // The group's replicas collectively mirror every server
                // outside it: one masked slab probe covers all of them,
                // and recipients reuse the fingerprint shipped with the
                // multicast for their live probes.
                let origins = self.groups[&gid].replica_origins();
                let mask = self.published_array.subset_mask(origins.iter().copied());
                self.mask_cache.l3.push((gid, member_held, mask));
            }
        }
        for &qi in &active {
            let (entry, _, _) = queries[qi];
            let gid = self.group_of(entry).expect("entry has a group");
            let (_, member_held, mask) = self
                .mask_cache
                .l3
                .iter()
                .find(|(id, _, _)| *id == gid)
                .expect("cached just above");
            let peer_count = member_held.len().saturating_sub(1);
            messages[qi] += 2 * peer_count as u32;
            latency[qi] += model.multicast_rtt(peer_count);
            // Peers probe their held replicas in parallel: pay the slowest.
            let worst_probe = member_held
                .iter()
                .filter(|&&(member, _)| member != entry)
                .map(|&(member, held)| {
                    let resident = self.mdss[&member].resident_replicas(held);
                    model.array_probe(held + 1, held - resident)
                })
                .max()
                .unwrap_or(Duration::ZERO);
            latency[qi] += worst_probe;
            batch.push_masked(fps[qi], mask.clone());
        }
        let hits = self.published_array.query_batch(&mut batch);
        let mut next_active = Vec::with_capacity(active.len());
        // Members' live-filter answers depend only on (group, fingerprint):
        // flash-crowd duplicates within the batch probe each group's
        // member filters once and reuse the verdict.
        let mut l3_live: Vec<(GroupId, (u64, u64), Vec<MdsId>)> = Vec::new();
        for (&qi, hit) in active.iter().zip(&hits) {
            let (entry, path, _) = queries[qi];
            let gid = self.group_of(entry).expect("entry has a group");
            let mut positives = hit.candidates().to_vec();
            let lanes = fps[qi].lanes();
            let live = match l3_live
                .iter()
                .find(|(id, key, _)| *id == gid && *key == lanes)
            {
                Some(cached) => &cached.2,
                None => {
                    let rows = &live_rows[qi * k_live..(qi + 1) * k_live];
                    let members: Vec<MdsId> = self.groups[&gid]
                        .members()
                        .iter()
                        .copied()
                        .filter(|member| self.mdss[member].probe_live_rows(rows))
                        .collect();
                    l3_live.push((gid, lanes, members));
                    &l3_live.last().expect("just pushed").2
                }
            };
            positives.extend_from_slice(live);
            if positives.len() == 1 {
                let candidate = positives[0];
                if let Some(home) =
                    self.verify_at(candidate, entry, path, &mut latency[qi], &mut messages[qi])
                {
                    outcomes[qi] = Some(self.finish(
                        entry,
                        &fps[qi],
                        home,
                        QueryLevel::L3Group,
                        latency[qi],
                        messages[qi],
                    ));
                    continue;
                }
                self.stats.counters.incr("l3_false_hits");
            }
            next_active.push(qi);
        }
        let active = next_active;

        // ---- L4: system-wide multicast; authoritative. The recipients'
        // live-filter probes reuse the batch's precomputed row table
        // (each fingerprint's rows derived once, not once per server). ----
        for &qi in &active {
            let (entry, path, _) = queries[qi];
            let fp = fps[qi];
            let rows = &live_rows[qi * k_live..(qi + 1) * k_live];
            let others = self.server_count().saturating_sub(1);
            messages[qi] += 2 * others as u32;
            latency[qi] += model.multicast_rtt(others);
            // Every server probes its live local filter in parallel
            // (memory); positives verify against their store.
            latency[qi] += model.memory_probe;
            let mut found: Option<MdsId> = None;
            let mut verify_cost = Duration::ZERO;
            for (&id, mds) in &self.mdss {
                if mds.probe_live_rows(rows) {
                    let cost = mds.metadata_access_cost(&model);
                    verify_cost = verify_cost.max(cost);
                    if mds.stores(path) {
                        found = Some(id);
                    } else {
                        self.stats.counters.incr("l4_false_positive_disk_checks");
                    }
                }
            }
            latency[qi] += verify_cost;
            outcomes[qi] = Some(match found {
                Some(home) => self.finish(
                    entry,
                    &fp,
                    home,
                    QueryLevel::L4Global,
                    latency[qi],
                    messages[qi],
                ),
                None => {
                    let latency = latency[qi].mul_f64(self.config.contention_factor(messages[qi]));
                    self.stats.levels.record(QueryLevel::Nonexistent);
                    self.stats.lookup_latency.record(latency);
                    QueryOutcome {
                        home: None,
                        level: QueryLevel::Nonexistent,
                        latency,
                        messages: messages[qi],
                        entry,
                    }
                }
            });
        }

        batch.clear();
        live_rows.clear();
        self.scratch.batch = batch;
        self.scratch.live_rows = live_rows;
        outcomes
            .into_iter()
            .map(|outcome| outcome.expect("every query resolved by L4"))
            .collect()
    }

    /// Forwards the query to `candidate` and verifies against its
    /// authoritative store. Returns the confirmed home or `None` on a
    /// false positive. Accounts the round trip and the metadata access.
    fn verify_at(
        &mut self,
        candidate: MdsId,
        entry: MdsId,
        path: &str,
        latency: &mut Duration,
        messages: &mut u32,
    ) -> Option<MdsId> {
        let model = self.config.latency.clone();
        if candidate != entry {
            *messages += 2;
            *latency += model.unicast_rtt();
        }
        let mds = self.mdss.get(&candidate)?;
        *latency += mds.metadata_access_cost(&model);
        if mds.stores(path) {
            Some(candidate)
        } else {
            None
        }
    }

    /// Records a successful lookup: LRU cache fill at the entry server
    /// (reusing the query's fingerprint), level counters, contention
    /// inflation, latency.
    fn finish(
        &mut self,
        entry: MdsId,
        fp: &Fingerprint,
        home: MdsId,
        level: QueryLevel,
        latency: Duration,
        messages: u32,
    ) -> QueryOutcome {
        if let Some(lru) = self.mdss.get_mut(&entry).and_then(Mds::lru_mut) {
            lru.record_fp(fp, home);
        }
        let latency = latency.mul_f64(self.config.contention_factor(messages));
        self.stats.levels.record(level);
        self.stats.lookup_latency.record(latency);
        QueryOutcome {
            home: Some(home),
            level,
            latency,
            messages,
            entry,
        }
    }

    /// Checks every structural invariant of the cluster; returns a
    /// description of the first violation.
    ///
    /// Invariants (the properties §2.2 and §3.1–3.2 argue for):
    /// 1. every server belongs to exactly one group, consistently indexed;
    /// 2. no group exceeds `M` members;
    /// 3. **mirror**: each group stores replicas of exactly the servers
    ///    outside it, so group replicas + member filters cover the system;
    /// 4. every replica's holder is a member of that group;
    /// 5. replica load within each group is balanced within one replica;
    /// 6. the IDBFA locates every replica (its candidates include the true
    ///    holder — counting filters have no false negatives);
    /// 7. the bit-sliced published slab mirrors every server's published
    ///    filter exactly (the hash-once L2/L3 probes depend on it).
    pub fn check_invariants(&self) -> Result<(), String> {
        let slab_ids: Vec<MdsId> = {
            let mut ids: Vec<MdsId> = self.published_array.ids().collect();
            ids.sort_unstable();
            ids
        };
        if slab_ids != self.server_ids() {
            return Err(format!(
                "published slab tracks {} servers, cluster has {}",
                slab_ids.len(),
                self.mdss.len()
            ));
        }
        for (&id, mds) in &self.mdss {
            let column = self
                .published_array
                .extract(id)
                .ok_or_else(|| format!("published slab lost {id}"))?;
            if &column != mds.published() {
                return Err(format!("published slab column of {id} is stale"));
            }
        }
        for (&id, &gid) in &self.group_of {
            let group = self
                .groups
                .get(&gid)
                .ok_or_else(|| format!("{id} maps to missing {gid}"))?;
            if !group.contains(id) {
                return Err(format!("{id} not a member of its {gid}"));
            }
        }
        let all: Vec<MdsId> = self.server_ids();
        for group in self.groups.values() {
            if group.len() > self.config.max_group_size {
                return Err(format!(
                    "{} has {} members (max {})",
                    group.id(),
                    group.len(),
                    self.config.max_group_size
                ));
            }
            for &member in group.members() {
                if self.group_of.get(&member) != Some(&group.id()) {
                    return Err(format!("{member} membership index inconsistent"));
                }
            }
            let expected: Vec<MdsId> = all
                .iter()
                .copied()
                .filter(|id| !group.contains(*id))
                .collect();
            let origins = group.replica_origins();
            if origins != expected {
                return Err(format!(
                    "{} mirror incomplete: has {} replicas, expected {}",
                    group.id(),
                    origins.len(),
                    expected.len()
                ));
            }
            for origin in origins {
                let holder = group
                    .holder_of(origin)
                    .ok_or_else(|| format!("{} lost holder of {origin}", group.id()))?;
                if !group.contains(holder) {
                    return Err(format!("{} replica held by non-member", group.id()));
                }
                if !group
                    .locate_via_idbfa(origin)
                    .candidates()
                    .contains(&holder)
                {
                    return Err(format!(
                        "{} IDBFA cannot locate replica of {origin}",
                        group.id()
                    ));
                }
            }
            if !group.is_empty() && group.balance_spread() > 1 {
                return Err(format!(
                    "{} unbalanced: spread {}",
                    group.id(),
                    group.balance_spread()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch_config() -> GhbaConfig {
        GhbaConfig::default()
            .with_filter_capacity(2_000)
            .with_max_group_size(5)
            .with_update_threshold(64)
            .with_seed(42)
    }

    fn populated_cluster() -> GhbaCluster {
        let mut cluster = GhbaCluster::with_servers(batch_config(), 15);
        for i in 0..300 {
            cluster.create_file(&format!("/b/f{i}"));
        }
        cluster.flush_all_updates();
        cluster
    }

    /// A batch of concurrent lookups over distinct paths resolves exactly
    /// like the same lookups issued sequentially from the same entries —
    /// homes, levels, latencies, messages, and stats all agree.
    #[test]
    fn lookup_batch_matches_sequential_lookups() {
        let mut sequential = populated_cluster();
        let mut batched = populated_cluster();
        let queries: Vec<(MdsId, String)> = (0..64)
            .map(|i| {
                let path = if i % 8 == 7 {
                    format!("/missing/f{i}")
                } else {
                    format!("/b/f{}", i * 4 % 300)
                };
                (MdsId(i % 15), path)
            })
            .collect();
        let borrowed: Vec<(MdsId, &str)> = queries
            .iter()
            .map(|(entry, path)| (*entry, path.as_str()))
            .collect();
        let expected: Vec<QueryOutcome> = borrowed
            .iter()
            .map(|&(entry, path)| sequential.lookup_from(entry, path))
            .collect();
        let got = batched.lookup_batch_from(&borrowed);
        assert_eq!(got, expected);
        assert_eq!(batched.stats().levels, sequential.stats().levels);
        assert_eq!(
            batched.stats().lookup_latency.count(),
            sequential.stats().lookup_latency.count()
        );
    }

    /// `lookup_batch` draws one random entry per path, consuming the rng
    /// stream exactly as sequential `lookup` calls would.
    #[test]
    fn lookup_batch_random_entries_match_sequential_rng() {
        let mut sequential = populated_cluster();
        let mut batched = populated_cluster();
        let paths: Vec<String> = (0..32).map(|i| format!("/b/f{}", i * 9 % 300)).collect();
        let expected: Vec<QueryOutcome> =
            paths.iter().map(|path| sequential.lookup(path)).collect();
        assert_eq!(batched.lookup_batch(&paths), expected);
    }

    #[test]
    fn empty_lookup_batch_is_empty() {
        let mut cluster = populated_cluster();
        assert!(cluster.lookup_batch_from(&[]).is_empty());
    }
}
