//! The G-HBA metadata cluster: construction, the L1→L4 query walk, and
//! file create/remove.
//!
//! Reconfiguration (join/leave/split/merge) lives in [`crate::reconfig`];
//! the replica-update protocol in [`crate::update`].

use core::time::Duration;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use ghba_bloom::{FilterDelta, Fingerprint, Hit, ProbeBatch, SharedShapeArray, SlotMask};
use ghba_simnet::{Counters, DetRng, LatencyStats};

use crate::concurrent::{ConcurrentStats, NamespaceShards, OverlayEntry, WriteKind, WriteRecord};
use crate::config::{GhbaConfig, MaskCacheLifecycle};
use crate::exec::{resolve_unique, run_chunked};
use crate::group::Group;
use crate::ids::{GroupEpoch, GroupId, MdsId, MembershipEpoch};
use crate::mds::{published_shape, Mds};
use crate::op::{EntryPolicy, PathKey};
use crate::query::{LevelCounts, QueryLevel, QueryOutcome};
use crate::snapshot::{
    route_cell, ReconfigHandle, RouteCell, RouteEdit, RouteSnapshot, SharedL2, SharedL3, SlabOp,
};

/// Aggregate statistics of a cluster's lifetime.
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Per-level query hit counts (Figure 13).
    pub levels: LevelCounts,
    /// Lookup latency distribution.
    pub lookup_latency: LatencyStats,
    /// Replica-update latency distribution (Figure 12).
    pub update_latency: LatencyStats,
    /// Replicas moved between servers by reconfiguration (Figure 11).
    pub migrated_replicas: u64,
    /// Messages exchanged during reconfigurations (Figure 15).
    pub reconfig_messages: u64,
    /// Messages carrying replica updates.
    pub update_messages: u64,
    /// Bytes of replica-update traffic.
    pub update_bytes: u64,
    /// Group splits performed.
    pub splits: u64,
    /// Group merges performed.
    pub merges: u64,
    /// L2/L3 mask-cache consultations answered from cache since the last
    /// [`reset_stats`](GhbaCluster::reset_stats) (the figure-binary view
    /// of [`mask_cache_stats`](GhbaCluster::mask_cache_stats), which
    /// keeps lifetime totals).
    pub mask_cache_hits: u64,
    /// L2/L3 mask-cache consultations that had to (re)build their entry
    /// since the last reset.
    pub mask_cache_misses: u64,
    /// Cached masks evicted by the generation sweep: entries of groups
    /// that stayed live but were never consulted again (group churn
    /// under a drifting entry distribution would otherwise grow the
    /// cache without bound — per-group tag validation never bulk-clears).
    pub mask_cache_evictions: u64,
    /// Named auxiliary counters (verification round trips, drops, …).
    pub counters: Counters,
}

/// One entry server's cached L2 snapshot: its held-replica candidate
/// mask plus the held count the probe-latency model needs. Tagged with
/// the [`GroupEpoch`] of the server's group at build time — a
/// reconfiguration that touches the group bumps its epoch, so the tag
/// (and a `gid` check covering servers that changed groups in a split
/// or merge) is the entry's entire validity condition.
#[derive(Debug, Clone)]
struct L2Mask {
    entry: MdsId,
    gid: GroupId,
    tag: GroupEpoch,
    held: usize,
    mask: SlotMask,
    /// Walk generation this entry was last consulted (hit or rebuilt)
    /// at, for the idle sweep.
    last_used: u64,
}

/// One group's cached L3 snapshot: the member list with held counts
/// (the multicast latency inputs) and the group-mirror candidate mask,
/// tagged like [`L2Mask`].
#[derive(Debug, Clone)]
struct L3Mask {
    gid: GroupId,
    tag: GroupEpoch,
    member_held: Vec<(MdsId, usize)>,
    mask: SlotMask,
    /// Walk generation this entry was last consulted at.
    last_used: u64,
}

/// Chunk-local candidate-mask memo for the pinned (`&self`) walk: a
/// lock-free L0 in front of the cross-snapshot [`SharedMaskCache`]
/// embedded in the route snapshot. Masks reached through a pinned
/// snapshot stay valid for exactly as long as that snapshot is pinned —
/// no revalidation needed within a walk scope (one `lookup_concurrent`
/// call, one fused-run chunk) — so the memo holds `Arc`s cloned out of
/// the shared cache (or freshly built into it) and drops them with the
/// pin. Memo and shared-cache hits both count as mask-cache hits in the
/// atomic recorders; only a genuine build counts as a miss.
#[derive(Debug, Default)]
struct PinnedMemo {
    /// Per-entry L2 state: candidate mask + held-replica count.
    l2: HashMap<MdsId, Arc<SharedL2>>,
    /// Per-group L3 state: group-mirror mask + member held counts.
    l3: HashMap<GroupId, Arc<SharedL3>>,
}

/// Per-chunk arena for fused pinned runs: outcomes in chunk order plus
/// the chunk's mask memo.
#[derive(Debug, Default)]
struct PinnedArena {
    outcomes: Vec<QueryOutcome>,
    memo: PinnedMemo,
}

/// Memoized candidate masks for the batched lookup walk.
///
/// Slot masks and membership snapshots depend only on cluster layout
/// (slot assignment, group placement) — state that **writes never
/// touch**; only reconfiguration invalidates them. How long entries
/// live is governed by [`MaskCacheMode`](crate::MaskCacheMode):
///
/// * `Persistent` (default) — entries are tagged with their group's
///   [`GroupEpoch`] and validated **entry by entry** at consultation
///   time: a reconfiguration bumps the epochs of exactly the groups it
///   touched (see [`GhbaCluster::touch_group`]), so a single-group
///   rebalance leaves every other group's masks warm, where the old
///   all-or-nothing [`MembershipEpoch`] check cold-started the whole
///   cache. The cache amortizes across batches *and* across the 1-op
///   string shims.
/// * `PerBatch` — armed by [`GhbaCluster::batch_begin`] via the
///   vectored op pipeline, dropped by `batch_end`; unarmed, the cache
///   lives for one walk (the pre-epoch behaviour).
/// * `Off` — cleared at the top of every walk (the cache-free reference
///   the property tests compare against).
///
/// Both index vectors are **sorted by key** (entry id, group id) and
/// consulted by binary search, so the hit path stays `O(log N)` at
/// ultra-scale fan-in instead of the linear scan that was fine at a few
/// hundred entries. Anything budget- or filter-dependent (probe
/// durations, live-filter verdicts) is deliberately *not* cached here
/// and is recomputed per run.
#[derive(Debug, Clone, Default)]
pub(crate) struct MaskCache {
    /// Armed flag and hit/miss counters — the mode-validation state
    /// machine shared with the HBA baseline's cache.
    life: MaskCacheLifecycle,
    /// Sorted by `entry`.
    l2: Vec<L2Mask>,
    /// Sorted by `gid`.
    l3: Vec<L3Mask>,
    /// Monotonic walk counter driving the idle sweep: entries stamp it
    /// when consulted, and every [`MaskCache::SWEEP_EVERY`] walks the
    /// cache drops entries idle for more than
    /// [`MaskCache::IDLE_GENERATIONS`] walks. Epoch tags evict *stale*
    /// entries on consultation; this sweep bounds the entries that stay
    /// *valid but unconsulted* — e.g. masks of entries a drifting
    /// workload stopped querying, or L3 masks of groups dissolved by a
    /// concurrent reconfiguration handle the owner never saw retire.
    generation: u64,
}

impl MaskCache {
    /// Sweep cadence, in walks.
    const SWEEP_EVERY: u64 = 256;
    /// Walks an entry may go unconsulted before the sweep drops it.
    const IDLE_GENERATIONS: u64 = 512;

    fn clear(&mut self) {
        self.l2.clear();
        self.l3.clear();
    }

    /// The cached L2 snapshot of `entry`, whatever its tag (the caller
    /// validates), stamped as consulted this generation.
    fn l2_consult(&mut self, entry: MdsId) -> Option<&L2Mask> {
        match self.l2.binary_search_by_key(&entry, |e| e.entry) {
            Ok(at) => {
                self.l2[at].last_used = self.generation;
                Some(&self.l2[at])
            }
            Err(_) => None,
        }
    }

    /// The cached L2 snapshot of `entry` without stamping (read phase).
    fn l2(&self, entry: MdsId) -> Option<&L2Mask> {
        self.l2
            .binary_search_by_key(&entry, |e| e.entry)
            .ok()
            .map(|at| &self.l2[at])
    }

    /// The cached L3 snapshot of `gid`, whatever its tag, stamped as
    /// consulted this generation.
    fn l3_consult(&mut self, gid: GroupId) -> Option<&L3Mask> {
        match self.l3.binary_search_by_key(&gid, |e| e.gid) {
            Ok(at) => {
                self.l3[at].last_used = self.generation;
                Some(&self.l3[at])
            }
            Err(_) => None,
        }
    }

    /// The cached L3 snapshot of `gid` without stamping (read phase).
    fn l3(&self, gid: GroupId) -> Option<&L3Mask> {
        self.l3
            .binary_search_by_key(&gid, |e| e.gid)
            .ok()
            .map(|at| &self.l3[at])
    }

    /// Opens a new walk generation and, at the sweep cadence, evicts
    /// entries idle past the threshold. Returns the number evicted.
    fn begin_generation(&mut self) -> u64 {
        self.generation += 1;
        if !self.generation.is_multiple_of(Self::SWEEP_EVERY) {
            return 0;
        }
        let horizon = self.generation.saturating_sub(Self::IDLE_GENERATIONS);
        let before = self.l2.len() + self.l3.len();
        self.l2.retain(|e| e.last_used >= horizon);
        self.l3.retain(|e| e.last_used >= horizon);
        (before - self.l2.len() - self.l3.len()) as u64
    }

    /// Cached entry counts `(l2, l3)` — the regression surface for the
    /// sweep's bound on cache growth.
    #[cfg(test)]
    pub(crate) fn len(&self) -> (usize, usize) {
        (self.l2.len(), self.l3.len())
    }

    /// Inserts or replaces the L2 snapshot of `fresh.entry`, keeping
    /// the sort order.
    fn upsert_l2(&mut self, fresh: L2Mask) {
        match self.l2.binary_search_by_key(&fresh.entry, |e| e.entry) {
            Ok(at) => self.l2[at] = fresh,
            Err(at) => self.l2.insert(at, fresh),
        }
    }

    /// Inserts or replaces the L3 snapshot of `fresh.gid`, keeping the
    /// sort order.
    fn upsert_l3(&mut self, fresh: L3Mask) {
        match self.l3.binary_search_by_key(&fresh.gid, |e| e.gid) {
            Ok(at) => self.l3[at] = fresh,
            Err(at) => self.l3.insert(at, fresh),
        }
    }

    /// Drops a departed server's L2 snapshot. Ids are never reused, so a
    /// dead entry could never validate again — but without eviction it
    /// would linger forever, and per-group tag validation (unlike the
    /// old all-or-nothing flush) never bulk-clears, so long membership
    /// churn would grow the cache without bound.
    pub(crate) fn forget_entry(&mut self, entry: MdsId) {
        if let Ok(at) = self.l2.binary_search_by_key(&entry, |e| e.entry) {
            self.l2.remove(at);
        }
    }

    /// Drops a dissolved group's L3 snapshot (same bound as
    /// [`forget_entry`](MaskCache::forget_entry)).
    pub(crate) fn forget_group(&mut self, gid: GroupId) {
        if let Ok(at) = self.l3.binary_search_by_key(&gid, |e| e.gid) {
            self.l3.remove(at);
        }
    }
}

/// The read-phase result for one query of a batched walk: the finished
/// outcome plus the side effects the splice phase must apply in stream
/// order (counter bumps; the LRU fill is implied by a found home).
///
/// Splitting verdict computation from effect application is what makes
/// the walk parallelizable: computing a `WalkVerdict` needs only
/// `&GhbaCluster` (plus a private scratch arena), so chunks of a batch
/// run concurrently against the shared slab, and the single-threaded
/// splice afterwards applies LRU fills and statistics exactly as a
/// stream-ordered drain would.
#[derive(Debug, Clone)]
struct WalkVerdict {
    outcome: QueryOutcome,
    /// L1 unique hits whose verification failed (false hits).
    l1_false: u32,
    /// L2 unique hits whose verification failed.
    l2_false: u32,
    /// L3 unique hits whose verification failed.
    l3_false: u32,
    /// L4 live-filter positives that cost a disk check but did not
    /// store the path.
    l4_disk_checks: u32,
}

/// Reusable working memory for one walk chunk: the probe batch, the
/// live-filter row table, the verdict buffers, and every per-query
/// working vector of the level-by-level escalation. Contents are fully
/// re-initialized per walk; keeping the allocations on the cluster —
/// one arena per configured worker — means neither the 1-op string
/// shims nor the parallel chunk walks pay per-call allocations.
#[derive(Debug, Clone, Default)]
struct WalkScratch {
    batch: ProbeBatch,
    live_rows: Vec<u32>,
    verdicts: Vec<WalkVerdict>,
    /// Per-query resolution slots, `None` until the query's level lands.
    slots: Vec<Option<WalkVerdict>>,
    /// Per-query false-hit tallies `[l1, l2, l3, l4-disk-checks]`.
    falses: Vec<[u32; 4]>,
    latency: Vec<Duration>,
    messages: Vec<u32>,
    fps: Vec<Fingerprint>,
}

/// A simulated G-HBA metadata server cluster.
///
/// # Examples
///
/// ```
/// use ghba_core::{GhbaCluster, GhbaConfig};
///
/// let mut cluster = GhbaCluster::with_servers(
///     GhbaConfig::default().with_filter_capacity(1_000),
///     12,
/// );
/// let home = cluster.create_file("/projects/paper.tex");
/// let outcome = cluster.lookup("/projects/paper.tex");
/// assert_eq!(outcome.home, Some(home));
/// ```
#[derive(Debug)]
pub struct GhbaCluster {
    pub(crate) config: GhbaConfig,
    pub(crate) mdss: BTreeMap<MdsId, Mds>,
    /// The published routing state — the bit-sliced slab of every
    /// server's published snapshot, the group/membership tables, and the
    /// per-group epochs — as an immutable [`RouteSnapshot`] behind a
    /// lock-free snapshot cell. Lookups pin one snapshot at admission
    /// and walk L1–L4 against it end to end; reconfiguration builds the
    /// successor off to the side and publishes it with one pointer swap,
    /// so readers are never blocked (see [`crate::snapshot`]).
    pub(crate) routes: RouteCell,
    pub(crate) next_mds: u16,
    /// Behind a mutex so [`EntryPolicy::Random`] can draw from the one
    /// deterministic stream from `&self` (the pin-once pipeline) as well
    /// as from `&mut` paths — single-threaded replays of the same op
    /// sequence consume the stream identically either way.
    pub(crate) rng: Mutex<DetRng>,
    pub(crate) stats: ClusterStats,
    /// Namespace write shards of the pin-once pipeline: pending creates
    /// and removes recorded from `&self`, replayed into `mdss` by
    /// [`drain_concurrent`](GhbaCluster::drain_concurrent) at the next
    /// `&mut` entry point.
    pub(crate) shards: NamespaceShards,
    /// Atomic statistics recorded by `&self` walks and commits, folded
    /// into [`GhbaCluster::stats`] at the same drain points.
    pub(crate) cstats: ConcurrentStats,
    pub(crate) mask_cache: MaskCache,
    /// Owner-side fold of the per-group load windows recorded by
    /// `cstats` on the `&self` walks (see [`crate::load`]). Behind a
    /// mutex so [`load_report`](GhbaCluster::load_report) works from
    /// `&self` (a controller samples while lookups run); touched only
    /// at report cadence, never on the walk hot path.
    pub(crate) load_fold: Mutex<crate::load::LoadFold>,
    /// Entry policy the 1-op string shims execute under (see
    /// [`MetadataService::set_shim_policy`](crate::MetadataService::set_shim_policy));
    /// round-robin state advances here, on the service, across calls.
    pub(crate) shim_entry: EntryPolicy,
    /// Per-worker walk arenas (arena 0 doubles as the sequential
    /// scratch), grown lazily to the configured worker count.
    scratch: Vec<WalkScratch>,
    /// The attached write-ahead log, if any (see [`crate::wal`]): every
    /// shard-log drain and flush barrier is appended here before its
    /// effects apply. Boxed to keep the common (undurable) cluster
    /// layout compact; deliberately **not** cloned — a clone is an
    /// independent in-memory twin, not a second writer of the same log.
    pub(crate) wal: Option<Box<crate::wal::Wal>>,
}

impl Clone for GhbaCluster {
    /// Clones the cluster into an **independent** instance: the clone
    /// gets its own snapshot cell seeded with the currently published
    /// snapshot. Immutable storage (the slab, per-group placement) is
    /// shared structurally via `Arc` until either side's next edit
    /// copies-on-write, so the clone is cheap and the two clusters can
    /// never observe each other's subsequent reconfigurations.
    fn clone(&self) -> Self {
        // Pending `&self`-path writes are not cloned: drain them (any
        // `&mut` entry point) before cloning a cluster that executed
        // concurrent batches.
        debug_assert!(
            !self.shards.is_dirty(),
            "clone with undrained concurrent writes pending"
        );
        let snapshot = (*self.routes.pin()).clone();
        GhbaCluster {
            config: self.config.clone(),
            mdss: self.mdss.clone(),
            routes: route_cell(snapshot),
            next_mds: self.next_mds,
            rng: Mutex::new(self.rng.lock().expect("rng poisoned").clone()),
            stats: self.stats.clone(),
            shards: NamespaceShards::new(self.config.write_shards),
            cstats: ConcurrentStats::new(),
            mask_cache: self.mask_cache.clone(),
            load_fold: Mutex::new(crate::load::LoadFold::new()),
            shim_entry: self.shim_entry,
            scratch: self.scratch.clone(),
            wal: None,
        }
    }
}

impl GhbaCluster {
    /// Creates an empty cluster.
    #[must_use]
    pub fn new(config: GhbaConfig) -> Self {
        let rng = DetRng::new(config.seed).fork(0xC105);
        let slab = SharedShapeArray::new(published_shape(&config));
        let shards = NamespaceShards::new(config.write_shards);
        GhbaCluster {
            config,
            mdss: BTreeMap::new(),
            routes: route_cell(RouteSnapshot::empty(slab)),
            next_mds: 0,
            rng: Mutex::new(rng),
            stats: ClusterStats::default(),
            shards,
            cstats: ConcurrentStats::new(),
            mask_cache: MaskCache::default(),
            load_fold: Mutex::new(crate::load::LoadFold::new()),
            shim_entry: EntryPolicy::Random,
            scratch: Vec::new(),
            wal: None,
        }
    }

    /// The current membership epoch. Advanced at least once by every
    /// reconfiguration path (join, leave, fail-stop, split, merge,
    /// rebalance — compound operations advance it per internal step, so
    /// this is an invalidation fence, not an operation counter); derived
    /// routing state cached under an older epoch is stale and must be
    /// rebuilt.
    #[must_use]
    pub fn membership_epoch(&self) -> MembershipEpoch {
        self.routes.pin().epoch
    }

    /// The configuration version of `gid` under the currently published
    /// snapshot (default epoch for groups never touched — including
    /// groups that do not exist, which no valid cache entry can name).
    #[must_use]
    pub fn group_epoch(&self, gid: GroupId) -> GroupEpoch {
        self.routes.pin().group_epoch(gid)
    }

    /// A cloneable, thread-safe handle that publishes group
    /// reconfigurations — rebalances, splits, merges — through the
    /// snapshot cell **concurrently with lookups** on other threads.
    /// Handle-driven operations are pure routing edits (they move
    /// replica *placement*, not server state) and do not update this
    /// cluster's aggregate [`ClusterStats`].
    #[must_use]
    pub fn reconfig_handle(&self) -> ReconfigHandle {
        ReconfigHandle {
            routes: Arc::clone(&self.routes),
            max_group_size: self.config.max_group_size,
            granularity: self.config.epoch_granularity,
        }
    }

    /// L2/L3 mask-cache accounting, both scopes, one source of truth —
    /// a hit is a mask consultation answered from cache (memoized reuse
    /// on the pinned walk counts too), a miss one that had to build the
    /// entry. `lifetime_*` spans the cluster's whole life; `window_*`
    /// is the reset-scoped view the figure binaries read (cleared by
    /// [`reset_stats`](GhbaCluster::reset_stats)). Consults recorded on
    /// `&self` walks but not yet drained are folded into both scopes,
    /// so this is exact at any moment without a drain barrier. Under
    /// [`MaskCacheMode::Persistent`](crate::MaskCacheMode::Persistent)
    /// hits span batches and string-shim calls; under `PerBatch`/`Off`
    /// they only reflect within-batch or within-walk reuse.
    #[must_use]
    pub fn mask_cache_stats(&self) -> crate::load::MaskCacheStats {
        crate::load::MaskCacheStats::assemble(
            self.mask_cache.life.stats(),
            (self.stats.mask_cache_hits, self.stats.mask_cache_misses),
            self.cstats.pending_mask(),
        )
    }

    /// Closes the open telemetry window and returns a
    /// [`LoadReport`](crate::load::LoadReport)
    /// snapshot: one row per live group under the currently published
    /// snapshot, rates window-decayed across successive calls (see
    /// [`crate::load`]). Works from `&self` — a controller samples on
    /// its own cadence while lookups and reconfigurations run — and
    /// deliberately does **not** drain the pending write shards or the
    /// stats mirror; those still fold at the owner's next `&mut` entry.
    #[must_use]
    pub fn load_report(&self) -> crate::load::LoadReport {
        let snap = self.routes.pin();
        let shape: Vec<(GroupId, Vec<MdsId>)> = snap
            .groups
            .iter()
            .map(|(&gid, group)| (gid, group.members().to_vec()))
            .collect();
        let mut fold = self.load_fold.lock().expect("load fold poisoned");
        let fresh = fold.close_window(&self.cstats);
        fold.report(snap.epoch, fresh, &shape)
    }

    /// Whether the per-batch mask cache is currently armed (regression
    /// surface for the exception-safety of the arm/disarm guard).
    #[cfg(test)]
    pub(crate) fn mask_cache_armed(&self) -> bool {
        self.mask_cache.life.armed()
    }

    /// Arms the batch-lifetime mask cache (see [`MaskCache`]); paired
    /// with [`batch_end`](GhbaCluster::batch_end) by the vectored op
    /// pipeline. A no-op outside
    /// [`MaskCacheMode`](crate::MaskCacheMode)`::PerBatch`: the
    /// persistent cache needs no arming (epoch validation governs it)
    /// and `Off` never keeps state.
    pub(crate) fn batch_begin(&mut self) {
        self.maybe_drain();
        if self.mask_cache.life.arm(self.config.mask_cache) {
            self.mask_cache.clear();
        }
    }

    /// Disarms and drops the batch-lifetime mask cache (`PerBatch` mode
    /// only; see [`batch_begin`](GhbaCluster::batch_begin)).
    pub(crate) fn batch_end(&mut self) {
        if self.mask_cache.life.disarm(self.config.mask_cache) {
            self.mask_cache.clear();
        }
    }

    /// Creates a cluster of `servers` MDSs, grouped into groups of at most
    /// `config.max_group_size`, with replica placement balanced. The
    /// build-time reconfiguration traffic is *not* counted in the stats.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    #[must_use]
    pub fn with_servers(config: GhbaConfig, servers: usize) -> Self {
        assert!(servers > 0, "cluster needs at least one server");
        let mut cluster = GhbaCluster::new(config);
        for _ in 0..servers {
            cluster.add_mds();
        }
        cluster.reset_stats();
        cluster
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &GhbaConfig {
        &self.config
    }

    /// Number of metadata servers.
    #[must_use]
    pub fn server_count(&self) -> usize {
        self.mdss.len()
    }

    /// Number of groups.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.routes.pin().groups.len()
    }

    /// All server ids, ascending.
    #[must_use]
    pub fn server_ids(&self) -> Vec<MdsId> {
        self.mdss.keys().copied().collect()
    }

    /// Sizes of all groups, ascending by group id.
    #[must_use]
    pub fn group_sizes(&self) -> Vec<usize> {
        self.routes.pin().groups.values().map(|g| g.len()).collect()
    }

    /// Borrow a server.
    #[must_use]
    pub fn mds(&self, id: MdsId) -> Option<&Mds> {
        self.mdss.get(&id)
    }

    /// The group a server belongs to (under the currently published
    /// snapshot).
    #[must_use]
    pub fn group_of(&self, id: MdsId) -> Option<GroupId> {
        self.routes.pin().group_of(id)
    }

    /// A group under the currently published snapshot. Returns a shared
    /// handle to the immutable group object: subsequent reconfigurations
    /// replace the snapshot rather than mutating it, so the handle stays
    /// consistent for as long as the caller holds it.
    #[must_use]
    pub fn group(&self, id: GroupId) -> Option<Arc<Group>> {
        self.routes.pin().groups.get(&id).cloned()
    }

    /// Lifetime statistics.
    #[must_use]
    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// Clears all statistics (e.g. after warm-up). Pending concurrent
    /// writes are drained (replayed into the stores) first, so the reset
    /// discards their accounting but never their effects.
    pub fn reset_stats(&mut self) {
        self.maybe_drain();
        self.stats = ClusterStats::default();
    }

    /// Total files homed across the cluster.
    #[must_use]
    pub fn total_files(&self) -> usize {
        self.mdss.values().map(Mds::file_count).sum()
    }

    /// Replicas held by `id` (origins from other groups placed on it),
    /// under the currently published snapshot.
    #[must_use]
    pub fn replicas_held_by(&self, id: MdsId) -> Vec<MdsId> {
        self.routes.pin().replicas_held_by(id)
    }

    /// Per-MDS filter memory (own filter + LRU + held replicas) in bytes —
    /// the Table 5 quantity.
    #[must_use]
    pub fn filter_memory_bytes(&self, id: MdsId) -> usize {
        let held = self.replicas_held_by(id).len();
        self.mdss
            .get(&id)
            .map_or(0, |mds| mds.filter_memory_bytes(held))
    }

    fn pick_random_mds(&self) -> MdsId {
        let ids = self.server_ids();
        *self
            .rng
            .lock()
            .expect("rng poisoned")
            .choose(&ids)
            .expect("cluster is never empty here")
    }

    /// Resolves the serving MDS for op `op_index` of a batch under
    /// `policy` (see [`EntryPolicy`]). Callable from `&self`: the random
    /// policy draws from the mutex-guarded deterministic stream.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has no servers or a pinned server is absent.
    pub(crate) fn entry_for(&self, policy: EntryPolicy, op_index: usize) -> MdsId {
        if policy == EntryPolicy::Random {
            return self.pick_random_mds();
        }
        policy
            .resolve_deterministic(&self.server_ids(), op_index)
            .expect("non-random policy resolves deterministically")
    }

    /// Creates metadata for `path` at a uniformly random home MDS (the
    /// paper populates servers randomly), returning the home.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has no servers.
    pub fn create_file(&mut self, path: &str) -> MdsId {
        assert!(!self.mdss.is_empty(), "cluster has no servers");
        let home = self.pick_random_mds();
        self.create_file_at(path, home);
        home
    }

    /// Creates metadata for `path` at a specific home (used by tests and
    /// by re-homing during departures).
    ///
    /// # Panics
    ///
    /// Panics if `home` is not a member of the cluster.
    pub fn create_file_at(&mut self, path: &str, home: MdsId) {
        self.maybe_drain();
        let mds = self.mdss.get_mut(&home).expect("home must exist");
        mds.create_local(path);
        self.maybe_publish(home);
    }

    /// Pre-hashed variant of [`create_file_at`](GhbaCluster::create_file_at)
    /// for the batched op pipeline: reuses the key's admission
    /// fingerprint instead of re-hashing the path bytes.
    ///
    /// # Panics
    ///
    /// Panics if `home` is not a member of the cluster.
    pub fn create_file_keyed(&mut self, key: &PathKey, home: MdsId) {
        self.maybe_drain();
        let mds = self.mdss.get_mut(&home).expect("home must exist");
        mds.create_local_fp(key.path(), key.fingerprint());
        self.maybe_publish(home);
    }

    /// Removes `path` from its home (if any), returning the former home.
    /// The caller typically locates the home with a [`lookup`] first; this
    /// method does the authoritative sweep directly.
    ///
    /// [`lookup`]: GhbaCluster::lookup
    pub fn remove_file(&mut self, path: &str) -> Option<MdsId> {
        self.maybe_drain();
        let home = self.true_home(path)?;
        let mds = self.mdss.get_mut(&home).expect("home exists");
        mds.remove_local(path);
        self.maybe_publish(home);
        Some(home)
    }

    /// Pre-hashed variant of [`remove_file`](GhbaCluster::remove_file).
    pub fn remove_file_keyed(&mut self, key: &PathKey) -> Option<MdsId> {
        self.maybe_drain();
        let home = self.true_home(key.path())?;
        let mds = self.mdss.get_mut(&home).expect("home exists");
        mds.remove_local_fp(key.path(), key.fingerprint());
        self.maybe_publish(home);
        Some(home)
    }

    /// Ground-truth home of `path` (authoritative store sweep, no filter
    /// involvement) — for verification and tests.
    #[must_use]
    pub fn true_home(&self, path: &str) -> Option<MdsId> {
        self.mdss
            .iter()
            .find(|(_, mds)| mds.stores(path))
            .map(|(&id, _)| id)
    }

    /// Looks `path` up starting from a uniformly random entry MDS (the
    /// paper's client model: "Each request can randomly choose an MDS to
    /// carry out query operations").
    ///
    /// # Panics
    ///
    /// Panics if the cluster has no servers.
    pub fn lookup(&mut self, path: &str) -> QueryOutcome {
        assert!(!self.mdss.is_empty(), "cluster has no servers");
        let entry = self.pick_random_mds();
        self.lookup_from(entry, path)
    }

    /// Looks `path` up starting from a chosen entry MDS, walking the
    /// L1 → L2 → L3 → L4 hierarchy of §2.3.
    ///
    /// This is the **scratch-reusing single-lookup fast path**: the same
    /// walk as a one-query
    /// [`lookup_batch_from`](GhbaCluster::lookup_batch_from) —
    /// bit-identical outcomes, pinned by the batch-equivalence tests —
    /// without the batch plumbing. Probes go through the scalar
    /// hash-once slab queries against the same prepared mask cache, so
    /// neither this call nor the 1-op string shims built on it pay a
    /// probe-batch assembly, a row-table derivation, or any per-call
    /// `Vec` allocation.
    ///
    /// # Panics
    ///
    /// Panics if `entry` is not a member of the cluster.
    pub fn lookup_from(&mut self, entry: MdsId, path: &str) -> QueryOutcome {
        self.maybe_drain();
        let fp = Fingerprint::of(path);
        let snap = self.routes.pin();
        self.lookup_one(&snap, entry, path, &fp)
    }

    /// Looks `path` up from `entry` through a **shared reference**: the
    /// lock-free concurrent lookup path. Pins the current routing
    /// snapshot and walks the full L1 → L4 escalation against it —
    /// candidate masks built on the fly from the pinned snapshot, level
    /// and latency statistics recorded into wait-free atomic counters
    /// (folded into [`stats`](GhbaCluster::stats) at the next `&mut`
    /// drain point), and pending same-era writes observed through the
    /// namespace-shard overlay — so any number of threads may call it
    /// while a [`ReconfigHandle`] publishes successor snapshots and
    /// other threads execute concurrent write batches. Level
    /// escalation, latency, and message accounting match
    /// [`lookup_from`](GhbaCluster::lookup_from) exactly when no
    /// reconfiguration or pending write interleaves (property-tested).
    /// No L1 cache fill is performed (the walk is read-only on `Mds`
    /// state).
    ///
    /// # Panics
    ///
    /// Panics if `entry` is not a member of the cluster.
    pub fn lookup_concurrent(&self, entry: MdsId, path: &str) -> QueryOutcome {
        let fp = Fingerprint::of(path);
        let snap = self.routes.pin();
        let mut memo = PinnedMemo::default();
        self.walk_pinned(&snap, entry, path, &fp, &mut memo)
    }

    /// Pins and returns the current routing snapshot (lock-free; the
    /// returned `Arc` stays valid across successor publishes). The
    /// pin-once pipeline calls this once per batch.
    pub(crate) fn pin_route_snapshot(&self) -> Arc<RouteSnapshot> {
        self.routes.pin()
    }

    /// Whether `candidate`'s live filter answers positive for `fp`,
    /// overlaid with this era's pending writes: a pending create at
    /// `candidate` probes positive even though the real filter has not
    /// been touched yet. A pending *remove* cannot be reflected (the
    /// counting filter only decrements at drain), so a stale positive
    /// survives until the drain — it fails verification and costs
    /// accounting, never a wrong home.
    fn probe_live_pinned(&self, candidate: MdsId, fp: &Fingerprint, overlay: OverlayEntry) -> bool {
        if overlay == OverlayEntry::Created(candidate) {
            return true;
        }
        self.mdss[&candidate].probe_live_fp(fp)
    }

    /// [`verify_at`](GhbaCluster::verify_at) overlaid with this era's
    /// pending writes: a pending create verifies at its recorded home,
    /// a pending remove verifies nowhere.
    fn verify_at_pinned(
        &self,
        candidate: MdsId,
        entry: MdsId,
        path: &str,
        overlay: OverlayEntry,
        latency: &mut Duration,
        messages: &mut u32,
    ) -> Option<MdsId> {
        let model = self.config.latency.clone();
        if candidate != entry {
            *messages += 2;
            *latency += model.unicast_rtt();
        }
        let mds = self.mdss.get(&candidate)?;
        *latency += mds.metadata_access_cost(&model);
        let stores = match overlay {
            OverlayEntry::Created(home) => candidate == home,
            OverlayEntry::Removed => false,
            OverlayEntry::Untracked => mds.stores(path),
        };
        stores.then_some(candidate)
    }

    /// Finishes a pinned walk: applies contention inflation, stamps the
    /// pinned epoch, and records level, latency, false-hit, and
    /// per-group load accounting into the atomic recorders.
    #[allow(clippy::too_many_arguments)]
    fn finish_pinned(
        &self,
        epoch: MembershipEpoch,
        gid: GroupId,
        entry: MdsId,
        home: Option<MdsId>,
        level: QueryLevel,
        latency: Duration,
        messages: u32,
        falses: [u64; 4],
    ) -> QueryOutcome {
        let outcome = self.readonly_outcome(epoch, entry, home, level, latency, messages);
        self.cstats.record_lookup(outcome.level, outcome.latency);
        self.cstats
            .record_false_hits(falses[0], falses[1], falses[2], falses[3]);
        self.cstats
            .record_group_walk(gid, entry, outcome.level, falses.iter().sum());
        outcome
    }

    /// The L1 → L4 escalation of one query against a pinned snapshot,
    /// from `&self`: the read engine of [`lookup_concurrent`] and of the
    /// pin-once batch pipeline's fused runs. `memo` caches the L2/L3
    /// candidate masks per `(entry, group)` for the lifetime the caller
    /// chooses (one call here, one chunk in a fused run) — memo reuse
    /// counts as a mask-cache hit in the atomic recorders, a build as a
    /// miss.
    ///
    /// [`lookup_concurrent`]: GhbaCluster::lookup_concurrent
    fn walk_pinned(
        &self,
        snap: &RouteSnapshot,
        entry: MdsId,
        path: &str,
        fp: &Fingerprint,
        memo: &mut PinnedMemo,
    ) -> QueryOutcome {
        assert!(self.mdss.contains_key(&entry), "unknown entry MDS");
        let overlay = self.shards.overlay_keyed(path, fp);
        let gid = snap.group_of(entry).expect("entry has a group");
        let model = self.config.latency.clone();
        let mut latency = model.dispatch;
        let mut messages = 0u32;
        let mut falses = [0u64; 4];

        // ---- L1: the entry server's LRU Bloom filter array. ----
        let l1_hit = self
            .mdss
            .get(&entry)
            .and_then(Mds::lru)
            .map(|lru| lru.query_fp(fp));
        if let Some(hit) = l1_hit {
            latency += model.memory_probe;
            if let Hit::Unique(candidate) = hit {
                if let Some(home) = self.verify_at_pinned(
                    candidate,
                    entry,
                    path,
                    overlay,
                    &mut latency,
                    &mut messages,
                ) {
                    return self.finish_pinned(
                        snap.epoch,
                        gid,
                        entry,
                        Some(home),
                        QueryLevel::L1Lru,
                        latency,
                        messages,
                        falses,
                    );
                }
                falses[0] += 1;
            }
        }

        // ---- L2: the entry's segment array (θ replicas + own). ----
        if let std::collections::hash_map::Entry::Vacant(slot) = memo.l2.entry(entry) {
            let tag = snap.group_epoch(gid);
            let l2 = match snap.masks.l2(entry, gid, tag) {
                Some(shared) => {
                    self.cstats.record_mask(true);
                    self.cstats.record_group_mask(gid, true);
                    shared
                }
                None => {
                    self.cstats.record_mask(false);
                    self.cstats.record_group_mask(gid, false);
                    let held = snap.replicas_held_by(entry);
                    let fresh = Arc::new(SharedL2 {
                        gid,
                        tag,
                        mask: snap.slab.subset_mask(held.iter().copied()),
                        held: held.len(),
                    });
                    snap.masks.put_l2(entry, Arc::clone(&fresh));
                    fresh
                }
            };
            slot.insert(l2);
        } else {
            self.cstats.record_mask(true);
            self.cstats.record_group_mask(gid, true);
        }
        let l2 = memo.l2.get(&entry).expect("just ensured");
        let hit = snap.slab.query_fp_masked(fp, &l2.mask);
        let held_len = l2.held;
        let resident = self.mdss[&entry].resident_replicas(held_len);
        latency += model.array_probe(held_len + 1, held_len - resident);
        let mut positives = hit.candidates().to_vec();
        if self.probe_live_pinned(entry, fp, overlay) {
            positives.push(entry);
        }
        if positives.len() == 1 {
            if let Some(home) = self.verify_at_pinned(
                positives[0],
                entry,
                path,
                overlay,
                &mut latency,
                &mut messages,
            ) {
                return self.finish_pinned(
                    snap.epoch,
                    gid,
                    entry,
                    Some(home),
                    QueryLevel::L2Segment,
                    latency,
                    messages,
                    falses,
                );
            }
            falses[1] += 1;
        }

        // ---- L3: multicast within the entry's group. ----
        if let std::collections::hash_map::Entry::Vacant(slot) = memo.l3.entry(gid) {
            let tag = snap.group_epoch(gid);
            let l3 = match snap.masks.l3(gid, tag) {
                Some(shared) => {
                    self.cstats.record_mask(true);
                    self.cstats.record_group_mask(gid, true);
                    shared
                }
                None => {
                    self.cstats.record_mask(false);
                    self.cstats.record_group_mask(gid, false);
                    let group = snap.group(gid).expect("entry's group is live");
                    let member_held: Vec<(MdsId, usize)> = group
                        .members()
                        .iter()
                        .map(|&member| (member, group.replicas_held_by(member).len()))
                        .collect();
                    let origins = group.replica_origins();
                    let fresh = Arc::new(SharedL3 {
                        tag,
                        mask: snap.slab.subset_mask(origins.iter().copied()),
                        member_held,
                    });
                    snap.masks.put_l3(gid, Arc::clone(&fresh));
                    fresh
                }
            };
            slot.insert(l3);
        } else {
            self.cstats.record_mask(true);
            self.cstats.record_group_mask(gid, true);
        }
        let l3 = memo.l3.get(&gid).expect("just ensured");
        let (mask, member_held) = (&l3.mask, &l3.member_held);
        let peer_count = member_held.len().saturating_sub(1);
        // Peers probe their held replicas in parallel: pay the slowest.
        let worst_probe = member_held
            .iter()
            .filter(|&&(member, _)| member != entry)
            .map(|&(member, held)| {
                let resident = self.mdss[&member].resident_replicas(held);
                model.array_probe(held + 1, held - resident)
            })
            .max()
            .unwrap_or(Duration::ZERO);
        let hit = snap.slab.query_fp_masked(fp, mask);
        messages += 2 * peer_count as u32;
        latency += model.multicast_rtt(peer_count) + worst_probe;
        let mut positives = hit.candidates().to_vec();
        for &(member, _) in member_held {
            if self.probe_live_pinned(member, fp, overlay) {
                positives.push(member);
            }
        }
        if positives.len() == 1 {
            if let Some(home) = self.verify_at_pinned(
                positives[0],
                entry,
                path,
                overlay,
                &mut latency,
                &mut messages,
            ) {
                return self.finish_pinned(
                    snap.epoch,
                    gid,
                    entry,
                    Some(home),
                    QueryLevel::L3Group,
                    latency,
                    messages,
                    falses,
                );
            }
            falses[2] += 1;
        }

        // ---- L4: system-wide multicast; authoritative. ----
        let others = self.server_count().saturating_sub(1);
        messages += 2 * others as u32;
        latency += model.multicast_rtt(others) + model.memory_probe;
        let mut found: Option<MdsId> = None;
        let mut verify_cost = Duration::ZERO;
        for (&id, mds) in &self.mdss {
            if self.probe_live_pinned(id, fp, overlay) {
                verify_cost = verify_cost.max(mds.metadata_access_cost(&model));
                let stores = match overlay {
                    OverlayEntry::Created(home) => id == home,
                    OverlayEntry::Removed => false,
                    OverlayEntry::Untracked => mds.stores(path),
                };
                if stores {
                    found = Some(id);
                } else {
                    falses[3] += 1;
                }
            }
        }
        latency += verify_cost;
        let level = match found {
            Some(_) => QueryLevel::L4Global,
            None => QueryLevel::Nonexistent,
        };
        self.finish_pinned(
            snap.epoch, gid, entry, found, level, latency, messages, falses,
        )
    }

    /// Resolves a fused run of lookups against a pinned snapshot from
    /// `&self`: cross-chunk `(entry, path)` dedup, then chunked walks
    /// across the exec pool with chunk-local arenas (each chunk memoizes
    /// its L2/L3 masks), outcomes spliced back in stream order. The
    /// read engine of [`execute_concurrent`] fused runs.
    ///
    /// [`execute_concurrent`]: crate::MetadataService::execute_concurrent
    pub(crate) fn lookup_fused_pinned(
        &self,
        snap: &RouteSnapshot,
        queries: &[(MdsId, &PathKey)],
    ) -> Vec<QueryOutcome> {
        if queries.is_empty() {
            return Vec::new();
        }
        let items: Vec<(MdsId, &str, Fingerprint)> = queries
            .iter()
            .map(|&(entry, key)| (entry, key.path(), *key.fingerprint()))
            .collect();
        if items.len() == 1 {
            let (entry, path, fp) = items[0];
            let mut memo = PinnedMemo::default();
            return vec![self.walk_pinned(snap, entry, path, &fp, &mut memo)];
        }
        let (uniques, assign) = resolve_unique(&items, |&(entry, path, _)| (entry, path));
        let deduped: Vec<(MdsId, &str, Fingerprint)> =
            uniques.iter().map(|&first| items[first as usize]).collect();
        let mut arenas: Vec<PinnedArena> = Vec::new();
        let used = run_chunked(
            &deduped,
            self.config.executor,
            &mut arenas,
            |chunk, arena| {
                for &(entry, path, fp) in chunk {
                    let outcome = self.walk_pinned(snap, entry, path, &fp, &mut arena.memo);
                    arena.outcomes.push(outcome);
                }
            },
        );
        let mut resolved: Vec<QueryOutcome> = Vec::with_capacity(deduped.len());
        for arena in arenas.iter_mut().take(used) {
            resolved.append(&mut arena.outcomes);
        }
        debug_assert_eq!(resolved.len(), deduped.len());
        assign
            .iter()
            .map(|&slot| resolved[slot as usize].clone())
            .collect()
    }

    /// Records a pending create of `key` at `home` from `&self` (the
    /// pin-once pipeline's write primitive). The real store and live
    /// filter are touched at drain time.
    pub(crate) fn apply_create_shared(&self, key: &PathKey, home: MdsId) {
        debug_assert!(self.mdss.contains_key(&home), "home must exist");
        self.shards.record_create(key, home);
    }

    /// Records a pending removal of `key` from `&self`, returning the
    /// home it will be removed from: the overlay answers for paths this
    /// era already wrote, the authoritative stores for the rest (safe to
    /// sweep from `&self` — `mdss` only mutates under `&mut`, which
    /// cannot run concurrently).
    pub(crate) fn apply_remove_shared(&self, key: &PathKey) -> Option<MdsId> {
        match self.shards.overlay(key) {
            OverlayEntry::Created(home) => {
                self.shards.record_remove(key, home);
                Some(home)
            }
            OverlayEntry::Removed => None,
            OverlayEntry::Untracked => {
                let home = self.true_home(key.path())?;
                self.shards.record_remove(key, home);
                Some(home)
            }
        }
    }

    /// Folds this era's pending create bits into the published probe
    /// columns: one staging pass under the slab writer lock, one
    /// [`SlabOp::Delta`] per touched home, one atomic snapshot swap —
    /// exactly the publish path the sequential update protocol uses, so
    /// readers never observe a half-published column. Called once per
    /// concurrent batch by the pipeline.
    ///
    /// Only creates stage (published columns are plain Bloom filters;
    /// removes stay invisible to probes until the owner drain), and the
    /// touched homes are marked for the drain to reconcile their
    /// server-side published filters. Replica-update traffic is
    /// accounted per staged home as one ideal multicast to every
    /// foreign group — a simplification of `push_update`'s per-group
    /// IDBFA location, recorded into the atomic stats.
    ///
    /// Staging runs at the sequential pipeline's publish cadence, not
    /// per batch: a home's creates accumulate in its staging buffer
    /// (visible to every walk through the overlay) until enough are
    /// pending to plausibly cross the drift threshold — the same
    /// per-origin amortization `maybe_publish`'s gate gives the funnel.
    /// A batch with no ripe home pays one atomic load (plus one short
    /// buffer-map lock past the total-count bar) and never touches the
    /// writer lock.
    pub(crate) fn commit_concurrent(&self) {
        let gate = self.config.publish_gate();
        if self.shards.unpublished_create_count() < gate {
            return;
        }
        // Extraction transfers ownership of the ripe fingerprints to
        // this committer, so racing committers stage disjoint sets.
        let pending = self.shards.stage_ripe_creates(gate);
        if pending.is_empty() {
            return;
        }
        let model = self.config.latency.clone();
        let routes = Arc::clone(&self.routes);
        // The writer lock serializes this staging pass with every other
        // publisher (other committers, push_update, reconfig handles),
        // so each delta is computed against exactly the columns it will
        // apply to.
        let mut edit = RouteEdit::begin(&routes, self.config.epoch_granularity);
        let mut ops: Vec<(MdsId, FilterDelta)> = Vec::new();
        let foreign_groups = edit.work.groups.len().saturating_sub(1);
        for (home, fps) in pending {
            // A column may be absent (the home retired concurrently);
            // its creates stay in the log for the owner drain.
            let Some(old) = edit.work.slab.extract(home) else {
                continue;
            };
            let mut fresh = old.clone();
            for fp in &fps {
                fresh.insert_fp(fp);
            }
            let Ok(delta) = FilterDelta::between(&old, &fresh) else {
                continue;
            };
            if delta.is_empty() {
                continue;
            }
            if foreign_groups > 0 {
                let bytes = delta.wire_bytes() as u64 * foreign_groups as u64;
                self.cstats.record_update(
                    foreign_groups as u64,
                    bytes,
                    model.multicast_rtt(foreign_groups),
                );
            }
            ops.push((home, delta));
        }
        let staged: Vec<MdsId> = ops.iter().map(|&(home, _)| home).collect();
        for (home, delta) in ops {
            edit.push_op(SlabOp::Delta(home, delta));
        }
        edit.commit();
        if !staged.is_empty() {
            self.shards.mark_staged(staged);
        }
    }

    /// Drains pending concurrent state if any exists: the cheap
    /// two-atomic-load gate every `&mut` entry point passes through.
    pub(crate) fn maybe_drain(&mut self) {
        if self.shards.is_dirty() || self.cstats.is_dirty() {
            self.drain_concurrent();
        }
    }

    /// Reconciles everything the `&self` pipeline deferred: folds the
    /// atomic statistics into [`stats`](GhbaCluster::stats), replays the
    /// namespace shards' ordered write logs against the authoritative
    /// stores and live filters (shard-index order; per-path order is
    /// total because a path always hashes to the same shard), and syncs
    /// each staged home's server-side published filter with its slab
    /// column so `column == published` holds again (the
    /// [`check_invariants`](GhbaCluster::check_invariants) contract).
    ///
    /// Runs automatically at every `&mut` entry point (lookups, writes,
    /// updates, reconfigurations, stat resets); call it explicitly
    /// before inspecting state through `&self` views such as
    /// [`true_home`](GhbaCluster::true_home) or `check_invariants`
    /// after concurrent batches.
    pub fn drain_concurrent(&mut self) {
        let (hits, misses) = self.cstats.fold_into(&mut self.stats);
        self.mask_cache.life.absorb(hits, misses);
        if !self.shards.is_dirty() {
            return;
        }
        let (records, staged) = self.shards.take_all();
        // Write-ahead: the drained batch is logged (and, per policy,
        // synced) before any of its effects publish — recovery can then
        // never observe an effect the log is missing.
        if let Some(wal) = self.wal.as_mut() {
            wal.append_drain(&records, &staged)
                .expect("WAL append failed: cannot publish unlogged effects");
        }
        self.apply_write_records(&records);
        self.reconcile_staged(&staged);
        self.maybe_checkpoint();
    }

    /// Replays drained write records against the authoritative stores
    /// and live filters (shard-index order; per-path order is total
    /// because a path always hashes to the same shard).
    pub(crate) fn apply_write_records(&mut self, records: &[WriteRecord]) {
        for record in records {
            match record.kind {
                WriteKind::Create(home) => {
                    self.mdss
                        .get_mut(&home)
                        .expect("pending create targets a live home")
                        .create_local_fp(&record.path, &record.fp);
                }
                WriteKind::Remove(home) => {
                    // The home may have retired since the record was
                    // appended; its store went with it.
                    if let Some(mds) = self.mdss.get_mut(&home) {
                        mds.remove_local_fp(&record.path, &record.fp);
                    }
                }
            }
        }
    }

    /// Syncs each staged home's server-side published filter with its
    /// slab column so `column == published` holds again.
    ///
    /// No per-record `maybe_publish`: staged create bits are already in
    /// the columns, and the gated publish cadence resumes with the next
    /// owner-side write.
    pub(crate) fn reconcile_staged(&mut self, staged: &[MdsId]) {
        if staged.is_empty() {
            return;
        }
        let routes = Arc::clone(&self.routes);
        let mut edit = RouteEdit::begin(&routes, self.config.epoch_granularity);
        let mut ops: Vec<(MdsId, FilterDelta)> = Vec::new();
        for &home in staged {
            let Some(mds) = self.mdss.get_mut(&home) else {
                continue;
            };
            // Refresh the server's own published filter from its
            // (just replayed) live state, then overwrite the
            // column's changed words to match it exactly.
            let _ = mds.publish();
            let Some(column) = edit.work.slab.extract(home) else {
                continue;
            };
            if let Ok(delta) = FilterDelta::between(&column, mds.published()) {
                if !delta.is_empty() {
                    ops.push((home, delta));
                }
            }
        }
        for (home, delta) in ops {
            edit.push_op(SlabOp::Delta(home, delta));
        }
        edit.commit();
    }

    /// Pending concurrent write records awaiting the next
    /// [`drain_concurrent`](GhbaCluster::drain_concurrent) — the
    /// namespace shard logs' combined length. Zero (lock-free) when the
    /// cluster is clean. Network replicas report this through their
    /// drain acknowledgements so tests can observe the background
    /// reconciler keeping the logs bounded.
    #[must_use]
    pub fn pending_concurrent_writes(&self) -> u64 {
        self.shards.pending_record_count()
    }

    /// Finishes a side-effect-free lookup: applies the contention
    /// inflation and stamps the pinned epoch, touching no statistics and
    /// no caches.
    fn readonly_outcome(
        &self,
        epoch: MembershipEpoch,
        entry: MdsId,
        home: Option<MdsId>,
        level: QueryLevel,
        latency: Duration,
        messages: u32,
    ) -> QueryOutcome {
        let latency = latency.mul_f64(self.config.contention_factor(messages));
        QueryOutcome {
            home,
            level,
            latency,
            messages,
            entry,
            epoch,
        }
    }

    /// Looks up a batch of paths, each from a uniformly random entry MDS —
    /// the paper's client model applied to a burst of concurrent requests.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has no servers.
    pub fn lookup_batch<S: AsRef<str>>(&mut self, paths: &[S]) -> Vec<QueryOutcome> {
        assert!(!self.mdss.is_empty(), "cluster has no servers");
        let queries: Vec<(MdsId, &str)> = paths
            .iter()
            .map(|path| (self.pick_random_mds(), path.as_ref()))
            .collect();
        self.lookup_batch_from(&queries)
    }

    /// Resolves a batch of concurrent lookups, walking the L1 → L4
    /// hierarchy **level by level across the whole batch**: every query
    /// still past L1 joins one [`ProbeBatch`] against the published slab
    /// at L2, and again (group-masked) at L3, so the slab's `k` probe rows
    /// per fingerprint are resolved in one sorted, prefetched pass per
    /// level instead of one dependent walk per query. Batches of at
    /// least `executor.min_parallel_batch` queries additionally split
    /// into `executor.workers` chunks walked concurrently against the
    /// shared read-only slab (bit-identical outcomes; see the
    /// [`crate::exec`] module docs and [`ExecutorConfig`]).
    ///
    /// [`ExecutorConfig`]: crate::ExecutorConfig
    ///
    /// Per-query accounting (latency, messages, level counters) is
    /// identical to running [`lookup_from`](GhbaCluster::lookup_from) once
    /// per query; the only visible difference is the concurrent-request
    /// model: the queries of one batch model simultaneous clients, so no
    /// L1 cache fill produced by one query of the batch (at any level)
    /// is observed by another query of the same batch — fills apply in
    /// stream order when the batch completes. Observable only through an
    /// L1 Bloom false positive or an LRU eviction reordering, both
    /// vanishingly rare at sane L1 geometries; the vectored op pipeline
    /// additionally splits fused runs at repeated `(entry, path)` pairs,
    /// so the common hot-repeat case stays exact.
    ///
    /// # Panics
    ///
    /// Panics if any entry is not a member of the cluster.
    pub fn lookup_batch_from(&mut self, queries: &[(MdsId, &str)]) -> Vec<QueryOutcome> {
        // Hash each path once at its entry server; the fingerprint drives
        // every filter probe of the whole L1 → L4 escalation (and in a
        // real deployment travels inside the multicast probe messages).
        let prehashed: Vec<(MdsId, &str, Fingerprint)> = queries
            .iter()
            .map(|&(entry, path)| (entry, path, Fingerprint::of(path)))
            .collect();
        self.lookup_batch_prehashed(&prehashed)
    }

    /// The batched walk behind [`lookup_batch_from`], taking queries whose
    /// fingerprints were already computed (at batch admission by the
    /// vectored op pipeline, or just above for string callers).
    ///
    /// Execution is split into three phases:
    ///
    /// 1. **Prepare** (dispatching thread, mutating) — validate or
    ///    rebuild the L2/L3 mask-cache entries every query may consult
    ///    ([`prepare_masks`](Self::prepare_masks)).
    /// 2. **Read** (parallel when `executor.workers > 1` and the batch
    ///    reaches `executor.min_parallel_batch`) — the batch splits into
    ///    contiguous per-worker chunks, each walking L1–L4 against the
    ///    shared read-only slab with its own scratch arena
    ///    ([`walk_chunk`](Self::walk_chunk)); `workers = 1` and
    ///    sub-threshold batches walk one chunk inline with no pool
    ///    involvement.
    /// 3. **Splice** (dispatching thread, mutating) — verdicts are
    ///    stitched back **in stream order** and their deferred effects
    ///    (LRU fills, counters, statistics) applied
    ///    ([`apply_verdict`](Self::apply_verdict)).
    ///
    /// Outcomes are bit-identical at every worker count: the read phase
    /// is a pure function of the prepared state, and the splice applies
    /// effects exactly as a stream-ordered drain would (property-tested
    /// across worker counts, schemes, and reconfig interleavings).
    ///
    /// # Panics
    ///
    /// Panics if any entry is not a member of the cluster (in a parallel
    /// walk the assert fires on the worker owning the chunk and the
    /// panic is re-raised here, after sibling chunks finish).
    ///
    /// [`lookup_batch_from`]: GhbaCluster::lookup_batch_from
    pub(crate) fn lookup_batch_prehashed(
        &mut self,
        queries: &[(MdsId, &str, Fingerprint)],
    ) -> Vec<QueryOutcome> {
        self.maybe_drain();
        let total = queries.len();
        if total == 0 {
            return Vec::new();
        }
        // Pin one routing snapshot for the whole batch: every query of
        // the batch — across every worker chunk — resolves against this
        // one consistent configuration, however many reconfigurations
        // publish successors while the walk runs.
        let snap = self.routes.pin();
        if total == 1 {
            // The scratch-reusing scalar fast path (no batch plumbing).
            let (entry, path, fp) = queries[0];
            return vec![self.lookup_one(&snap, entry, path, &fp)];
        }
        self.prepare_masks(&snap, queries);
        // Cross-chunk fingerprint dedup: a Zipf-head batch repeats hot
        // `(entry, path)` pairs, and chunk-local memoization cannot see
        // repeats landing in other workers' chunks. The read phase is a
        // pure function of `(entry, path)` under the pinned snapshot, so
        // each distinct pair walks once and duplicates share the verdict
        // — effects still apply once per occurrence, in stream order.
        let (uniques, assign) = resolve_unique(queries, |&(entry, path, _)| (entry, path));
        let deduped: Vec<(MdsId, &str, Fingerprint)> = uniques
            .iter()
            .map(|&first| queries[first as usize])
            .collect();
        let executor = self.config.executor;
        let mut arenas = core::mem::take(&mut self.scratch);
        let walked = {
            let shared: &GhbaCluster = self;
            let snap = &snap;
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_chunked(&deduped, executor, &mut arenas, |chunk, arena| {
                    shared.walk_chunk(snap, chunk, arena)
                })
            }))
        };
        let used = match walked {
            Ok(used) => used,
            Err(payload) => {
                // A poisoned chunk must not cost the cluster its warmed
                // per-worker arenas: restore them before re-raising.
                self.scratch = arenas;
                std::panic::resume_unwind(payload);
            }
        };
        let mut resolved: Vec<WalkVerdict> = Vec::with_capacity(deduped.len());
        for arena in arenas.iter_mut().take(used) {
            resolved.append(&mut arena.verdicts);
        }
        debug_assert_eq!(
            resolved.len(),
            deduped.len(),
            "chunks cover the deduplicated batch exactly once"
        );
        let mut outcomes = Vec::with_capacity(total);
        for (qi, &slot) in assign.iter().enumerate() {
            let (entry, _, fp) = queries[qi];
            let verdict = resolved[slot as usize].clone();
            // Load telemetry mirrors the pinned walk: one record per
            // occurrence (duplicates are real traffic), attributed to
            // the entry's group under the batch's pinned snapshot.
            if let Some(gid) = snap.group_of(entry) {
                let group_falses = u64::from(verdict.l1_false)
                    + u64::from(verdict.l2_false)
                    + u64::from(verdict.l3_false)
                    + u64::from(verdict.l4_disk_checks);
                self.cstats
                    .record_group_walk(gid, entry, verdict.outcome.level, group_falses);
            }
            outcomes.push(self.apply_verdict(&fp, verdict));
        }
        self.scratch = arenas;
        outcomes
    }

    /// Validates (or rebuilds) the mask-cache entries every query of the
    /// walk may consult — the L2 snapshot of each entry server and the
    /// L3 snapshot of its group — on the dispatching thread, *before*
    /// the (possibly parallel) read phase, which then consults the cache
    /// strictly read-only.
    ///
    /// Validity under [`MaskCacheMode::Persistent`](crate::MaskCacheMode)
    /// is per entry: a snapshot is fresh iff its group tag matches the
    /// group's current [`GroupEpoch`] (and, for L2, the server still
    /// belongs to the group it was built under — splits and merges move
    /// servers without touching their ids). Hit/miss accounting is one
    /// L2 + one L3 consultation per query; the pre-parallel walk
    /// consulted L3 only for queries escalating past L2, so
    /// Persistent-mode totals are a slight upper bound of the old
    /// accounting, with identical rates at the batch sizes the figure
    /// binaries read.
    fn prepare_masks(&mut self, snap: &RouteSnapshot, queries: &[(MdsId, &str, Fingerprint)]) {
        if self
            .mask_cache
            .life
            .begin_walk_keyed(self.config.mask_cache)
        {
            self.mask_cache.clear();
        }
        // Open a walk generation; at the sweep cadence this also evicts
        // masks no walk has consulted lately (live-but-idle entries the
        // per-group epoch tags would otherwise keep forever).
        self.stats.mask_cache_evictions += self.mask_cache.begin_generation();
        let generation = self.mask_cache.generation;
        for &(entry, _, _) in queries {
            // Unknown entries panic inside the walk itself (same message
            // and per-query position as ever); skip them here.
            let Some(gid) = snap.group_of(entry) else {
                continue;
            };
            let tag = snap.group_epoch(gid);
            let l2_fresh = self
                .mask_cache
                .l2_consult(entry)
                .is_some_and(|e| e.gid == gid && e.tag == tag);
            self.cstats.record_group_mask(gid, l2_fresh);
            if l2_fresh {
                self.mask_cache.life.hit();
                self.stats.mask_cache_hits += 1;
            } else {
                self.mask_cache.life.miss();
                self.stats.mask_cache_misses += 1;
                let held = snap.replicas_held_by(entry);
                let mask = snap.slab.subset_mask(held.iter().copied());
                self.mask_cache.upsert_l2(L2Mask {
                    entry,
                    gid,
                    tag,
                    held: held.len(),
                    mask,
                    last_used: generation,
                });
            }
            let l3_fresh = self
                .mask_cache
                .l3_consult(gid)
                .is_some_and(|e| e.tag == tag);
            self.cstats.record_group_mask(gid, l3_fresh);
            if l3_fresh {
                self.mask_cache.life.hit();
                self.stats.mask_cache_hits += 1;
            } else {
                self.mask_cache.life.miss();
                self.stats.mask_cache_misses += 1;
                let group = snap.group(gid).expect("entry's group is live");
                let member_held: Vec<(MdsId, usize)> = group
                    .members()
                    .iter()
                    .map(|&member| (member, group.replicas_held_by(member).len()))
                    .collect();
                // The group's replicas collectively mirror every server
                // outside it: one masked slab probe covers all of them,
                // and recipients reuse the fingerprint shipped with the
                // multicast for their live probes.
                let origins = group.replica_origins();
                let mask = snap.slab.subset_mask(origins.iter().copied());
                self.mask_cache.upsert_l3(L3Mask {
                    gid,
                    tag,
                    member_held,
                    mask,
                    last_used: generation,
                });
            }
        }
    }

    /// Resolves one chunk of a batched walk **read-only**: the L1 → L4
    /// escalation runs level by level across the chunk (one probe-batch
    /// slab pass per level, exactly the pre-parallel schedule), with
    /// every side effect deferred into `scratch.verdicts` for the splice
    /// phase. Requires [`prepare_masks`](Self::prepare_masks) to have
    /// covered every query's entry and group.
    ///
    /// # Panics
    ///
    /// Panics if any entry is not a member of the cluster.
    fn walk_chunk(
        &self,
        snap: &RouteSnapshot,
        queries: &[(MdsId, &str, Fingerprint)],
        scratch: &mut WalkScratch,
    ) {
        let WalkScratch {
            batch,
            live_rows,
            verdicts,
            slots,
            falses,
            latency,
            messages,
            fps,
        } = scratch;
        let model = self.config.latency.clone();
        let total = queries.len();
        verdicts.clear();
        slots.clear();
        slots.resize(total, None);
        falses.clear();
        falses.resize(total, [0; 4]);
        latency.clear();
        latency.resize(total, model.dispatch);
        messages.clear();
        messages.resize(total, 0);
        fps.clear();
        fps.extend(queries.iter().map(|&(_, _, fp)| fp));
        // Every live-filter probe of the walk (the entry's at L2, group
        // members' at L3, the global L4 sweep) shares one row table,
        // derived once per chunk through the ProbeBatch fastmod machinery
        // instead of once per (query, server) pair. Live filters share
        // [`published_shape`], so one derivation serves them all.
        let live_shape = published_shape(&self.config);
        let k_live = live_shape.hashes as usize;
        batch.clear();
        for fp in fps.iter() {
            batch.push(*fp);
        }
        batch.derive_rows_into(live_shape, live_rows);
        let mut active: Vec<usize> = Vec::with_capacity(total);

        // ---- L1: each entry server's LRU Bloom filter array. ----
        for (qi, &(entry, path, _)) in queries.iter().enumerate() {
            assert!(self.mdss.contains_key(&entry), "unknown entry MDS");
            let fp = fps[qi];
            let l1_hit = self
                .mdss
                .get(&entry)
                .and_then(Mds::lru)
                .map(|lru| lru.query_fp(&fp));
            if let Some(hit) = l1_hit {
                latency[qi] += model.memory_probe; // small resident array
                if let Hit::Unique(candidate) = hit {
                    if let Some(home) =
                        self.verify_at(candidate, entry, path, &mut latency[qi], &mut messages[qi])
                    {
                        slots[qi] = Some(self.assemble(
                            entry,
                            home,
                            QueryLevel::L1Lru,
                            latency[qi],
                            messages[qi],
                            falses[qi],
                            snap.epoch,
                        ));
                        continue;
                    }
                    falses[qi][0] += 1;
                }
            }
            active.push(qi);
        }

        // ---- L2: every entry server's segment array (θ replicas + own):
        // one batched masked probe of the published slab for the whole
        // chunk, with candidate masks and held counts read from the
        // prepared cache; the budget-sensitive probe duration is
        // recomputed here, inside the run, where no write can interleave.
        batch.clear();
        for &qi in &active {
            let (entry, _, _) = queries[qi];
            let l2 = self.mask_cache.l2(entry).expect("L2 mask prepared");
            let resident = self.mdss[&entry].resident_replicas(l2.held);
            latency[qi] += model.array_probe(l2.held + 1, l2.held - resident);
            batch.push_masked(fps[qi], l2.mask.clone());
        }
        let hits = snap.slab.query_batch(batch);
        let mut next_active = Vec::with_capacity(active.len());
        for (&qi, hit) in active.iter().zip(&hits) {
            let (entry, path, _) = queries[qi];
            let mut positives = hit.candidates().to_vec();
            if self.mdss[&entry].probe_live_rows(&live_rows[qi * k_live..(qi + 1) * k_live]) {
                positives.push(entry);
            }
            if positives.len() == 1 {
                let candidate = positives[0];
                if let Some(home) =
                    self.verify_at(candidate, entry, path, &mut latency[qi], &mut messages[qi])
                {
                    slots[qi] = Some(self.assemble(
                        entry,
                        home,
                        QueryLevel::L2Segment,
                        latency[qi],
                        messages[qi],
                        falses[qi],
                        snap.epoch,
                    ));
                    continue;
                }
                falses[qi][1] += 1;
            }
            next_active.push(qi);
        }
        let active = next_active;

        // ---- L3: multicast within each entry server's group; the
        // group-mirror probes of the whole chunk share one slab pass,
        // reading each group's member snapshot and origin mask from the
        // prepared cache. The budget-sensitive probe durations and the
        // entry-dependent worst-peer max reduce over the snapshot per
        // query.
        batch.clear();
        for &qi in &active {
            let (entry, _, _) = queries[qi];
            let gid = snap.group_of(entry).expect("entry has a group");
            let l3 = self.mask_cache.l3(gid).expect("L3 mask prepared");
            let peer_count = l3.member_held.len().saturating_sub(1);
            messages[qi] += 2 * peer_count as u32;
            latency[qi] += model.multicast_rtt(peer_count);
            // Peers probe their held replicas in parallel: pay the slowest.
            let worst_probe = l3
                .member_held
                .iter()
                .filter(|&&(member, _)| member != entry)
                .map(|&(member, held)| {
                    let resident = self.mdss[&member].resident_replicas(held);
                    model.array_probe(held + 1, held - resident)
                })
                .max()
                .unwrap_or(Duration::ZERO);
            latency[qi] += worst_probe;
            batch.push_masked(fps[qi], l3.mask.clone());
        }
        let hits = snap.slab.query_batch(batch);
        let mut next_active = Vec::with_capacity(active.len());
        // Members' live-filter answers depend only on (group, fingerprint):
        // flash-crowd duplicates within the chunk probe each group's
        // member filters once and reuse the verdict.
        let mut l3_live: Vec<(GroupId, (u64, u64), Vec<MdsId>)> = Vec::new();
        for (&qi, hit) in active.iter().zip(&hits) {
            let (entry, path, _) = queries[qi];
            let gid = snap.group_of(entry).expect("entry has a group");
            let mut positives = hit.candidates().to_vec();
            let lanes = fps[qi].lanes();
            let live = match l3_live
                .iter()
                .find(|(id, key, _)| *id == gid && *key == lanes)
            {
                Some(cached) => &cached.2,
                None => {
                    let rows = &live_rows[qi * k_live..(qi + 1) * k_live];
                    let members: Vec<MdsId> = snap
                        .group(gid)
                        .expect("entry's group is live")
                        .members()
                        .iter()
                        .copied()
                        .filter(|member| self.mdss[member].probe_live_rows(rows))
                        .collect();
                    l3_live.push((gid, lanes, members));
                    &l3_live.last().expect("just pushed").2
                }
            };
            positives.extend_from_slice(live);
            if positives.len() == 1 {
                let candidate = positives[0];
                if let Some(home) =
                    self.verify_at(candidate, entry, path, &mut latency[qi], &mut messages[qi])
                {
                    slots[qi] = Some(self.assemble(
                        entry,
                        home,
                        QueryLevel::L3Group,
                        latency[qi],
                        messages[qi],
                        falses[qi],
                        snap.epoch,
                    ));
                    continue;
                }
                falses[qi][2] += 1;
            }
            next_active.push(qi);
        }
        let active = next_active;

        // ---- L4: system-wide multicast; authoritative. The recipients'
        // live-filter probes reuse the chunk's precomputed row table
        // (each fingerprint's rows derived once, not once per server). ----
        for &qi in &active {
            let (entry, path, _) = queries[qi];
            let rows = &live_rows[qi * k_live..(qi + 1) * k_live];
            let others = self.server_count().saturating_sub(1);
            messages[qi] += 2 * others as u32;
            latency[qi] += model.multicast_rtt(others);
            // Every server probes its live local filter in parallel
            // (memory); positives verify against their store.
            latency[qi] += model.memory_probe;
            let mut found: Option<MdsId> = None;
            let mut verify_cost = Duration::ZERO;
            for (&id, mds) in &self.mdss {
                if mds.probe_live_rows(rows) {
                    let cost = mds.metadata_access_cost(&model);
                    verify_cost = verify_cost.max(cost);
                    if mds.stores(path) {
                        found = Some(id);
                    } else {
                        falses[qi][3] += 1;
                    }
                }
            }
            latency[qi] += verify_cost;
            slots[qi] = Some(match found {
                Some(home) => self.assemble(
                    entry,
                    home,
                    QueryLevel::L4Global,
                    latency[qi],
                    messages[qi],
                    falses[qi],
                    snap.epoch,
                ),
                None => {
                    let latency = latency[qi].mul_f64(self.config.contention_factor(messages[qi]));
                    WalkVerdict {
                        outcome: QueryOutcome {
                            home: None,
                            level: QueryLevel::Nonexistent,
                            latency,
                            messages: messages[qi],
                            entry,
                            epoch: snap.epoch,
                        },
                        l1_false: falses[qi][0],
                        l2_false: falses[qi][1],
                        l3_false: falses[qi][2],
                        l4_disk_checks: falses[qi][3],
                    }
                }
            });
        }

        batch.clear();
        live_rows.clear();
        verdicts.extend(
            slots
                .drain(..)
                .map(|slot| slot.expect("every query resolved by L4")),
        );
    }

    /// Builds the read-phase verdict of a resolved query: the finished
    /// [`QueryOutcome`] (contention inflation applied) plus the false-hit
    /// tallies the splice phase will account. Pure — the mutating
    /// counterpart is [`apply_verdict`](Self::apply_verdict).
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        &self,
        entry: MdsId,
        home: MdsId,
        level: QueryLevel,
        latency: Duration,
        messages: u32,
        falses: [u32; 4],
        epoch: MembershipEpoch,
    ) -> WalkVerdict {
        let latency = latency.mul_f64(self.config.contention_factor(messages));
        WalkVerdict {
            outcome: QueryOutcome {
                home: Some(home),
                level,
                latency,
                messages,
                entry,
                epoch,
            },
            l1_false: falses[0],
            l2_false: falses[1],
            l3_false: falses[2],
            l4_disk_checks: falses[3],
        }
    }

    /// Applies one resolved query's deferred effects — false-hit
    /// counters, the LRU fill at its entry server, level and latency
    /// statistics — and returns the outcome. The splice phase calls this
    /// in stream order, so N parallel chunks leave exactly the
    /// statistics and L1 state a single-threaded stream drain would.
    fn apply_verdict(&mut self, fp: &Fingerprint, verdict: WalkVerdict) -> QueryOutcome {
        let WalkVerdict {
            outcome,
            l1_false,
            l2_false,
            l3_false,
            l4_disk_checks,
        } = verdict;
        for (label, count) in [
            ("l1_false_hits", l1_false),
            ("l2_false_hits", l2_false),
            ("l3_false_hits", l3_false),
            ("l4_false_positive_disk_checks", l4_disk_checks),
        ] {
            if count > 0 {
                self.stats.counters.add(label, count.into());
            }
        }
        if let Some(home) = outcome.home {
            if let Some(lru) = self.mdss.get_mut(&outcome.entry).and_then(Mds::lru_mut) {
                lru.record_fp(fp, home);
            }
        }
        self.stats.levels.record(outcome.level);
        self.stats.lookup_latency.record(outcome.latency);
        outcome
    }

    /// The scalar walk behind [`lookup_from`](GhbaCluster::lookup_from)
    /// and the B = 1 batches of the string shims: the same escalation,
    /// mask-cache consultation, and accounting as a one-query
    /// [`walk_chunk`](Self::walk_chunk), with the probe-batch machinery
    /// replaced by scalar hash-once slab queries and effects applied
    /// inline. The batch-equivalence tests pin the two walks identical.
    fn lookup_one(
        &mut self,
        snap: &RouteSnapshot,
        entry: MdsId,
        path: &str,
        fp: &Fingerprint,
    ) -> QueryOutcome {
        assert!(self.mdss.contains_key(&entry), "unknown entry MDS");
        self.prepare_masks(snap, &[(entry, path, *fp)]);
        let gid = snap.group_of(entry).expect("entry has a group");
        let model = self.config.latency.clone();
        let mut latency = model.dispatch;
        let mut messages = 0u32;
        let mut group_falses = 0u64;

        // ---- L1: the entry server's LRU Bloom filter array. ----
        let l1_hit = self
            .mdss
            .get(&entry)
            .and_then(Mds::lru)
            .map(|lru| lru.query_fp(fp));
        if let Some(hit) = l1_hit {
            latency += model.memory_probe;
            if let Hit::Unique(candidate) = hit {
                if let Some(home) =
                    self.verify_at(candidate, entry, path, &mut latency, &mut messages)
                {
                    self.cstats
                        .record_group_walk(gid, entry, QueryLevel::L1Lru, group_falses);
                    return self.finish(
                        entry,
                        fp,
                        home,
                        QueryLevel::L1Lru,
                        latency,
                        messages,
                        snap.epoch,
                    );
                }
                self.stats.counters.incr("l1_false_hits");
                group_falses += 1;
            }
        }

        // ---- L2: the entry's segment array (θ replicas + own). ----
        let (hit, held) = {
            let l2 = self.mask_cache.l2(entry).expect("prepared just above");
            (snap.slab.query_fp_masked(fp, &l2.mask), l2.held)
        };
        let resident = self.mdss[&entry].resident_replicas(held);
        latency += model.array_probe(held + 1, held - resident);
        let mut positives = hit.candidates().to_vec();
        if self.mdss[&entry].probe_live_fp(fp) {
            positives.push(entry);
        }
        if positives.len() == 1 {
            if let Some(home) =
                self.verify_at(positives[0], entry, path, &mut latency, &mut messages)
            {
                self.cstats
                    .record_group_walk(gid, entry, QueryLevel::L2Segment, group_falses);
                return self.finish(
                    entry,
                    fp,
                    home,
                    QueryLevel::L2Segment,
                    latency,
                    messages,
                    snap.epoch,
                );
            }
            self.stats.counters.incr("l2_false_hits");
            group_falses += 1;
        }

        // ---- L3: multicast within the entry's group. ----
        let (hit, peer_count, worst_probe) = {
            let l3 = self.mask_cache.l3(gid).expect("prepared just above");
            let peer_count = l3.member_held.len().saturating_sub(1);
            // Peers probe their held replicas in parallel: pay the slowest.
            let worst_probe = l3
                .member_held
                .iter()
                .filter(|&&(member, _)| member != entry)
                .map(|&(member, held)| {
                    let resident = self.mdss[&member].resident_replicas(held);
                    model.array_probe(held + 1, held - resident)
                })
                .max()
                .unwrap_or(Duration::ZERO);
            (
                snap.slab.query_fp_masked(fp, &l3.mask),
                peer_count,
                worst_probe,
            )
        };
        messages += 2 * peer_count as u32;
        latency += model.multicast_rtt(peer_count) + worst_probe;
        let mut positives = hit.candidates().to_vec();
        for member in snap.group(gid).expect("entry's group is live").members() {
            if self.mdss[member].probe_live_fp(fp) {
                positives.push(*member);
            }
        }
        if positives.len() == 1 {
            if let Some(home) =
                self.verify_at(positives[0], entry, path, &mut latency, &mut messages)
            {
                self.cstats
                    .record_group_walk(gid, entry, QueryLevel::L3Group, group_falses);
                return self.finish(
                    entry,
                    fp,
                    home,
                    QueryLevel::L3Group,
                    latency,
                    messages,
                    snap.epoch,
                );
            }
            self.stats.counters.incr("l3_false_hits");
            group_falses += 1;
        }

        // ---- L4: system-wide multicast; authoritative. ----
        let others = self.server_count().saturating_sub(1);
        messages += 2 * others as u32;
        latency += model.multicast_rtt(others) + model.memory_probe;
        let mut found: Option<MdsId> = None;
        let mut verify_cost = Duration::ZERO;
        let mut disk_checks = 0u64;
        for (&id, mds) in &self.mdss {
            if mds.probe_live_fp(fp) {
                verify_cost = verify_cost.max(mds.metadata_access_cost(&model));
                if mds.stores(path) {
                    found = Some(id);
                } else {
                    disk_checks += 1;
                }
            }
        }
        latency += verify_cost;
        if disk_checks > 0 {
            self.stats
                .counters
                .add("l4_false_positive_disk_checks", disk_checks);
            group_falses += disk_checks;
        }
        let load_level = match found {
            Some(_) => QueryLevel::L4Global,
            None => QueryLevel::Nonexistent,
        };
        self.cstats
            .record_group_walk(gid, entry, load_level, group_falses);
        match found {
            Some(home) => self.finish(
                entry,
                fp,
                home,
                QueryLevel::L4Global,
                latency,
                messages,
                snap.epoch,
            ),
            None => {
                let latency = latency.mul_f64(self.config.contention_factor(messages));
                self.stats.levels.record(QueryLevel::Nonexistent);
                self.stats.lookup_latency.record(latency);
                QueryOutcome {
                    home: None,
                    level: QueryLevel::Nonexistent,
                    latency,
                    messages,
                    entry,
                    epoch: snap.epoch,
                }
            }
        }
    }

    /// Forwards the query to `candidate` and verifies against its
    /// authoritative store. Returns the confirmed home or `None` on a
    /// false positive. Accounts the round trip and the metadata access.
    /// Read-only (the parallel chunk walks call it concurrently).
    fn verify_at(
        &self,
        candidate: MdsId,
        entry: MdsId,
        path: &str,
        latency: &mut Duration,
        messages: &mut u32,
    ) -> Option<MdsId> {
        let model = self.config.latency.clone();
        if candidate != entry {
            *messages += 2;
            *latency += model.unicast_rtt();
        }
        let mds = self.mdss.get(&candidate)?;
        *latency += mds.metadata_access_cost(&model);
        if mds.stores(path) {
            Some(candidate)
        } else {
            None
        }
    }

    /// Records a successful lookup: LRU cache fill at the entry server
    /// (reusing the query's fingerprint), level counters, contention
    /// inflation, latency.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &mut self,
        entry: MdsId,
        fp: &Fingerprint,
        home: MdsId,
        level: QueryLevel,
        latency: Duration,
        messages: u32,
        epoch: MembershipEpoch,
    ) -> QueryOutcome {
        if let Some(lru) = self.mdss.get_mut(&entry).and_then(Mds::lru_mut) {
            lru.record_fp(fp, home);
        }
        let latency = latency.mul_f64(self.config.contention_factor(messages));
        self.stats.levels.record(level);
        self.stats.lookup_latency.record(latency);
        QueryOutcome {
            home: Some(home),
            level,
            latency,
            messages,
            entry,
            epoch,
        }
    }

    /// Checks every structural invariant of the cluster; returns a
    /// description of the first violation.
    ///
    /// Invariants (the properties §2.2 and §3.1–3.2 argue for):
    /// 1. every server belongs to exactly one group, consistently indexed;
    /// 2. no group exceeds `M` members;
    /// 3. **mirror**: each group stores replicas of exactly the servers
    ///    outside it, so group replicas + member filters cover the system;
    /// 4. every replica's holder is a member of that group;
    /// 5. replica load within each group is balanced within one replica;
    /// 6. the IDBFA locates every replica (its candidates include the true
    ///    holder — counting filters have no false negatives);
    /// 7. the bit-sliced published slab mirrors every server's published
    ///    filter exactly (the hash-once L2/L3 probes depend on it).
    pub fn check_invariants(&self) -> Result<(), String> {
        let snap = self.routes.pin();
        let slab_ids: Vec<MdsId> = {
            let mut ids: Vec<MdsId> = snap.slab.ids().collect();
            ids.sort_unstable();
            ids
        };
        if slab_ids != self.server_ids() {
            return Err(format!(
                "published slab tracks {} servers, cluster has {}",
                slab_ids.len(),
                self.mdss.len()
            ));
        }
        for (&id, mds) in &self.mdss {
            let column = snap
                .slab
                .extract(id)
                .ok_or_else(|| format!("published slab lost {id}"))?;
            if &column != mds.published() {
                return Err(format!("published slab column of {id} is stale"));
            }
        }
        for (&id, &gid) in &snap.group_of {
            let group = snap
                .groups
                .get(&gid)
                .ok_or_else(|| format!("{id} maps to missing {gid}"))?;
            if !group.contains(id) {
                return Err(format!("{id} not a member of its {gid}"));
            }
        }
        let all: Vec<MdsId> = self.server_ids();
        for group in snap.groups.values() {
            if group.len() > self.config.max_group_size {
                return Err(format!(
                    "{} has {} members (max {})",
                    group.id(),
                    group.len(),
                    self.config.max_group_size
                ));
            }
            for &member in group.members() {
                if snap.group_of.get(&member) != Some(&group.id()) {
                    return Err(format!("{member} membership index inconsistent"));
                }
            }
            let expected: Vec<MdsId> = all
                .iter()
                .copied()
                .filter(|id| !group.contains(*id))
                .collect();
            let origins = group.replica_origins();
            if origins != expected {
                return Err(format!(
                    "{} mirror incomplete: has {} replicas, expected {}",
                    group.id(),
                    origins.len(),
                    expected.len()
                ));
            }
            for origin in origins {
                let holder = group
                    .holder_of(origin)
                    .ok_or_else(|| format!("{} lost holder of {origin}", group.id()))?;
                if !group.contains(holder) {
                    return Err(format!("{} replica held by non-member", group.id()));
                }
                if !group
                    .locate_via_idbfa(origin)
                    .candidates()
                    .contains(&holder)
                {
                    return Err(format!(
                        "{} IDBFA cannot locate replica of {origin}",
                        group.id()
                    ));
                }
            }
            if !group.is_empty() && group.balance_spread() > 1 {
                return Err(format!(
                    "{} unbalanced: spread {}",
                    group.id(),
                    group.balance_spread()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch_config() -> GhbaConfig {
        GhbaConfig::default()
            .with_filter_capacity(2_000)
            .with_max_group_size(5)
            .with_update_threshold(64)
            .with_seed(42)
    }

    fn populated_cluster() -> GhbaCluster {
        let mut cluster = GhbaCluster::with_servers(batch_config(), 15);
        for i in 0..300 {
            cluster.create_file(&format!("/b/f{i}"));
        }
        cluster.flush_all_updates();
        cluster
    }

    /// A batch of concurrent lookups over distinct paths resolves exactly
    /// like the same lookups issued sequentially from the same entries —
    /// homes, levels, latencies, messages, and stats all agree.
    #[test]
    fn lookup_batch_matches_sequential_lookups() {
        let mut sequential = populated_cluster();
        let mut batched = populated_cluster();
        let queries: Vec<(MdsId, String)> = (0..64)
            .map(|i| {
                let path = if i % 8 == 7 {
                    format!("/missing/f{i}")
                } else {
                    format!("/b/f{}", i * 4 % 300)
                };
                (MdsId(i % 15), path)
            })
            .collect();
        let borrowed: Vec<(MdsId, &str)> = queries
            .iter()
            .map(|(entry, path)| (*entry, path.as_str()))
            .collect();
        let expected: Vec<QueryOutcome> = borrowed
            .iter()
            .map(|&(entry, path)| sequential.lookup_from(entry, path))
            .collect();
        let got = batched.lookup_batch_from(&borrowed);
        assert_eq!(got, expected);
        assert_eq!(batched.stats().levels, sequential.stats().levels);
        assert_eq!(
            batched.stats().lookup_latency.count(),
            sequential.stats().lookup_latency.count()
        );
    }

    /// `lookup_batch` draws one random entry per path, consuming the rng
    /// stream exactly as sequential `lookup` calls would.
    #[test]
    fn lookup_batch_random_entries_match_sequential_rng() {
        let mut sequential = populated_cluster();
        let mut batched = populated_cluster();
        let paths: Vec<String> = (0..32).map(|i| format!("/b/f{}", i * 9 % 300)).collect();
        let expected: Vec<QueryOutcome> =
            paths.iter().map(|path| sequential.lookup(path)).collect();
        assert_eq!(batched.lookup_batch(&paths), expected);
    }

    #[test]
    fn empty_lookup_batch_is_empty() {
        let mut cluster = populated_cluster();
        assert!(cluster.lookup_batch_from(&[]).is_empty());
    }

    fn parallel_config(workers: usize) -> GhbaConfig {
        batch_config().with_executor(
            crate::config::ExecutorConfig::default()
                .with_workers(workers)
                .with_min_parallel_batch(8),
        )
    }

    fn populated_parallel_cluster(workers: usize) -> GhbaCluster {
        let mut cluster = GhbaCluster::with_servers(parallel_config(workers), 15);
        for i in 0..300 {
            cluster.create_file(&format!("/b/f{i}"));
        }
        cluster.flush_all_updates();
        cluster
    }

    fn batch_queries() -> Vec<(MdsId, String)> {
        (0..96)
            .map(|i| {
                let path = if i % 8 == 7 {
                    format!("/missing/f{i}")
                } else {
                    format!("/b/f{}", i * 4 % 300)
                };
                (MdsId(i % 15), path)
            })
            .collect()
    }

    /// The parallel walk resolves a large batch bit-identically to the
    /// single-threaded walk, worker count by worker count, including
    /// the spliced statistics.
    #[test]
    fn parallel_lookup_batch_matches_sequential_walk() {
        let mut sequential = populated_parallel_cluster(1);
        let queries = batch_queries();
        let borrowed: Vec<(MdsId, &str)> = queries
            .iter()
            .map(|(entry, path)| (*entry, path.as_str()))
            .collect();
        let expected = sequential.lookup_batch_from(&borrowed);
        for workers in [2, 4, 7] {
            let mut parallel = populated_parallel_cluster(workers);
            let got = parallel.lookup_batch_from(&borrowed);
            assert_eq!(got, expected, "{workers} workers diverged");
            assert_eq!(parallel.stats().levels, sequential.stats().levels);
            assert_eq!(
                parallel.stats().lookup_latency.count(),
                sequential.stats().lookup_latency.count()
            );
        }
    }

    /// A chunk walking on a pool worker panics (unknown entry MDS); the
    /// panic propagates to the dispatching thread after sibling chunks
    /// finish, no armed cache leaks, and the cluster — scratch arenas
    /// included — keeps serving.
    #[test]
    fn poisoned_parallel_worker_propagates_and_cluster_survives() {
        let mut cluster = populated_parallel_cluster(4);
        let queries = batch_queries();
        let mut borrowed: Vec<(MdsId, &str)> = queries
            .iter()
            .map(|(entry, path)| (*entry, path.as_str()))
            .collect();
        // Poison a query deep in the batch: its chunk lands on a pool
        // worker (chunks of 24 at 96 queries / 4 workers; index 80 is
        // chunk 3).
        borrowed[80].0 = MdsId(999);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = cluster.lookup_batch_from(&borrowed);
        }));
        let payload = result.expect_err("the poisoned chunk must panic");
        let message = payload
            .downcast_ref::<&'static str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            message.contains("unknown entry MDS"),
            "unexpected panic: {message}"
        );
        assert!(!cluster.mask_cache_armed(), "armed cache leaked");
        // A poisoned read phase applies no effects at all (all-or-
        // nothing splice): statistics saw none of the batch.
        assert_eq!(cluster.stats().lookup_latency.count(), 0);
        // The warmed per-worker arenas were restored during the unwind.
        assert!(
            !cluster.scratch.is_empty(),
            "poisoned batch dropped the walk arenas"
        );
        // The cluster (and the process-wide pool) keep serving.
        borrowed[80].0 = MdsId(0);
        let outcomes = cluster.lookup_batch_from(&borrowed);
        assert_eq!(outcomes.len(), borrowed.len());
        cluster.check_invariants().expect("invariants hold");
    }

    /// A single-group rebalance under per-group epochs invalidates only
    /// that group's masks: entries of other groups keep answering from
    /// cache, while the touched group rebuilds — and under the `Global`
    /// reference granularity the same rebalance cold-starts everything.
    #[test]
    fn rebalance_keeps_other_groups_masks_warm() {
        use crate::config::EpochGranularity;
        let build = |granularity: EpochGranularity| {
            let mut cluster =
                GhbaCluster::with_servers(batch_config().with_epoch_granularity(granularity), 15);
            for i in 0..200 {
                cluster.create_file(&format!("/w/f{i}"));
            }
            cluster.flush_all_updates();
            // Warm every entry's masks once.
            let queries: Vec<(MdsId, String)> =
                (0..15).map(|i| (MdsId(i), format!("/w/f{i}"))).collect();
            let borrowed: Vec<(MdsId, &str)> = queries
                .iter()
                .map(|(entry, path)| (*entry, path.as_str()))
                .collect();
            let _ = cluster.lookup_batch_from(&borrowed);
            cluster
        };

        let mut cluster = build(EpochGranularity::PerGroup);
        let touched = cluster.group_of(MdsId(0)).expect("grouped");
        let other_entry = cluster
            .server_ids()
            .into_iter()
            .find(|&id| cluster.group_of(id) != Some(touched))
            .expect("another group exists");
        cluster.rebalance_group(touched);
        let (hits_before, misses_before) = cluster.mask_cache_stats().lifetime();
        let _ = cluster.lookup_from(other_entry, "/w/f1");
        let (hits_after, misses_after) = cluster.mask_cache_stats().lifetime();
        assert_eq!(
            misses_after, misses_before,
            "an untouched group's masks must stay warm across the rebalance"
        );
        assert_eq!(hits_after, hits_before + 2, "L2 + L3 both hit");
        // The touched group rebuilds exactly its own entries.
        let (_, misses_before) = cluster.mask_cache_stats().lifetime();
        let _ = cluster.lookup_from(MdsId(0), "/w/f1");
        let (_, misses_after) = cluster.mask_cache_stats().lifetime();
        assert_eq!(misses_after, misses_before + 2, "L2 + L3 both rebuild");

        // Reference behaviour: a Global-granularity rebalance flushes
        // every group, so even the untouched entry misses.
        let mut cluster = build(EpochGranularity::Global);
        let touched = cluster.group_of(MdsId(0)).expect("grouped");
        let other_entry = cluster
            .server_ids()
            .into_iter()
            .find(|&id| cluster.group_of(id) != Some(touched))
            .expect("another group exists");
        cluster.rebalance_group(touched);
        let (_, misses_before) = cluster.mask_cache_stats().lifetime();
        let _ = cluster.lookup_from(other_entry, "/w/f1");
        let (_, misses_after) = cluster.mask_cache_stats().lifetime();
        assert_eq!(
            misses_after,
            misses_before + 2,
            "global granularity must cold-start every group"
        );
    }

    /// `ClusterStats` mirrors the mask-cache counters for the figure
    /// binaries, respecting `reset_stats`.
    #[test]
    fn cluster_stats_surface_mask_cache_counters() {
        let mut cluster = populated_cluster();
        cluster.reset_stats();
        let _ = cluster.lookup_from(MdsId(0), "/b/f1");
        let _ = cluster.lookup_from(MdsId(0), "/b/f2");
        let stats = cluster.stats();
        assert_eq!(stats.mask_cache_misses, 2, "first walk builds L2 + L3");
        assert_eq!(stats.mask_cache_hits, 2, "second walk answers from cache");
        let unified = cluster.mask_cache_stats();
        assert!(
            unified.lifetime_hits >= 2 && unified.lifetime_misses >= 2,
            "lifetime counters keep totals"
        );
        assert_eq!(
            (unified.window_hits, unified.window_misses),
            (stats.mask_cache_hits, stats.mask_cache_misses),
            "the unified accessor's window scope is the figure-binary view"
        );
        cluster.reset_stats();
        assert_eq!(cluster.stats().mask_cache_hits, 0);
        let after = cluster.mask_cache_stats();
        assert_eq!(
            unified.lifetime(),
            after.lifetime(),
            "reset only clears the window scope"
        );
        assert_eq!(after.window_hits, 0, "window scope resets");
    }

    /// Regression for unbounded mask-cache growth under churn: masks
    /// that stay *valid* (their group epoch never moves) but are never
    /// consulted again must still be evicted by the generation sweep.
    /// Pins the worst case — a workload that warms every entry once and
    /// then queries a single entry forever.
    #[test]
    fn generation_sweep_evicts_idle_masks() {
        let mut cluster = GhbaCluster::with_servers(batch_config(), 15);
        for i in 0..60 {
            cluster.create_file(&format!("/sweep/f{i}"));
        }
        cluster.flush_all_updates();
        // One batch warms all 15 entries' L2 masks and every group's L3
        // mask, in a single walk generation.
        let queries: Vec<(MdsId, String)> = (0..15)
            .map(|i| (MdsId(i), format!("/sweep/f{}", i)))
            .collect();
        let borrowed: Vec<(MdsId, &str)> = queries
            .iter()
            .map(|(entry, path)| (*entry, path.as_str()))
            .collect();
        let _ = cluster.lookup_batch_from(&borrowed);
        let (l2, l3) = cluster.mask_cache.len();
        assert_eq!(l2, 15, "every entry's L2 mask warmed");
        let groups = cluster.group_count();
        assert_eq!(l3, groups, "every group's L3 mask warmed");

        // The workload then drifts to a single entry; no reconfiguration
        // runs, so every warmed mask stays epoch-valid forever. Enough
        // walks to cross a sweep whose idle horizon passes the warming
        // generation.
        for _ in 0..(MaskCache::IDLE_GENERATIONS + MaskCache::SWEEP_EVERY * 2) {
            let _ = cluster.lookup_from(MdsId(0), "/sweep/f1");
        }
        let (l2, l3) = cluster.mask_cache.len();
        assert_eq!(
            (l2, l3),
            (1, 1),
            "the sweep must evict idle-but-valid masks, keeping the live entry"
        );
        assert_eq!(
            cluster.stats().mask_cache_evictions,
            (15 + groups - 2) as u64,
            "evictions surface in ClusterStats"
        );
    }
}
