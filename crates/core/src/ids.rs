//! Identifier newtypes for servers and groups.

use core::fmt;

/// Identifies one metadata server (MDS).
///
/// Dense small integers: clusters in the paper range from 10 to 200
/// servers, and `u16` leaves ample headroom for "ultra large-scale"
/// configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MdsId(pub u16);

impl fmt::Display for MdsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mds{}", self.0)
    }
}

impl From<u16> for MdsId {
    fn from(value: u16) -> Self {
        MdsId(value)
    }
}

/// Identifies one logical MDS group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub u16);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "group{}", self.0)
    }
}

impl From<u16> for GroupId {
    fn from(value: u16) -> Self {
        GroupId(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(MdsId(7).to_string(), "mds7");
        assert_eq!(GroupId(2).to_string(), "group2");
    }

    #[test]
    fn conversions() {
        assert_eq!(MdsId::from(3u16), MdsId(3));
        assert_eq!(GroupId::from(9u16), GroupId(9));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(MdsId(2) < MdsId(10));
        assert!(GroupId(0) < GroupId(1));
    }
}
