//! Identifier newtypes for servers and groups.

use core::fmt;

/// Identifies one metadata server (MDS).
///
/// Dense small integers: clusters in the paper range from 10 to 200
/// servers, and `u16` leaves ample headroom for "ultra large-scale"
/// configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MdsId(pub u16);

impl fmt::Display for MdsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mds{}", self.0)
    }
}

impl From<u16> for MdsId {
    fn from(value: u16) -> Self {
        MdsId(value)
    }
}

/// Identifies one logical MDS group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub u16);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "group{}", self.0)
    }
}

impl From<u16> for GroupId {
    fn from(value: u16) -> Self {
        GroupId(value)
    }
}

/// A cluster's membership-configuration version.
///
/// Every reconfiguration path — join, graceful leave, fail-stop, group
/// split, group merge, replica rebalancing — advances the epoch **at
/// least once** before returning (a compound operation like a join that
/// splits a group advances it at each internal step, so the epoch is an
/// invalidation fence, not a count of reconfiguration calls). Derived
/// routing state (candidate slot masks, membership snapshots) is tagged
/// with the epoch it was built under and validated lazily: a consumer
/// holding state from an older epoch rebuilds instead of trusting it,
/// the same discipline dynamic-subtree systems use for cached placement
/// state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MembershipEpoch(pub u64);

impl MembershipEpoch {
    /// Advances to the next epoch (called by every reconfiguration path).
    pub fn bump(&mut self) {
        self.0 += 1;
    }
}

impl fmt::Display for MembershipEpoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "epoch{}", self.0)
    }
}

/// One group's configuration version — the per-group refinement of
/// [`MembershipEpoch`].
///
/// The cluster-wide epoch answers "did *anything* change?"; a group
/// epoch answers "did anything change **that this group's derived
/// routing state depends on**?". A reconfiguration bumps the epochs of
/// exactly the groups whose replica placement, membership, or held
/// counts it altered: a single-group rebalance bumps one group, a split
/// bumps the two halves, a merge bumps the surviving group, while a
/// join/leave/fail — which places or drops a replica in *every* group —
/// bumps them all. Cached L2/L3 candidate masks are tagged with the
/// epoch of the group they were built under and validated lazily, so a
/// rebalance of one group leaves every other group's masks warm (the
/// all-or-nothing flush this replaces cold-started the whole cache on
/// any reconfiguration).
///
/// Group ids are never recycled (the allocator is monotonic), so a
/// fresh group starting at the default epoch can never collide with a
/// stale cache entry from a departed group of the same id.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupEpoch(pub u64);

impl GroupEpoch {
    /// Advances to the next epoch (called for every group a
    /// reconfiguration touches).
    pub fn bump(&mut self) {
        self.0 += 1;
    }
}

impl fmt::Display for GroupEpoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gepoch{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(MdsId(7).to_string(), "mds7");
        assert_eq!(GroupId(2).to_string(), "group2");
        assert_eq!(MembershipEpoch(4).to_string(), "epoch4");
    }

    #[test]
    fn epoch_bumps_monotonically() {
        let mut epoch = MembershipEpoch::default();
        let before = epoch;
        epoch.bump();
        assert!(epoch > before);
        assert_eq!(epoch, MembershipEpoch(1));
    }

    #[test]
    fn group_epoch_bumps_monotonically() {
        let mut epoch = GroupEpoch::default();
        epoch.bump();
        epoch.bump();
        assert_eq!(epoch, GroupEpoch(2));
        assert_eq!(epoch.to_string(), "gepoch2");
    }

    #[test]
    fn conversions() {
        assert_eq!(MdsId::from(3u16), MdsId(3));
        assert_eq!(GroupId::from(9u16), GroupId(9));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(MdsId(2) < MdsId(10));
        assert!(GroupId(0) < GroupId(1));
    }
}
