//! Query outcomes and the level accounting behind Figure 13.

use core::fmt;
use core::time::Duration;

use crate::ids::{MdsId, MembershipEpoch};

/// The level of the G-HBA hierarchy at which a query was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryLevel {
    /// Served by the entry server's LRU Bloom filter array.
    L1Lru,
    /// Served by the entry server's segment Bloom filter array.
    L2Segment,
    /// Served by a multicast within the entry server's group.
    L3Group,
    /// Served by a system-wide multicast (authoritative).
    L4Global,
    /// The file exists nowhere — established only after an L4 sweep.
    Nonexistent,
}

impl QueryLevel {
    /// All levels in escalation order.
    pub const ALL: [QueryLevel; 5] = [
        QueryLevel::L1Lru,
        QueryLevel::L2Segment,
        QueryLevel::L3Group,
        QueryLevel::L4Global,
        QueryLevel::Nonexistent,
    ];
}

impl fmt::Display for QueryLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            QueryLevel::L1Lru => "L1",
            QueryLevel::L2Segment => "L2",
            QueryLevel::L3Group => "L3",
            QueryLevel::L4Global => "L4",
            QueryLevel::Nonexistent => "miss",
        };
        f.write_str(name)
    }
}

/// The result of one metadata lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutcome {
    /// The home MDS of the file, or `None` if it exists nowhere.
    pub home: Option<MdsId>,
    /// Which level resolved the query.
    pub level: QueryLevel,
    /// Simulated end-to-end latency of the query.
    pub latency: Duration,
    /// Network messages exchanged (multicast counts one per recipient
    /// plus one per reply).
    pub messages: u32,
    /// The MDS that received the client request.
    pub entry: MdsId,
    /// The membership epoch of the routing snapshot the query was
    /// pinned to at admission: the walk resolved entirely against that
    /// one consistent configuration, even if reconfigurations published
    /// successors mid-flight.
    pub epoch: MembershipEpoch,
}

impl QueryOutcome {
    /// `true` when the file was found.
    #[must_use]
    pub fn found(&self) -> bool {
        self.home.is_some()
    }
}

/// Running per-level hit counters (the series plotted in Figure 13).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelCounts {
    /// Hits served at L1.
    pub l1: u64,
    /// Hits served at L2.
    pub l2: u64,
    /// Hits served at L3.
    pub l3: u64,
    /// Hits served at L4.
    pub l4: u64,
    /// Queries that found nothing anywhere.
    pub nonexistent: u64,
}

impl LevelCounts {
    /// Records one outcome.
    pub fn record(&mut self, level: QueryLevel) {
        match level {
            QueryLevel::L1Lru => self.l1 += 1,
            QueryLevel::L2Segment => self.l2 += 1,
            QueryLevel::L3Group => self.l3 += 1,
            QueryLevel::L4Global => self.l4 += 1,
            QueryLevel::Nonexistent => self.nonexistent += 1,
        }
    }

    /// Total queries recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.l1 + self.l2 + self.l3 + self.l4 + self.nonexistent
    }

    /// Fraction of queries served at or below each level, as
    /// `(l1, l1+l2, l1+l2+l3, all-found)` percentages of found queries —
    /// exactly the stacked series of Figure 13. Returns zeros when empty.
    #[must_use]
    pub fn cumulative_percentages(&self) -> [f64; 4] {
        let found = (self.l1 + self.l2 + self.l3 + self.l4) as f64;
        if found == 0.0 {
            return [0.0; 4];
        }
        let l1 = self.l1 as f64 / found * 100.0;
        let l2 = (self.l1 + self.l2) as f64 / found * 100.0;
        let l3 = (self.l1 + self.l2 + self.l3) as f64 / found * 100.0;
        [l1, l2, l3, 100.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_display() {
        assert_eq!(QueryLevel::L1Lru.to_string(), "L1");
        assert_eq!(QueryLevel::Nonexistent.to_string(), "miss");
    }

    #[test]
    fn counts_accumulate() {
        let mut counts = LevelCounts::default();
        counts.record(QueryLevel::L1Lru);
        counts.record(QueryLevel::L1Lru);
        counts.record(QueryLevel::L3Group);
        counts.record(QueryLevel::Nonexistent);
        assert_eq!(counts.l1, 2);
        assert_eq!(counts.l3, 1);
        assert_eq!(counts.nonexistent, 1);
        assert_eq!(counts.total(), 4);
    }

    #[test]
    fn cumulative_percentages_stack() {
        let mut counts = LevelCounts::default();
        for _ in 0..80 {
            counts.record(QueryLevel::L1Lru);
        }
        for _ in 0..10 {
            counts.record(QueryLevel::L2Segment);
        }
        for _ in 0..6 {
            counts.record(QueryLevel::L3Group);
        }
        for _ in 0..4 {
            counts.record(QueryLevel::L4Global);
        }
        let [l1, l2, l3, l4] = counts.cumulative_percentages();
        assert!((l1 - 80.0).abs() < 1e-9);
        assert!((l2 - 90.0).abs() < 1e-9);
        assert!((l3 - 96.0).abs() < 1e-9);
        assert!((l4 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_percentages_are_zero() {
        assert_eq!(LevelCounts::default().cumulative_percentages(), [0.0; 4]);
    }

    #[test]
    fn outcome_found() {
        let hit = QueryOutcome {
            home: Some(MdsId(1)),
            level: QueryLevel::L2Segment,
            latency: Duration::from_micros(5),
            messages: 2,
            entry: MdsId(0),
            epoch: MembershipEpoch::default(),
        };
        assert!(hit.found());
        let miss = QueryOutcome {
            home: None,
            level: QueryLevel::Nonexistent,
            latency: Duration::from_millis(1),
            messages: 60,
            entry: MdsId(0),
            epoch: MembershipEpoch::default(),
        };
        assert!(!miss.found());
    }
}
