//! Lock-free epoch snapshots: immutable routing state swapped by an
//! atomic pointer, so lookups are served *through* reconfiguration.
//!
//! Before this module, every reconfiguration was a full mutation
//! barrier: `&mut self` on the cluster meant no batch could be in
//! flight while a split/merge/rebalance rewrote the membership tables,
//! so churn serialized the whole cluster. The fix is the classic
//! RCU/arc-swap shape, built on `std` alone:
//!
//! * All published probe state — the bit-sliced replica slab, the
//!   group/membership tables, the per-group epochs — lives in one
//!   **immutable** [`RouteSnapshot`] behind a [`SnapshotCell`].
//! * A lookup **pins** the current snapshot with two atomic RMWs and
//!   walks L1–L4 against it end to end (including across the parallel
//!   chunk walkers, which already treat the state as read-only).
//! * A reconfiguration builds the **successor** snapshot off to the
//!   side — copy-on-write per group via [`Arc::make_mut`], sparse
//!   [`SlabOp`]s against a writer-private spare slab — and publishes it
//!   with a single slot flip. Readers pinned to the old snapshot finish
//!   undisturbed; new lookups see the new epoch.
//!
//! The cell is generic so the threaded prototype reuses it for its
//! `ClusterMap` (replacing an `RwLock` on the node hot path), and the
//! HBA baseline for its published slab.

use core::fmt;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use ghba_bloom::{BloomFilter, FilterDelta, SharedShapeArray, SlotMask};

use crate::group::Group;
use crate::ids::{GroupEpoch, GroupId, MdsId, MembershipEpoch};
use std::collections::{BTreeMap, HashMap};
use std::sync::RwLock;

/// One of the cell's two value slots: the `Arc` being published plus a
/// count of readers currently *cloning out of* the slot (not of
/// outstanding pins — a pin holds the `Arc` itself once cloned, so the
/// guard is held only for the few instructions of the clone).
struct Slot<T> {
    refs: AtomicUsize,
    value: UnsafeCell<Option<Arc<T>>>,
}

impl<T> Slot<T> {
    fn new(value: Option<Arc<T>>) -> Self {
        Slot {
            refs: AtomicUsize::new(0),
            value: UnsafeCell::new(value),
        }
    }
}

/// A lock-free publication cell: readers [`pin`](SnapshotCell::pin) the
/// current immutable snapshot without taking any lock, while a single
/// writer (serialized by an internal mutex that also guards the
/// writer-private scratch state `W`) swaps in successors.
///
/// # Protocol
///
/// Two slots hold at most one `Arc<T>` each; `active` names the slot
/// readers should use. A reader loads `active`, increments that slot's
/// guard, re-checks `active`, and only then clones the `Arc` — so a
/// writer that flips `active` away can wait for the guard to drain and
/// then reclaim the displaced slot knowing no reader is mid-clone.
/// Readers never block: a reader that loses the race re-reads `active`
/// and retries against the new slot.
///
/// The guard handshake is a store-buffering (Dekker) shape — reader:
/// raise guard, re-check `active`; writer: flip `active`, read guard —
/// so those four operations use `SeqCst` (see `pin`); plain
/// Acquire/Release would let both sides miss each other and race the
/// writer's reclamation against a reader's clone.
///
/// The writer publishes into the *inactive* slot (reader-free by
/// induction: the previous publish drained it) and flips `active`; the
/// displaced `Arc` is handed back to the caller, whose reference count
/// tells it whether the old snapshot can be recycled in place (see
/// [`SlabSpare`]).
pub struct SnapshotCell<T, W = ()> {
    slots: [Slot<T>; 2],
    active: AtomicUsize,
    writer: Mutex<W>,
}

// SAFETY: the `UnsafeCell`s are only written by the single writer (the
// `writer` mutex serializes publishes) while the guarded-slot protocol
// proves no reader is accessing the written slot; everything readers
// extract is an `Arc<T>`, so `T` must be shareable and sendable.
unsafe impl<T: Send + Sync, W: Send> Sync for SnapshotCell<T, W> {}
unsafe impl<T: Send + Sync, W: Send> Send for SnapshotCell<T, W> {}

impl<T, W> fmt::Debug for SnapshotCell<T, W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("active", &self.active.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl<T, W> SnapshotCell<T, W> {
    /// Creates a cell publishing `initial`, with `writer_state` as the
    /// scratch the writer lock protects (spare slabs, pending ops; `()`
    /// when the writer needs none).
    pub fn new(initial: T, writer_state: W) -> Self {
        SnapshotCell {
            slots: [Slot::new(Some(Arc::new(initial))), Slot::new(None)],
            active: AtomicUsize::new(0),
            writer: Mutex::new(writer_state),
        }
    }

    /// Pins the current snapshot: lock-free, two atomic RMWs on the
    /// fast path. The returned `Arc` stays valid — and immutable — for
    /// as long as the caller holds it, however many successors are
    /// published meanwhile.
    pub fn pin(&self) -> Arc<T> {
        loop {
            let at = self.active.load(Ordering::Acquire);
            let slot = &self.slots[at];
            // The guard-raise and the `active` re-check pair with the
            // writer's flip-then-drain in `publish` as a store-buffering
            // (Dekker) protocol: each side stores then loads what the
            // other stores. Acquire/Release cannot order that shape —
            // both sides may read the stale value and miss each other —
            // so all four operations are `SeqCst`: in the single total
            // order, either our re-check sees the writer's flip (we
            // bail below without touching the value), or our increment
            // precedes the writer's drain load, which then sees
            // `refs > 0` and waits for us.
            slot.refs.fetch_add(1, Ordering::SeqCst);
            if self.active.load(Ordering::SeqCst) == at {
                // SAFETY: the slot was active after we raised its
                // guard, so the writer (which only touches a slot once
                // it is inactive *and* drained) cannot be mutating it:
                // the SeqCst pairing above guarantees a writer that
                // flipped this slot away before our re-check is seen
                // here, and one that flips after sees our guard. The
                // re-check also synchronizes with the publishing store,
                // so the value is fully written.
                let pinned = unsafe { (*slot.value.get()).clone() };
                slot.refs.fetch_sub(1, Ordering::Release);
                if let Some(arc) = pinned {
                    return arc;
                }
            } else {
                slot.refs.fetch_sub(1, Ordering::Release);
            }
            core::hint::spin_loop();
        }
    }

    /// Opens the writer side: takes the writer lock (serializing
    /// against other publishers) and returns a handle that can read the
    /// scratch state, the current snapshot, and publish successors.
    pub fn edit(&self) -> CellWriter<'_, T, W> {
        CellWriter {
            cell: self,
            state: self.writer.lock().expect("snapshot writer poisoned"),
        }
    }
}

/// The writer side of a [`SnapshotCell`]: holds the writer lock for its
/// lifetime, so publishes through it are serialized and the scratch
/// state `W` is exclusively owned.
pub struct CellWriter<'a, T, W> {
    cell: &'a SnapshotCell<T, W>,
    state: MutexGuard<'a, W>,
}

impl<T, W> fmt::Debug for CellWriter<'_, T, W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CellWriter").finish_non_exhaustive()
    }
}

impl<T, W> CellWriter<'_, T, W> {
    /// The snapshot currently published (stable while this writer is
    /// open: only the holder of the writer lock can publish).
    pub fn base(&self) -> Arc<T> {
        self.cell.pin()
    }

    /// The writer-private scratch state.
    pub fn state(&mut self) -> &mut W {
        &mut self.state
    }

    /// Publishes `next` with a single slot flip and returns the
    /// displaced snapshot. Readers pinned to the displaced snapshot
    /// keep it alive through their own `Arc`s; once those drop, the
    /// returned `Arc` is the last reference and the caller may recycle
    /// its storage (see [`SlabSpare::recycle`]).
    ///
    /// # Blocking
    ///
    /// Readers never block, but the publisher does: after the flip it
    /// spin-waits (yielding) for readers still inside the displaced
    /// slot's guard window — the few instructions between raising the
    /// guard and cloning the `Arc` out, *not* the lifetime of the pin.
    /// In the common case the guard is already zero and the wait is a
    /// single load; the wait is unbounded only if the OS preempts a
    /// reader inside that window, in which case the publisher (and, via
    /// the writer mutex it holds, every queued publisher) stalls until
    /// that reader is rescheduled. Lookups proceed unimpeded against
    /// the freshly published snapshot throughout; only reconfiguration
    /// latency is exposed to this inversion.
    pub fn publish(&mut self, next: T) -> Arc<T> {
        let at = self.cell.active.load(Ordering::Acquire);
        let to = 1 - at;
        let incoming = &self.cell.slots[to];
        // SAFETY: slot `to` is inactive, and no reader has cloned from
        // it since the previous publish drained it — a reader raising
        // its guard on an inactive slot re-checks `active` and bails
        // before ever touching the value. The writer lock makes us the
        // only writer.
        unsafe {
            *incoming.value.get() = Some(Arc::new(next));
        }
        // The flip and the drain load below are the writer's half of
        // the store-buffering pair with `pin`'s guard-raise/re-check;
        // see the comment there for why all four must be `SeqCst`.
        // `SeqCst` subsumes the Release needed to publish the value
        // write above and the Acquire needed to observe guard exits.
        self.cell.active.store(to, Ordering::SeqCst);
        // Drain readers still mid-clone in the displaced slot (a few
        // instructions each), then reclaim it. See "Blocking" above.
        // Bounded backoff: the guard window is a handful of instructions,
        // so a short spin almost always observes the exit without paying
        // a scheduler round trip; only a reader preempted inside the
        // window escalates us to `yield_now`.
        let outgoing = &self.cell.slots[at];
        let mut spins = 0u32;
        while outgoing.refs.load(Ordering::SeqCst) != 0 {
            if spins < 64 {
                spins += 1;
                core::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        // SAFETY: the slot is inactive (we just flipped `active`) and
        // drained, so no reader can be reading the value.
        let displaced = unsafe { (*outgoing.value.get()).take() };
        displaced.expect("the active slot always holds a snapshot")
    }
}

/// One deferred mutation of the published slab, recorded during a
/// routing edit and applied to both the successor and the recycled
/// spare slab (see [`SlabSpare`]). Sparse by construction: a delta
/// touches only the changed bit-rows, a push/remove one column.
#[derive(Debug, Clone)]
pub enum SlabOp {
    /// Append a fresh (empty) column for a joining server.
    Push(MdsId),
    /// Append a column initialized from a full filter (restoring a
    /// retired server's published snapshot).
    PushFilter(MdsId, BloomFilter),
    /// Drop a departing server's column.
    Remove(MdsId),
    /// Fold a sparse publish delta into a server's column.
    Delta(MdsId, FilterDelta),
}

fn apply_slab_ops(slab: &mut SharedShapeArray<MdsId>, ops: &[SlabOp]) {
    for op in ops {
        match op {
            SlabOp::Push(id) => slab.push(*id).expect("fresh id is unique in the slab"),
            SlabOp::PushFilter(id, filter) => slab
                .push_filter(*id, filter)
                .expect("restored column matches the slab shape"),
            SlabOp::Remove(id) => {
                slab.remove(*id);
            }
            SlabOp::Delta(id, delta) => slab
                .apply_delta(*id, delta)
                .expect("slab tracks every published server"),
        }
    }
}

/// The writer-private spare slab that keeps slab-touching publishes
/// cheap: instead of deep-copying the O(servers × filter bits) slab for
/// every successor snapshot, the writer keeps **one** spare mirror of
/// the published slab, applies the edit's sparse [`SlabOp`]s to it, and
/// publishes it; the displaced snapshot's slab — once its readers drain
/// — is caught up with the same ops and becomes the next spare. Only
/// when a long-lived pin still holds the displaced slab does the spare
/// fall back to a deep copy.
#[derive(Debug)]
pub struct SlabSpare {
    slab: SharedShapeArray<MdsId>,
}

impl SlabSpare {
    /// Wraps a mirror of the currently published slab.
    pub fn new(mirror: SharedShapeArray<MdsId>) -> Self {
        SlabSpare { slab: mirror }
    }

    /// Applies `ops` to the spare and hands it out as the successor
    /// snapshot's slab. The caller must publish it and then call
    /// [`recycle`](SlabSpare::recycle) with the displaced slab.
    pub fn advance(&mut self, ops: &[SlabOp]) -> Arc<SharedShapeArray<MdsId>> {
        apply_slab_ops(&mut self.slab, ops);
        let shape = self.slab.shape();
        Arc::new(core::mem::replace(
            &mut self.slab,
            SharedShapeArray::new(shape),
        ))
    }

    /// Restocks the spare after a publish: catches the displaced slab
    /// up with the edit's ops (cheap, sparse) when its storage came
    /// back exclusively, or deep-copies the published slab when a
    /// reader still pins it (rare: pins last one batch).
    pub fn recycle(
        &mut self,
        displaced: Option<SharedShapeArray<MdsId>>,
        ops: &[SlabOp],
        published: &SharedShapeArray<MdsId>,
    ) {
        match displaced {
            Some(mut slab) => {
                apply_slab_ops(&mut slab, ops);
                self.slab = slab;
            }
            None => self.slab = published.clone(),
        }
        debug_assert_eq!(
            self.slab.len(),
            published.len(),
            "recycled spare diverged from the published slab"
        );
    }
}

/// One entry server's shared L2 state: its held-replica candidate mask
/// plus the held count the probe-latency model needs, tagged with the
/// `(gid, GroupEpoch)` it was built under — the same validity contract
/// as the owner walk's persistent `MaskCache`.
#[derive(Debug)]
pub(crate) struct SharedL2 {
    pub(crate) gid: GroupId,
    pub(crate) tag: GroupEpoch,
    pub(crate) mask: SlotMask,
    pub(crate) held: usize,
}

/// One group's shared L3 state: the member list with held counts (the
/// multicast latency inputs) and the group-mirror candidate mask,
/// tagged like [`SharedL2`].
#[derive(Debug)]
pub(crate) struct SharedL3 {
    pub(crate) tag: GroupEpoch,
    pub(crate) mask: SlotMask,
    pub(crate) member_held: Vec<(MdsId, usize)>,
}

/// Cross-snapshot shared candidate-mask cache for the pinned (`&self`)
/// walk — the lock-free read path's counterpart of the owner walk's
/// persistent `MaskCache`.
///
/// The cache object is shared (one `Arc`, cloned into every successor
/// [`RouteSnapshot`]), so masks built by one reader warm every later
/// reader on any snapshot generation. Validity is per entry: each
/// cached mask carries the `(gid, GroupEpoch)` it was built under, and
/// a consulting reader accepts it only when its *own* pinned snapshot
/// reports the same group epoch. Group epochs bump exactly when an
/// edit changes state masks depend on (`touch_group`; membership
/// events touch every group because they shift slab layout), so:
///
/// * groups untouched by a split/merge/rebalance keep their masks warm
///   through the publish — the observable form of the per-group-epoch
///   contract on the concurrent path, and what the adaptive
///   controller's reconfigurations rely on to leave cold groups'
///   serving costs alone;
/// * a reader pinned to a pre-edit snapshot that races a post-edit
///   reader can at worst overwrite the other's entry with one tagged
///   for its own epoch (both remain correct for their consumers; the
///   loser rebuilds — a miss, never a wrong mask).
///
/// Entries are keyed by ids that are never recycled, so the maps are
/// bounded by the ids ever live (`u16` space); merges evict their
/// dissolved group eagerly ([`RouteEdit::remove_group`]).
#[derive(Debug, Default)]
pub(crate) struct SharedMaskCache {
    l2: RwLock<HashMap<MdsId, Arc<SharedL2>>>,
    l3: RwLock<HashMap<GroupId, Arc<SharedL3>>>,
}

impl SharedMaskCache {
    /// The cached L2 state of `entry` if it was built under `(gid,
    /// tag)` — the consulting snapshot's view of the entry's group.
    pub(crate) fn l2(&self, entry: MdsId, gid: GroupId, tag: GroupEpoch) -> Option<Arc<SharedL2>> {
        let map = self.l2.read().expect("mask cache poisoned");
        map.get(&entry)
            .filter(|e| e.gid == gid && e.tag == tag)
            .cloned()
    }

    /// Publishes a freshly built L2 state (last writer wins).
    pub(crate) fn put_l2(&self, entry: MdsId, fresh: Arc<SharedL2>) {
        self.l2
            .write()
            .expect("mask cache poisoned")
            .insert(entry, fresh);
    }

    /// The cached L3 state of `gid` if it was built under `tag`.
    pub(crate) fn l3(&self, gid: GroupId, tag: GroupEpoch) -> Option<Arc<SharedL3>> {
        let map = self.l3.read().expect("mask cache poisoned");
        map.get(&gid).filter(|e| e.tag == tag).cloned()
    }

    /// Publishes a freshly built L3 state (last writer wins).
    pub(crate) fn put_l3(&self, gid: GroupId, fresh: Arc<SharedL3>) {
        self.l3
            .write()
            .expect("mask cache poisoned")
            .insert(gid, fresh);
    }

    /// Evicts a dissolved group's L3 state. Its former members' L2
    /// entries self-invalidate by tag and are overwritten on their next
    /// consultation.
    fn evict_group(&self, gid: GroupId) {
        self.l3.write().expect("mask cache poisoned").remove(&gid);
    }
}

/// The immutable routing state one lookup walks against: everything the
/// L1–L4 escalation reads that reconfiguration can move. Snapshots are
/// only ever replaced wholesale (via [`SnapshotCell`]), never mutated,
/// so a pinned snapshot observes one consistent epoch end to end.
#[derive(Debug, Clone)]
pub struct RouteSnapshot {
    /// Every server's published filter, bit-sliced for hash-once array
    /// probes. Shared (not copied) by successor snapshots whose edits
    /// leave filter content alone — rebalances, splits, and merges move
    /// *placement*, not filter bits.
    pub(crate) slab: Arc<SharedShapeArray<MdsId>>,
    /// Live groups; copy-on-write per group, so an edit touching one
    /// group shares every other group's storage with its predecessor.
    pub(crate) groups: BTreeMap<GroupId, Arc<Group>>,
    /// Server → group membership index.
    pub(crate) group_of: BTreeMap<MdsId, GroupId>,
    /// Per-group configuration versions (see [`GroupEpoch`]).
    pub(crate) group_epochs: BTreeMap<GroupId, GroupEpoch>,
    /// The membership epoch this snapshot was published under.
    pub(crate) epoch: MembershipEpoch,
    /// Monotonic group-id allocator (ids are never recycled); lives in
    /// the snapshot so concurrent reconfiguration handles allocate
    /// consistently under the writer lock.
    pub(crate) next_group: u16,
    /// The shared candidate-mask cache for pinned walks — one object
    /// per cluster, cloned (shared) into every successor snapshot so
    /// masks stay warm across publishes for groups whose epoch did not
    /// move. See [`SharedMaskCache`].
    pub(crate) masks: Arc<SharedMaskCache>,
}

impl RouteSnapshot {
    /// An empty routing state (no servers, no groups).
    pub(crate) fn empty(slab: SharedShapeArray<MdsId>) -> Self {
        RouteSnapshot {
            slab: Arc::new(slab),
            groups: BTreeMap::new(),
            group_of: BTreeMap::new(),
            group_epochs: BTreeMap::new(),
            epoch: MembershipEpoch::default(),
            next_group: 0,
            masks: Arc::new(SharedMaskCache::default()),
        }
    }

    /// The membership epoch this snapshot was published under.
    #[must_use]
    pub fn epoch(&self) -> MembershipEpoch {
        self.epoch
    }

    /// The configuration version of `gid` under this snapshot (default
    /// for groups never touched — including groups that do not exist,
    /// which no valid cache entry can name).
    #[must_use]
    pub fn group_epoch(&self, gid: GroupId) -> GroupEpoch {
        self.group_epochs.get(&gid).copied().unwrap_or_default()
    }

    /// The group a server belongs to.
    #[must_use]
    pub fn group_of(&self, id: MdsId) -> Option<GroupId> {
        self.group_of.get(&id).copied()
    }

    /// Borrow a group.
    #[must_use]
    pub fn group(&self, gid: GroupId) -> Option<&Group> {
        self.groups.get(&gid).map(|g| &**g)
    }

    /// Replicas held by `id` under this snapshot's placement.
    #[must_use]
    pub fn replicas_held_by(&self, id: MdsId) -> Vec<MdsId> {
        match self.group_of(id).and_then(|g| self.groups.get(&g)) {
            Some(group) => group.replicas_held_by(id),
            None => Vec::new(),
        }
    }
}

/// The cell type G-HBA publishes its routing snapshots through.
pub(crate) type RouteCell = Arc<SnapshotCell<RouteSnapshot, SlabSpare>>;

/// Builds a fresh cell around `snapshot` (spare slab mirrored from it).
pub(crate) fn route_cell(snapshot: RouteSnapshot) -> RouteCell {
    let spare = SlabSpare::new((*snapshot.slab).clone());
    Arc::new(SnapshotCell::new(snapshot, spare))
}

/// One open routing edit: a working copy of the current snapshot
/// (cheap: `Arc` clones per group plus the index maps) being mutated
/// off to the side, plus the slab ops to fold in at commit. Holds the
/// cell's writer lock, so edits — owner-driven or from a
/// [`ReconfigHandle`] — serialize; readers are never blocked.
pub(crate) struct RouteEdit<'a> {
    writer: CellWriter<'a, RouteSnapshot, SlabSpare>,
    pub(crate) work: RouteSnapshot,
    ops: Vec<SlabOp>,
    granularity: crate::config::EpochGranularity,
    /// Groups dissolved by this edit (merges, emptied groups): the
    /// owner evicts their cached L3 masks after committing.
    pub(crate) dissolved: Vec<GroupId>,
}

impl fmt::Debug for RouteEdit<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RouteEdit")
            .field("ops", &self.ops.len())
            .finish_non_exhaustive()
    }
}

impl<'a> RouteEdit<'a> {
    /// Opens an edit against the cell's current snapshot.
    pub(crate) fn begin(
        cell: &'a SnapshotCell<RouteSnapshot, SlabSpare>,
        granularity: crate::config::EpochGranularity,
    ) -> Self {
        let writer = cell.edit();
        let work = (*writer.base()).clone();
        RouteEdit {
            writer,
            work,
            ops: Vec::new(),
            granularity,
            dissolved: Vec::new(),
        }
    }

    /// Queues a slab mutation for commit. Edits never read the slab
    /// back, so deferred application is invisible to them.
    pub(crate) fn push_op(&mut self, op: SlabOp) {
        self.ops.push(op);
    }

    /// Mutable access to a group, copy-on-write: the first touch clones
    /// the group out of the shared predecessor.
    ///
    /// # Panics
    ///
    /// Panics if `gid` is not a live group.
    pub(crate) fn group_mut(&mut self, gid: GroupId) -> &mut Group {
        Arc::make_mut(self.work.groups.get_mut(&gid).expect("group exists"))
    }

    /// Inserts a brand-new group.
    pub(crate) fn insert_group(&mut self, group: Group) {
        self.work.groups.insert(group.id(), Arc::new(group));
    }

    /// Allocates the next group id (monotonic, never recycled).
    pub(crate) fn alloc_group_id(&mut self) -> GroupId {
        let gid = GroupId(self.work.next_group);
        self.work.next_group += 1;
        gid
    }

    /// Removes a dissolved group and its epoch entry, recording it so
    /// the owner can evict its cached masks.
    pub(crate) fn remove_group(&mut self, gid: GroupId) -> Option<Arc<Group>> {
        let group = self.work.groups.remove(&gid);
        self.work.group_epochs.remove(&gid);
        if group.is_some() {
            self.dissolved.push(gid);
            self.work.masks.evict_group(gid);
        }
        group
    }

    /// Advances the membership epoch (see
    /// [`MembershipEpoch`](crate::MembershipEpoch)).
    pub(crate) fn bump_epoch(&mut self) {
        self.work.epoch.bump();
    }

    /// Records that this edit changed state `gid`'s derived masks
    /// depend on (membership, replica placement, or held counts). Under
    /// [`EpochGranularity::Global`](crate::EpochGranularity) this
    /// degrades to the all-or-nothing flush.
    pub(crate) fn touch_group(&mut self, gid: GroupId) {
        match self.granularity {
            crate::config::EpochGranularity::PerGroup => {
                self.work.group_epochs.entry(gid).or_default().bump();
            }
            crate::config::EpochGranularity::Global => self.touch_all_groups(),
        }
    }

    /// Bumps every live group's epoch — the invalidation scope of
    /// reconfigurations that place or drop a replica in every group.
    pub(crate) fn touch_all_groups(&mut self) {
        let gids: Vec<GroupId> = self.work.groups.keys().copied().collect();
        for gid in gids {
            self.work.group_epochs.entry(gid).or_default().bump();
        }
    }

    /// Publishes the successor snapshot with one pointer swap, folding
    /// the queued slab ops through the spare-slab recycling protocol.
    pub(crate) fn commit(mut self) {
        if self.ops.is_empty() {
            // The slab is untouched: the successor shares the published
            // slab's storage and the spare stays a valid mirror.
            self.writer.publish(self.work);
            return;
        }
        let published = self.writer.state().advance(&self.ops);
        self.work.slab = Arc::clone(&published);
        let prev = self.writer.publish(self.work);
        let displaced = match Arc::try_unwrap(prev) {
            Ok(snapshot) => Arc::try_unwrap(snapshot.slab).ok(),
            Err(_) => None,
        };
        self.writer
            .state()
            .recycle(displaced, &self.ops, &published);
    }
}

/// A cloneable, thread-safe handle that drives G-HBA group
/// reconfigurations **concurrently with lookups**: rebalances, splits,
/// and merges are pure routing edits (they move replica *placement*,
/// not server state), so a background thread can publish them through
/// the snapshot cell while pinned readers keep resolving against the
/// epoch they admitted under.
///
/// Handle-driven operations do not update the owner's aggregate
/// [`ClusterStats`](crate::ClusterStats) (the owner may be mid-batch on
/// another thread); they return their own move/report counts instead.
#[derive(Debug, Clone)]
pub struct ReconfigHandle {
    pub(crate) routes: RouteCell,
    pub(crate) max_group_size: usize,
    pub(crate) granularity: crate::config::EpochGranularity,
}

impl ReconfigHandle {
    /// The membership epoch of the currently published snapshot.
    #[must_use]
    pub fn epoch(&self) -> MembershipEpoch {
        self.routes.pin().epoch
    }

    /// Ids of the live groups under the current snapshot.
    #[must_use]
    pub fn group_ids(&self) -> Vec<GroupId> {
        self.routes.pin().groups.keys().copied().collect()
    }

    /// The configured maximum group size this handle enforces — the
    /// split rule keeps `max/2 + 1` members behind, merges refuse
    /// combined sizes past it. Controllers size their plans with this.
    #[must_use]
    pub fn max_group_size(&self) -> usize {
        self.max_group_size
    }

    /// Members of `gid` under the current snapshot, if it is live.
    #[must_use]
    pub fn group_members(&self, gid: GroupId) -> Option<Vec<MdsId>> {
        self.routes
            .pin()
            .groups
            .get(&gid)
            .map(|g| g.members().to_vec())
    }

    /// Rebalances `gid` (heaviest-to-lightest replica moves until the
    /// spread is ≤ 1) and publishes the result. Returns the number of
    /// moves, or `None` if the group is no longer live.
    #[must_use]
    pub fn rebalance_group(&self, gid: GroupId) -> Option<u64> {
        let mut edit = RouteEdit::begin(&self.routes, self.granularity);
        if !edit.work.groups.contains_key(&gid) {
            return None;
        }
        edit.bump_epoch();
        edit.touch_group(gid);
        let moves = edit.rebalance(gid);
        edit.commit();
        Some(moves)
    }

    /// Splits `gid` per §3.2 and publishes the result. Returns the new
    /// group's id, or `None` when the group is missing or too small for
    /// the split rule to leave both halves non-empty.
    #[must_use]
    pub fn split_group(&self, gid: GroupId) -> Option<GroupId> {
        let mut edit = RouteEdit::begin(&self.routes, self.granularity);
        let take = self.max_group_size / 2 + 1;
        let len = edit.work.groups.get(&gid).map(|g| g.len())?;
        if len <= take {
            return None;
        }
        let (new_gid, _report) = edit.split(gid, self.max_group_size);
        edit.commit();
        Some(new_gid)
    }

    /// Merges group `b` into group `a` and publishes the result.
    /// Returns `false` (without publishing) unless both groups are live,
    /// distinct, and fit within the configured maximum together.
    pub fn merge_groups(&self, a: GroupId, b: GroupId) -> bool {
        let mut edit = RouteEdit::begin(&self.routes, self.granularity);
        if a == b {
            return false;
        }
        let Some(len_a) = edit.work.groups.get(&a).map(|g| g.len()) else {
            return false;
        };
        let Some(len_b) = edit.work.groups.get(&b).map(|g| g.len()) else {
            return false;
        };
        if len_a + len_b > self.max_group_size {
            return false;
        }
        let _report = edit.merge(a, b);
        edit.commit();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn pin_returns_published_value() {
        let cell: SnapshotCell<u32> = SnapshotCell::new(7, ());
        assert_eq!(*cell.pin(), 7);
        let mut writer = cell.edit();
        assert_eq!(*writer.base(), 7);
        let displaced = writer.publish(8);
        assert_eq!(*displaced, 7);
        drop(writer);
        assert_eq!(*cell.pin(), 8);
    }

    #[test]
    fn pins_outlive_publishes() {
        let cell: SnapshotCell<u32> = SnapshotCell::new(0, ());
        let old = cell.pin();
        for round in 1..10 {
            let mut writer = cell.edit();
            writer.publish(round);
        }
        assert_eq!(*old, 0, "a pinned snapshot is immutable across swaps");
        assert_eq!(*cell.pin(), 9);
    }

    #[test]
    fn displaced_arc_becomes_exclusive_once_pins_drop() {
        let cell: SnapshotCell<Vec<u8>> = SnapshotCell::new(vec![1], ());
        let pin = cell.pin();
        let mut writer = cell.edit();
        let displaced = writer.publish(vec![2]);
        assert!(
            Arc::try_unwrap(displaced.clone()).is_err(),
            "the pin still shares the displaced snapshot"
        );
        drop(pin);
        drop(displaced.clone());
        assert_eq!(Arc::strong_count(&displaced), 1);
        assert_eq!(Arc::try_unwrap(displaced).expect("exclusive"), vec![1]);
    }

    /// Readers hammering `pin` observe only fully-formed, monotonically
    /// advancing snapshots while a writer publishes continuously.
    #[test]
    fn concurrent_readers_see_monotonic_snapshots() {
        let cell: Arc<SnapshotCell<(u64, u64)>> = Arc::new(SnapshotCell::new((0, 0), ()));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut last = 0u64;
                    let mut seen = 0u64;
                    // Pin at least once even if this thread is first
                    // scheduled after the writer finished (single-core
                    // machines).
                    loop {
                        let snap = cell.pin();
                        assert_eq!(snap.0, snap.1, "torn snapshot observed");
                        assert!(snap.0 >= last, "snapshot went backwards");
                        last = snap.0;
                        seen += 1;
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    seen
                })
            })
            .collect();
        for value in 1..=500u64 {
            let mut writer = cell.edit();
            writer.publish((value, value));
        }
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            assert!(reader.join().expect("reader panicked") > 0);
        }
        assert_eq!(*cell.pin(), (500, 500));
    }

    /// Under reader/writer contention every published snapshot is
    /// dropped exactly once and never observed torn — the practical
    /// stand-in for a loom model of the SeqCst guard handshake (loom is
    /// not a dependency): a writer-side drain racing a reader's clone
    /// shows up here as a payload-canary failure, a refcount crash, or
    /// a drop-count mismatch.
    #[test]
    fn every_snapshot_dropped_exactly_once_under_contention() {
        const CANARY: u64 = 0x5EED_CAFE;
        struct Counted {
            value: u64,
            canary: u64,
            drops: Arc<AtomicUsize>,
        }
        impl Drop for Counted {
            fn drop(&mut self) {
                assert_eq!(self.canary, self.value ^ CANARY, "payload torn");
                self.drops.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let make = |value: u64| Counted {
            value,
            canary: value ^ CANARY,
            drops: Arc::clone(&drops),
        };
        const PUBLISHES: u64 = 2_000;
        let cell: Arc<SnapshotCell<Counted>> = Arc::new(SnapshotCell::new(make(0), ()));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                thread::spawn(move || loop {
                    let snap = cell.pin();
                    assert_eq!(snap.canary, snap.value ^ CANARY, "pinned payload torn");
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                })
            })
            .collect();
        for value in 1..=PUBLISHES {
            let mut writer = cell.edit();
            let _displaced = writer.publish(make(value));
        }
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            reader.join().expect("reader panicked");
        }
        drop(cell);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            PUBLISHES as usize + 1,
            "each snapshot reclaimed exactly once"
        );
    }

    #[test]
    fn slab_spare_recycles_through_the_publish_protocol() {
        use ghba_bloom::FilterShape;
        let shape = FilterShape {
            bits: 256,
            hashes: 3,
            seed: 9,
        };
        let mut published = Arc::new(SharedShapeArray::<MdsId>::new(shape));
        let mut spare = SlabSpare::new((*published).clone());
        let mut filter = BloomFilter::new(shape.bits, shape.hashes, shape.seed);
        filter.insert("hello");
        let rounds: Vec<Vec<SlabOp>> = vec![
            vec![SlabOp::Push(MdsId(0)), SlabOp::Push(MdsId(1))],
            vec![SlabOp::PushFilter(MdsId(2), filter)],
            vec![SlabOp::Remove(MdsId(1))],
        ];
        for ops in &rounds {
            let next = spare.advance(ops);
            let displaced = Arc::try_unwrap(core::mem::replace(&mut published, next)).ok();
            spare.recycle(displaced, ops, &published);
        }
        let ids: Vec<MdsId> = published.ids().collect();
        assert_eq!(ids, vec![MdsId(0), MdsId(2)]);
        assert_eq!(
            spare.slab.ids().collect::<Vec<_>>(),
            ids,
            "spare mirrors the published slab"
        );
        // A held reference forces the deep-copy fallback; the spare must
        // still mirror the published slab afterwards.
        let hold = Arc::clone(&published);
        let ops = vec![SlabOp::Push(MdsId(3))];
        let next = spare.advance(&ops);
        let displaced = Arc::try_unwrap(core::mem::replace(&mut published, next)).ok();
        assert!(
            displaced.is_none(),
            "the held pin blocks in-place recycling"
        );
        spare.recycle(displaced, &ops, &published);
        // The push reuses the slot the removal tombstoned, so slot order
        // is [0, 3, 2]; what matters is spare == published.
        assert_eq!(
            spare.slab.ids().collect::<Vec<_>>(),
            published.ids().collect::<Vec<_>>(),
        );
        assert_eq!(
            spare.slab.ids().collect::<Vec<_>>(),
            vec![MdsId(0), MdsId(3), MdsId(2)]
        );
        drop(hold);
    }
}
