//! Property tests for the wire codec: arbitrary `OpBatch`es (renames
//! and empty batches included) survive the frame round trip exactly,
//! and the decoder never panics on malformed bytes — truncations,
//! corrupt prefixes, random garbage.

use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

use ghba_core::{EntryPolicy, MdsId, MetadataOp, OpBatch, OpOutcome, PathKey};
use ghba_net::proto::NetMessage;
use ghba_net::wire::{Frame, WireError};

fn arb_policy() -> impl Strategy<Value = EntryPolicy> {
    prop_oneof![
        Just(EntryPolicy::Random),
        (0u64..16).prop_map(|id| EntryPolicy::Pinned(MdsId(id as u16))),
        (0u64..1_000_000).prop_map(|start| EntryPolicy::RoundRobin {
            start: start as usize
        }),
    ]
}

fn arb_op() -> impl Strategy<Value = MetadataOp> {
    prop_oneof![
        "[a-z0-9/._ -]{1,32}".prop_map(|p| MetadataOp::Create(PathKey::new(p))),
        "[a-z0-9/._ -]{1,32}".prop_map(|p| MetadataOp::Lookup(PathKey::new(p))),
        "[a-z0-9/._ -]{1,32}".prop_map(|p| MetadataOp::Remove(PathKey::new(p))),
        ("[a-z0-9/]{1,24}", "[a-z0-9/]{1,24}").prop_map(|(from, to)| MetadataOp::Rename {
            from: PathKey::new(from),
            to: PathKey::new(to),
        }),
    ]
}

fn arb_batch() -> impl Strategy<Value = (EntryPolicy, Vec<MetadataOp>)> {
    // 0..n op lists include the empty batch.
    (arb_policy(), proptest::collection::vec(arb_op(), 0..24))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any batch — any policy, any op mix including renames, empty
    /// included — crosses the wire bit-exactly.
    #[test]
    fn arbitrary_batches_round_trip(input in arb_batch(), seq in proptest::prelude::any::<u64>()) {
        let (policy, ops) = input;
        let mut batch = OpBatch::new().with_entry(policy);
        for op in ops {
            batch.push(op);
        }
        let msg = NetMessage::ExecuteBatch { seq, batch };
        let frame = msg.to_frame();
        let (decoded, consumed) = NetMessage::parse_frame(frame.bytes())
            .expect("well-formed frame must parse");
        prop_assert_eq!(consumed, frame.bytes().len());
        prop_assert_eq!(decoded, msg);
    }

    /// Truncating a valid frame at any point yields a typed error (or,
    /// for a cut through the length prefix itself, a Truncated length),
    /// never a panic and never a bogus decode.
    #[test]
    fn truncations_fail_typed(input in arb_batch(), cut in proptest::prelude::any::<u64>()) {
        let (policy, ops) = input;
        let mut batch = OpBatch::new().with_entry(policy);
        for op in ops {
            batch.push(op);
        }
        let frame = NetMessage::ExecuteBatch { seq: 1, batch }.to_frame();
        let bytes = frame.bytes();
        let cut = (cut as usize) % bytes.len();
        prop_assert!(
            NetMessage::parse_frame(&bytes[..cut]).is_err(),
            "a frame cut to {cut} of {} bytes must not parse",
            bytes.len()
        );
    }

    /// Random byte prefixes never panic the parser: every outcome is a
    /// clean `Ok` (an accidental valid frame) or a typed `WireError`.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..256)) {
        if let Ok((_, consumed)) = NetMessage::parse_frame(&bytes) {
            prop_assert!(consumed <= bytes.len());
        }
        // The raw frame layer holds the same guarantee.
        if let Ok((payload, consumed)) = Frame::parse(&bytes) {
            prop_assert!(consumed <= bytes.len());
            prop_assert!(payload.len() < consumed);
        }
    }

    /// Flipping any single byte of a valid frame never panics the
    /// parser; flips that land in a fingerprint lane are caught as
    /// CorruptFingerprint rather than admitted.
    #[test]
    fn single_byte_corruption_never_panics(input in arb_batch(), flip in proptest::prelude::any::<u64>()) {
        let (policy, ops) = input;
        let mut batch = OpBatch::new().with_entry(policy);
        for op in ops {
            batch.push(op);
        }
        let frame = NetMessage::ExecuteBatch { seq: 2, batch }.to_frame();
        let mut bytes = frame.bytes().to_vec();
        let index = (flip as usize) % bytes.len();
        bytes[index] ^= 1 << (flip % 8);
        let _ = NetMessage::parse_frame(&bytes);
    }

    /// Outcome replies round trip too — every OpOutcome shape.
    #[test]
    fn outcome_replies_round_trip(homes in proptest::collection::vec(proptest::prelude::any::<bool>(), 0..16)) {
        let outcomes: Vec<OpOutcome> = homes
            .iter()
            .enumerate()
            .map(|(i, &present)| match i % 3 {
                0 => OpOutcome::Created {
                    home: MdsId(i as u16),
                },
                1 => OpOutcome::Removed {
                    home: present.then_some(MdsId(i as u16)),
                },
                _ => OpOutcome::Renamed {
                    old_home: present.then_some(MdsId(0)),
                    new_home: present.then_some(MdsId(1)),
                },
            })
            .collect();
        let msg = NetMessage::BatchReply { seq: 9, outcomes };
        let (decoded, _) = NetMessage::parse_frame(msg.to_frame().bytes()).expect("parses");
        prop_assert_eq!(decoded, msg);
    }
}

/// Deterministic corruption coverage on top of the random sweeps: a
/// tampered fingerprint lane is always rejected as CorruptFingerprint.
#[test]
fn tampered_fingerprint_lane_is_always_caught() {
    let mut batch = OpBatch::new();
    batch.push_create("/exact/path");
    let mut payload = NetMessage::ExecuteBatch { seq: 0, batch }.encode();
    // The create's fingerprint occupies the final 16 bytes of the
    // payload; flip one bit in each lane byte and demand rejection.
    let len = payload.len();
    for i in (len - 16)..len {
        payload[i] ^= 0x80;
        let err = NetMessage::decode(&payload).expect_err("corrupt lane must fail");
        assert!(
            matches!(err, WireError::CorruptFingerprint { ref path } if path == "/exact/path"),
            "byte {i}: got {err}"
        );
        payload[i] ^= 0x80;
    }
    // Restored, it decodes again.
    assert!(NetMessage::decode(&payload).is_ok());
}
