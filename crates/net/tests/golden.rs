//! Golden-file compatibility test for the binary wire format.
//!
//! The checked-in fixture (`tests/data/frames.bin`) freezes wire
//! version 1: a concatenated sequence of frames covering every message
//! tag, every `MetadataOp` variant (`Rename` included), an empty
//! batch, a unicode pathname, and every `OpOutcome` shape. Any future
//! touch of the codec must keep these bytes parsing — and re-encoding
//! — **byte-identically**; a change that breaks this test breaks every
//! peer already deployed on version 1. (Mirrors the trace crate's
//! `tests/golden.rs` discipline for its text format.)
//!
//! Regenerate (only alongside a deliberate `WIRE_VERSION` bump):
//! `cargo test -p ghba-net --test golden -- --ignored regenerate`.

use std::time::Duration;

use ghba_bloom::Fingerprint;
use ghba_core::{
    EntryPolicy, MdsId, MembershipEpoch, OpBatch, OpOutcome, QueryLevel, QueryOutcome,
};
use ghba_net::proto::NetMessage;

const GOLDEN: &[u8] = include_bytes!("data/frames.bin");

/// The frozen message sequence the fixture encodes.
fn canonical_messages() -> Vec<NetMessage> {
    let mut batch = OpBatch::new().with_entry(EntryPolicy::RoundRobin { start: 5 });
    batch.push_lookup("/projects/ghba/paper.tex");
    batch.push_create("/projects/ghba/κεφάλαιο-δύο.tex");
    batch.push_remove("/tmp/scratch");
    batch.push_rename("/projects/ghba/draft", "/archive/ghba/draft-2008");
    vec![
        NetMessage::RegisterReplica {
            replica: 3,
            addr: "127.0.0.1:47113".to_string(),
        },
        NetMessage::RegisterAck { epoch: 4 },
        NetMessage::FetchMap,
        NetMessage::MapReply {
            epoch: 4,
            replicas: vec![
                (0, "127.0.0.1:9000".to_string()),
                (3, "127.0.0.1:47113".to_string()),
            ],
        },
        NetMessage::ExecuteBatch { seq: 99, batch },
        NetMessage::ExecuteBatch {
            seq: 100,
            batch: OpBatch::new().with_entry(EntryPolicy::Pinned(MdsId(7))),
        },
        NetMessage::BatchReply {
            seq: 99,
            outcomes: vec![
                OpOutcome::Resolved(QueryOutcome {
                    home: Some(MdsId(2)),
                    level: QueryLevel::L2Segment,
                    latency: Duration::from_nanos(1_250_000),
                    messages: 3,
                    entry: MdsId(5),
                    epoch: MembershipEpoch(2),
                }),
                OpOutcome::Created { home: MdsId(6) },
                OpOutcome::Removed { home: None },
                OpOutcome::Renamed {
                    old_home: Some(MdsId(1)),
                    new_home: Some(MdsId(0)),
                },
            ],
        },
        NetMessage::Gossip {
            epoch: 7,
            members: vec![MdsId(0), MdsId(1), MdsId(2), MdsId(3)],
        },
        NetMessage::GroupProbe {
            qid: 41,
            fp: Fingerprint::of("/projects/ghba/paper.tex"),
        },
        NetMessage::ProbeReply {
            qid: 41,
            replica: 3,
            positives: vec![MdsId(2), MdsId(5)],
        },
        NetMessage::Drain,
        NetMessage::DrainAck {
            drained: 17,
            pending: 0,
        },
        NetMessage::Stats,
        NetMessage::StatsReply {
            pending: 2,
            batches_served: 101,
            gossip_epoch: 7,
        },
        NetMessage::Ping { nonce: 0xDEAD_BEEF },
        NetMessage::Pong { nonce: 0xDEAD_BEEF },
        NetMessage::Shutdown,
        NetMessage::ErrorReply {
            code: 405,
            detail: "rendezvous does not serve Drain".to_string(),
        },
    ]
}

fn encode_all(messages: &[NetMessage]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for msg in messages {
        bytes.extend_from_slice(msg.to_frame().bytes());
    }
    bytes
}

#[test]
fn golden_bytes_decode_to_the_canonical_messages() {
    let expected = canonical_messages();
    let mut decoded = Vec::new();
    let mut rest = GOLDEN;
    while !rest.is_empty() {
        let (msg, consumed) = NetMessage::parse_frame(rest).expect("golden frame parses");
        decoded.push(msg);
        rest = &rest[consumed..];
    }
    assert_eq!(decoded, expected);
}

#[test]
fn canonical_messages_reencode_byte_identically() {
    assert_eq!(
        encode_all(&canonical_messages()),
        GOLDEN,
        "re-encoding the canonical messages must reproduce the fixture byte for byte; \
         if the format changed deliberately, bump WIRE_VERSION and regenerate"
    );
}

#[test]
fn golden_stream_reads_through_the_codec() {
    // The same bytes, consumed through the stream reader (BufReader
    // semantics, clean EOF at the end).
    let mut reader = GOLDEN;
    let mut decoded = Vec::new();
    while let Some(msg) = NetMessage::read_from(&mut reader).expect("stream reads") {
        decoded.push(msg);
    }
    assert_eq!(decoded, canonical_messages());
}

/// Writes the fixture. Run only alongside a deliberate format change.
#[test]
#[ignore = "regenerates the checked-in fixture"]
fn regenerate() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/frames.bin");
    std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
    std::fs::write(path, encode_all(&canonical_messages())).unwrap();
}
