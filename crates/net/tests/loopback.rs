//! End-to-end loopback deployment tests: rendezvous + 3 replica
//! servers + concurrent clients over real `127.0.0.1` TCP, checked
//! against the in-process [`Federation`] ground truth.
//!
//! The headline property: **every `OpOutcome` crossing the wire is
//! bit-identical to direct in-process `execute_concurrent` on the same
//! trace.** The recipe making that decidable under true concurrency:
//!
//! * deterministic entry policies only (`RoundRobin` per client — no
//!   RNG draws anywhere in the concurrent path);
//! * the "intensified Zipf, K-client partition" profile
//!   (`ClientPartition`): clients never mutate each other's
//!   namespaces, so per-client outcomes are independent of how the
//!   servers interleave the two clients' batches;
//! * a huge update threshold freezes gated filter publishes mid-phase,
//!   and explicit `Drain` barriers at phase boundaries are the *only*
//!   points where published state changes — mirrored on the ground
//!   truth by `Federation::drain_all` at the same boundaries;
//! * the replicas' background reconcilers run on an hour-long cadence,
//!   so no background drain can fire mid-phase.

use std::time::Duration;

use ghba_core::{EntryPolicy, GhbaConfig, OpBatch, OpOutcome};
use ghba_net::{
    execute_sharded, record_batches, FleetSpec, LoopbackNet, NetClient, Rendezvous, ReplicaConfig,
    ReplicaServer,
};
use ghba_trace::{ClientPartition, WorkloadProfile};

const REPLICAS: usize = 3;
const SERVERS: usize = 4;
const CLIENTS: u32 = 2;
const SEED: u64 = 0x0E2E;
const BATCH_WINDOW: usize = 64;
const OPS_PER_CLIENT: usize = 1_500;

fn base_config() -> GhbaConfig {
    GhbaConfig::default()
        .with_filter_capacity(20_000)
        .with_lru_capacity(0)
        // Freeze gated publishes: only explicit Drain barriers change
        // published filter state mid-run.
        .with_update_threshold(1 << 24)
}

/// A small-population RES profile so pre-population stays fast.
fn profile() -> WorkloadProfile {
    let mut profile = WorkloadProfile::res();
    profile.total_files = 20_000;
    profile.active_files = 2_000;
    profile
}

fn populate_batches(fleet: &ClientPartition) -> Vec<OpBatch> {
    let mut batches = Vec::new();
    let mut policy = EntryPolicy::RoundRobin { start: 0 };
    let mut batch = OpBatch::new();
    for path in fleet.initial_paths() {
        batch.push_create(path);
        if batch.len() >= 256 {
            let ops = batch.len();
            batches.push(std::mem::take(&mut batch).with_entry(policy.advance(ops)));
        }
    }
    if !batch.is_empty() {
        let ops = batch.len();
        batches.push(batch.with_entry(policy.advance(ops)));
    }
    batches
}

fn client_batches(fleet: &ClientPartition, k: u32) -> Vec<OpBatch> {
    record_batches(
        fleet.client(k).take(OPS_PER_CLIENT),
        BATCH_WINDOW,
        EntryPolicy::RoundRobin { start: k as usize },
    )
    .collect()
}

/// The headline equivalence test: populate → barrier → two truly
/// concurrent clients replaying mixed traffic → barrier → read-only
/// audit, with every networked outcome demanded bit-identical to the
/// in-process ground truth.
#[test]
fn networked_outcomes_are_bit_identical_to_in_process_execution() {
    let net = LoopbackNet::launch(FleetSpec::new(REPLICAS, SERVERS, base_config()))
        .expect("fleet launches");
    let mut truth = net.ground_truth();
    let fleet = ClientPartition::new(profile(), CLIENTS, SEED);

    // Phase 1: populate (one client, serial) — outcomes must already
    // agree batch for batch.
    let mut client0 = net.client().expect("client connects");
    for batch in populate_batches(&fleet) {
        let net_out = client0.execute(&batch).expect("populate batch");
        let truth_out = execute_sharded(&mut truth, &batch).expect("ground truth");
        assert_eq!(net_out, truth_out, "populate outcomes diverged");
    }

    // Barrier: both sides drain + flush at the same point.
    let acks = client0.drain_all().expect("drain barrier");
    assert!(acks.iter().all(|&(_, pending)| pending == 0));
    truth.drain_all();

    // Phase 2: two concurrent clients replay mixed traffic over their
    // own connections — true thread-level concurrency on the wire.
    let mut handles = Vec::new();
    for k in 0..CLIENTS {
        let batches = client_batches(&fleet, k);
        let mut client = net.client().expect("client connects");
        handles.push(std::thread::spawn(move || -> Vec<Vec<OpOutcome>> {
            batches
                .iter()
                .map(|batch| client.execute(batch).expect("client batch"))
                .collect()
        }));
    }
    let net_phase2: Vec<Vec<Vec<OpOutcome>>> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();

    // Ground truth replays the same batches serially, client-major:
    // write-disjoint namespaces and frozen publishes make each
    // client's outcomes independent of the interleaving.
    for k in 0..CLIENTS {
        for (i, batch) in client_batches(&fleet, k).iter().enumerate() {
            let truth_out = execute_sharded(&mut truth, batch).expect("ground truth");
            assert_eq!(
                net_phase2[k as usize][i], truth_out,
                "client {k} batch {i}: networked outcome diverged from in-process execution"
            );
        }
    }

    // Barrier again, then a read-only audit over both namespaces.
    client0.drain_all().expect("drain barrier");
    truth.drain_all();
    let mut audit = OpBatch::new().with_entry(EntryPolicy::RoundRobin { start: 1 });
    for path in fleet.shared_initial_paths().take(200) {
        audit.push_lookup(path);
    }
    for k in 0..CLIENTS {
        for path in fleet.client_initial_paths(k).take(100) {
            audit.push_lookup(path);
        }
    }
    let net_out = client0.execute(&audit).expect("audit");
    let truth_out = execute_sharded(&mut truth, &audit).expect("ground truth");
    assert_eq!(net_out, truth_out, "read-only audit diverged");
    // The audit is not vacuous: populated paths resolve.
    assert!(
        net_out.iter().filter_map(OpOutcome::home).count() > 350,
        "most audited paths must resolve to a home"
    );

    net.shutdown();
}

/// The fleet-wide group-probe multicast agrees with ground truth: the
/// true home's replica claims a published path, and a never-created
/// path draws no structural positives beyond Bloom false positives'
/// replica-local noise.
#[test]
fn group_probe_multicast_finds_published_homes() {
    let net =
        LoopbackNet::launch(FleetSpec::new(REPLICAS, 2, base_config())).expect("fleet launches");
    let mut client = net.client().expect("client connects");
    let mut batch = OpBatch::new().with_entry(EntryPolicy::RoundRobin { start: 0 });
    for i in 0..64 {
        batch.push_create(format!("/probe/f{i}"));
    }
    let outcomes = client.execute(&batch).expect("creates");
    client.drain_all().expect("publish");

    for (i, outcome) in outcomes.iter().enumerate() {
        let key = ghba_core::PathKey::new(format!("/probe/f{i}"));
        let home = outcome.home().expect("created");
        let home_replica = ghba_net::replica_of(&key, REPLICAS) as u16;
        let replies = client
            .probe_all(i as u64, key.fingerprint())
            .expect("probe");
        let (_, positives) = replies
            .iter()
            .find(|(replica, _)| *replica == home_replica)
            .expect("every replica answers");
        assert!(
            positives.contains(&home),
            "path {i}: home replica's published filter must claim its own file"
        );
    }
    net.shutdown();
}

/// Gossip frames propagate a membership view fleet-wide, visible via
/// stats on the same (ordered) connections; stale epochs never
/// regress it.
#[test]
fn gossip_epoch_propagates_fleet_wide() {
    let net =
        LoopbackNet::launch(FleetSpec::new(REPLICAS, 2, base_config())).expect("fleet launches");
    let mut client = net.client().expect("client connects");
    let members: Vec<_> = (0..4).map(ghba_core::MdsId).collect();
    client.gossip(42, &members).expect("gossip");
    client.gossip(7, &members).expect("stale gossip");
    for replica in 0..REPLICAS {
        let stats = client.stats(replica).expect("stats");
        assert_eq!(stats.gossip_epoch, 42, "replica {replica}");
    }
    net.shutdown();
}

/// The background reconciler drains pending writes without any client
/// barrier when given a short cadence.
#[test]
fn background_cadence_drains_without_barriers() {
    let net = LoopbackNet::launch(
        FleetSpec::new(2, 2, base_config()).with_drain_cadence(Duration::from_millis(5)),
    )
    .expect("fleet launches");
    let mut client = net.client().expect("client connects");
    let mut batch = OpBatch::new().with_entry(EntryPolicy::RoundRobin { start: 0 });
    for i in 0..128 {
        batch.push_create(format!("/bg/f{i}"));
    }
    client.execute(&batch).expect("creates");
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let pending: u64 = (0..2)
            .map(|r| client.stats(r).expect("stats").pending)
            .sum();
        if pending == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "reconcilers never drained {pending} pending writes"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    net.shutdown();
}

/// A client survives a replica crash-and-restart: the retry path
/// re-fetches the map (the restarted replica re-registered under a
/// *new* ephemeral port), reconnects, and the request succeeds — no
/// failure surfaces to the caller.
#[test]
fn client_reconnects_after_replica_restart() {
    let rendezvous = Rendezvous::spawn("127.0.0.1:0").expect("rendezvous binds");
    let rv_addr = rendezvous.addr().to_string();
    let replica = ReplicaServer::spawn(
        ReplicaConfig::new(0, 2, base_config()).with_rendezvous(rv_addr.clone()),
    )
    .expect("replica spawns");
    let old_addr = replica.addr();

    let mut client =
        NetClient::connect(&rv_addr, 1, Duration::from_secs(10)).expect("client connects");
    client.ping_all(1).expect("fleet answers before the crash");

    // Crash: the replica goes away entirely, its port with it.
    replica.shutdown();
    // Restart under the same shard index — a new ephemeral port, so a
    // stale client connection (and a stale map) can't reach it.
    let replica =
        ReplicaServer::spawn(ReplicaConfig::new(0, 2, base_config()).with_rendezvous(rv_addr))
            .expect("replica restarts");
    assert_ne!(replica.addr(), old_addr, "restart must change the port");

    // The client's connection is dead, but the request still succeeds:
    // loss → map re-fetch → reconnect → retry, inside `request`.
    client.ping_all(2).expect("retry path hides the restart");
    assert!(client.reconnects() >= 1, "the success came via reconnect");
    let mut batch = OpBatch::new().with_entry(EntryPolicy::RoundRobin { start: 0 });
    batch.push_create("/retry/a");
    batch.push_lookup("/retry/a");
    let outcomes = client.execute(&batch).expect("batches flow again");
    assert!(outcomes[1].home().is_some());

    replica.shutdown();
    rendezvous.shutdown();
}

/// The rendezvous liveness sweep prunes a replica that stops answering
/// pings — and only that one: the live replica stays registered while
/// the dead entry disappears and the epoch advances past the prune.
#[test]
fn rendezvous_liveness_prunes_silent_replicas() {
    let rendezvous = Rendezvous::spawn_with_liveness("127.0.0.1:0", Duration::from_millis(10), 2)
        .expect("rendezvous binds");
    let rv_addr = rendezvous.addr().to_string();
    let live = ReplicaServer::spawn(
        ReplicaConfig::new(0, 2, base_config()).with_rendezvous(rv_addr.clone()),
    )
    .expect("replica spawns");
    let doomed =
        ReplicaServer::spawn(ReplicaConfig::new(1, 2, base_config()).with_rendezvous(rv_addr))
            .expect("replica spawns");
    // Both registered; the sweep sees both answering.
    assert_eq!(rendezvous.snapshot().1.len(), 2);

    // Replica 1 goes silent (its port stops accepting).
    doomed.shutdown();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (_, replicas) = rendezvous.snapshot();
        if replicas.len() == 1 {
            assert_eq!(replicas[0].0, 0, "the live replica must survive");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "liveness sweep never pruned the dead replica"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    live.shutdown();
    rendezvous.shutdown();
}

/// The kill-and-recover headline: a WAL-backed replica is killed
/// mid-load (no final drain — un-drained writes die with it), restarts
/// from checkpoint + WAL replay, re-registers with the rendezvous, and
/// the federation's outcomes stay **bit-identical to an uninterrupted
/// in-process run** — before, across, and after the crash. Writes that
/// had reached a drain barrier survive; writes that hadn't vanish on
/// both sides, because the ground truth never executes them.
#[test]
fn kill_and_recover_preserves_bit_identical_outcomes() {
    const VICTIM: usize = 1;
    let wal_root = std::env::temp_dir().join(format!("ghba-wal-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_root);
    let mut net = LoopbackNet::launch(
        FleetSpec::new(REPLICAS, SERVERS, base_config()).with_wal_root(&wal_root),
    )
    .expect("fleet launches");
    let mut truth = net.ground_truth();
    let fleet = ClientPartition::new(profile(), CLIENTS, SEED);

    // Phase 1: populate, then a drain barrier — the durability point.
    let mut client = net.client().expect("client connects");
    for batch in populate_batches(&fleet) {
        let net_out = client.execute(&batch).expect("populate batch");
        let truth_out = execute_sharded(&mut truth, &batch).expect("ground truth");
        assert_eq!(net_out, truth_out, "populate outcomes diverged");
    }
    client.drain_all().expect("drain barrier");
    truth.drain_all();

    // Phase 2: half the mixed traffic lands and drains (durable)...
    let batches = client_batches(&fleet, 0);
    let (before, after) = batches.split_at(batches.len() / 2);
    for batch in before {
        let net_out = client.execute(batch).expect("pre-crash batch");
        let truth_out = execute_sharded(&mut truth, batch).expect("ground truth");
        assert_eq!(net_out, truth_out, "pre-crash outcomes diverged");
    }
    client.drain_all().expect("drain barrier");
    truth.drain_all();

    // ...then a burst of creates aimed at the victim's shard is
    // accepted but *never drained*: the crash must erase it. The
    // ground truth never executes these, so post-recovery equality
    // proves the un-drained writes died with the process.
    let mut doomed_paths = Vec::new();
    let mut i = 0usize;
    while doomed_paths.len() < 32 {
        let path = format!("/lost/f{i}");
        if ghba_net::replica_of(&ghba_core::PathKey::new(path.clone()), REPLICAS) == VICTIM {
            doomed_paths.push(path);
        }
        i += 1;
    }
    let mut doomed = OpBatch::new().with_entry(EntryPolicy::RoundRobin { start: 0 });
    for path in &doomed_paths {
        doomed.push_create(path.clone());
    }
    let pre_crash = client.execute(&doomed).expect("doomed creates accepted");
    assert!(pre_crash.iter().all(|o| o.home().is_some()));

    // Crash mid-load and recover: replay checkpoint + WAL tail, bind a
    // new port, re-register (epoch bump → clients re-discover).
    net.kill_replica(VICTIM);
    net.restart_replica(VICTIM)
        .expect("replica recovers from its WAL");

    // Phase 3: the rest of the load flows through the client's
    // reconnect path, still bit-identical.
    for batch in after {
        let net_out = client.execute(batch).expect("post-recovery batch");
        let truth_out = execute_sharded(&mut truth, batch).expect("ground truth");
        assert_eq!(net_out, truth_out, "post-recovery outcomes diverged");
    }
    assert!(client.reconnects() >= 1, "phase 3 crossed the restart");
    let acks = client.drain_all().expect("drain barrier");
    assert!(acks.iter().all(|&(_, pending)| pending == 0));
    truth.drain_all();

    // Final audit: durable paths resolve identically on both sides;
    // the un-drained creates are gone from both.
    let mut audit = OpBatch::new().with_entry(EntryPolicy::RoundRobin { start: 1 });
    for path in fleet.shared_initial_paths().take(200) {
        audit.push_lookup(path);
    }
    for k in 0..CLIENTS {
        for path in fleet.client_initial_paths(k).take(100) {
            audit.push_lookup(path);
        }
    }
    for path in &doomed_paths {
        audit.push_lookup(path.clone());
    }
    let net_out = client.execute(&audit).expect("audit");
    let truth_out = execute_sharded(&mut truth, &audit).expect("ground truth");
    assert_eq!(
        net_out, truth_out,
        "post-recovery audit diverged from the uninterrupted run"
    );
    assert!(
        net_out[..400].iter().filter_map(OpOutcome::home).count() > 350,
        "durable paths must still resolve after recovery"
    );
    assert!(
        net_out[400..].iter().all(|o| o.home().is_none()),
        "un-drained creates must not survive the crash"
    );

    net.shutdown();
    let _ = std::fs::remove_dir_all(&wal_root);
}

/// Regression (PR 9 + PR 10): a replica struck from the directory by
/// the liveness sweep recovers from its WAL and re-registers cleanly —
/// the acked registration epoch strictly exceeds the post-prune epoch
/// (monotonic advance, never a reuse), the entry survives further
/// sweeps, and the durable namespace is served again.
#[test]
fn pruned_replica_reregisters_with_a_monotonically_advanced_epoch() {
    let wal_root = std::env::temp_dir().join(format!("ghba-wal-prune-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_root);
    let rendezvous = Rendezvous::spawn_with_liveness("127.0.0.1:0", Duration::from_millis(10), 2)
        .expect("rendezvous binds");
    let rv_addr = rendezvous.addr().to_string();
    let config = || {
        ReplicaConfig::new(0, 2, base_config())
            .with_rendezvous(rv_addr.clone())
            .with_wal_dir(wal_root.clone())
    };
    let replica = ReplicaServer::spawn(config()).expect("replica spawns");
    let first_epoch = replica.registration_epoch();
    assert!(first_epoch >= 1, "registration acks a real epoch");

    // Something durable to serve after recovery.
    let mut client =
        NetClient::connect(&rv_addr, 1, Duration::from_secs(10)).expect("client connects");
    let mut batch = OpBatch::new().with_entry(EntryPolicy::RoundRobin { start: 0 });
    batch.push_create("/prune/survivor");
    client.execute(&batch).expect("create");
    client.drain_all().expect("durability point");

    // Crash without unregistering: the port goes silent and the
    // liveness sweep strikes the replica from the directory.
    replica.kill();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let pruned_epoch = loop {
        let (epoch, replicas) = rendezvous.snapshot();
        if replicas.is_empty() {
            break epoch;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "liveness sweep never pruned the killed replica"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        pruned_epoch > first_epoch,
        "the prune itself bumps the epoch"
    );

    // Recover under the same shard index and WAL directory: the
    // re-registration must land *after* the prune in epoch order.
    let replica = ReplicaServer::spawn(config()).expect("replica recovers");
    assert!(
        replica.registration_epoch() > pruned_epoch,
        "re-registration epoch must advance past the prune ({} vs {pruned_epoch})",
        replica.registration_epoch(),
    );

    // The re-registered entry answers pings, so further sweeps keep it.
    std::thread::sleep(Duration::from_millis(100));
    let (_, replicas) = rendezvous.snapshot();
    assert_eq!(replicas.len(), 1, "the recovered replica stays registered");
    assert_eq!(replicas[0].0, 0);

    // And the durable namespace came back with it.
    let mut client =
        NetClient::connect(&rv_addr, 1, Duration::from_secs(10)).expect("client reconnects");
    let mut read = OpBatch::new().with_entry(EntryPolicy::RoundRobin { start: 0 });
    read.push_lookup("/prune/survivor");
    let outcomes = client.execute(&read).expect("lookup");
    assert!(
        outcomes[0].home().is_some(),
        "the recovered replica must serve its durable namespace"
    );

    replica.shutdown();
    rendezvous.shutdown();
    let _ = std::fs::remove_dir_all(&wal_root);
}

/// Liveness plumbing: pings echo, batches are counted, and a fresh
/// client can join an already-running fleet through the rendezvous.
#[test]
fn fleet_liveness_and_late_joining_clients() {
    let net =
        LoopbackNet::launch(FleetSpec::new(REPLICAS, 2, base_config())).expect("fleet launches");
    let mut first = net.client().expect("client connects");
    first.ping_all(0x1234).expect("pings echo");
    let mut batch = OpBatch::new().with_entry(EntryPolicy::RoundRobin { start: 0 });
    batch.push_create("/live/a");
    first.execute(&batch).expect("create");

    let mut late = net.client().expect("late client connects");
    let mut read = OpBatch::new().with_entry(EntryPolicy::RoundRobin { start: 0 });
    read.push_lookup("/live/a");
    let outcomes = late.execute(&read).expect("lookup");
    assert!(
        outcomes[0].home().is_some(),
        "the late client must see the first client's (undrained) create"
    );
    let served: u64 = (0..REPLICAS)
        .map(|r| late.stats(r).expect("stats").batches_served)
        .sum();
    assert!(served >= 2, "replicas count served batches (got {served})");
    net.shutdown();
}
