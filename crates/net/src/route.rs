//! Path-sharded federation routing: which replica serves which op, and
//! the two-wave rename plan that keeps cross-replica renames exact.
//!
//! The networked deployment shards the namespace across `R` replica
//! processes by fingerprint: op for path `p` goes to replica
//! `fp(p).lanes().0 % R` ([`replica_of`]). Each replica owns a full
//! [`GhbaCluster`] for its shard, so within a shard the whole G-HBA
//! hierarchy (L1 LRU → L2 segment → L3 group multicast → L4 sweep)
//! applies unchanged.
//!
//! [`execute_sharded`] is the **one** planner both deployments run:
//!
//! * the in-process [`Federation`] (ground truth for the loopback
//!   end-to-end tests), and
//! * the TCP [`NetClient`](crate::client::NetClient) talking to real
//!   replica processes,
//!
//! both implement [`BatchTransport`] and hand their batches to the same
//! partition/stitch logic — so "networked outcomes == in-process
//! outcomes" holds *by construction* for everything above the
//! transport.
//!
//! # The two-wave rename
//!
//! A rename whose `from` and `to` fingerprints land on different
//! replicas cannot ship as a native `Rename` (no replica sees both
//! sides). The planner splits it:
//!
//! 1. **Wave 1** — the `from` replica executes a `Remove(from)` in
//!    stream position, alongside every unsplit op.
//! 2. **Wave 2** — for each split rename whose remove reported
//!    `Some(old_home)` (the source existed), the `to` replica executes
//!    a `Create(to)`; renames of absent sources send nothing, exactly
//!    like the in-cluster pipeline's no-op rename.
//!
//! The planner then stitches `Renamed { old_home, new_home }` back into
//! the original op position. This mirrors the remove-then-create
//! decomposition the concurrent pipeline itself uses for cross-shard
//! renames (no op ever holds two shards), lifted one level to
//! cross-replica.

use ghba_core::{
    GhbaCluster, GhbaConfig, MetadataOp, MetadataService, OpBatch, OpOutcome, PathKey,
};

use crate::wire::WireError;

/// Salt mixing a replica's index into its cluster seed, so no two
/// replicas of a fleet share RNG streams or filter families.
const REPLICA_SEED_SALT: u64 = 0xA24B_AED4_963E_E407;

/// The replica index serving `key` in a fleet of `replicas`.
///
/// Uses the admission fingerprint's first lane — the path bytes are
/// never re-hashed to route.
///
/// # Panics
///
/// Panics if `replicas == 0`.
#[must_use]
pub fn replica_of(key: &PathKey, replicas: usize) -> usize {
    assert!(replicas > 0, "a fleet needs at least one replica");
    (key.fingerprint().lanes().0 % replicas as u64) as usize
}

/// The cluster configuration replica `replica` of a fleet runs: the
/// fleet's base config with a per-replica seed offset.
///
/// Every deployment of a fleet — the [`Federation`] ground truth, the
/// loopback harness, the `replica` binary — must derive its per-replica
/// configs through this one function, or their RNG streams (and thus
/// their `Random`-policy outcomes and filter families) diverge.
#[must_use]
pub fn replica_config(base: &GhbaConfig, replica: usize) -> GhbaConfig {
    let mut config = base.clone();
    config.seed = base
        .seed
        .wrapping_add(REPLICA_SEED_SALT.wrapping_mul(replica as u64 + 1));
    config
}

/// A transport that can execute an [`OpBatch`] on one replica of a
/// fleet. [`execute_sharded`] is generic over this seam; everything
/// above it (partitioning, rename waves, stitching) is shared.
pub trait BatchTransport {
    /// Number of replicas in the fleet.
    fn replica_count(&self) -> usize;

    /// Executes `batch` on replica `replica`, returning one outcome per
    /// op in order.
    fn execute_on(&mut self, replica: usize, batch: &OpBatch) -> Result<Vec<OpOutcome>, WireError>;
}

/// How op `i` of the original batch is answered by the waves.
enum Slot {
    /// Answered directly by sub-op `index` of wave 1 on `replica`.
    Direct { replica: usize, index: usize },
    /// A rename split across replicas: wave 1's `Remove(from)` is
    /// sub-op `remove_index` on `from_replica`; wave 2 creates `to` on
    /// its own replica iff the source existed.
    SplitRename {
        from_replica: usize,
        remove_index: usize,
        to: PathKey,
    },
}

/// Executes `batch` across the fleet behind `transport`: partition by
/// fingerprint, run wave 1 on every involved replica, run wave 2 for
/// the split renames, stitch outcomes back into original op order.
///
/// Sub-batches inherit `batch`'s [`EntryPolicy`](ghba_core::EntryPolicy)
/// verbatim; deterministic policies (`Pinned`, `RoundRobin`) therefore
/// resolve identically on any [`BatchTransport`] running the same plan.
///
/// # Errors
///
/// Propagates the first transport failure.
pub fn execute_sharded<T: BatchTransport + ?Sized>(
    transport: &mut T,
    batch: &OpBatch,
) -> Result<Vec<OpOutcome>, WireError> {
    let replicas = transport.replica_count();
    assert!(replicas > 0, "a fleet needs at least one replica");

    // Wave 1: partition ops into per-replica sub-batches.
    let mut subs: Vec<OpBatch> = (0..replicas)
        .map(|_| OpBatch::new().with_entry(batch.entry_policy()))
        .collect();
    let mut slots: Vec<Slot> = Vec::with_capacity(batch.len());
    for op in batch.ops() {
        match op {
            MetadataOp::Create(key) | MetadataOp::Lookup(key) | MetadataOp::Remove(key) => {
                let replica = replica_of(key, replicas);
                slots.push(Slot::Direct {
                    replica,
                    index: subs[replica].len(),
                });
                subs[replica].push(op.clone());
            }
            MetadataOp::Rename { from, to } => {
                let from_replica = replica_of(from, replicas);
                let to_replica = replica_of(to, replicas);
                if from_replica == to_replica {
                    slots.push(Slot::Direct {
                        replica: from_replica,
                        index: subs[from_replica].len(),
                    });
                    subs[from_replica].push(op.clone());
                } else {
                    slots.push(Slot::SplitRename {
                        from_replica,
                        remove_index: subs[from_replica].len(),
                        to: to.clone(),
                    });
                    subs[from_replica].push(MetadataOp::Remove(from.clone()));
                }
            }
        }
    }

    let mut wave1: Vec<Vec<OpOutcome>> = Vec::with_capacity(replicas);
    for (replica, sub) in subs.iter().enumerate() {
        if sub.is_empty() {
            wave1.push(Vec::new());
        } else {
            wave1.push(transport.execute_on(replica, sub)?);
        }
    }

    // Wave 2: conditional creates for the split renames whose source
    // existed.
    let mut creates: Vec<OpBatch> = (0..replicas)
        .map(|_| OpBatch::new().with_entry(batch.entry_policy()))
        .collect();
    // (original op index, to replica, index into its wave-2 batch)
    let mut pending: Vec<(usize, usize, usize)> = Vec::new();
    for (i, slot) in slots.iter().enumerate() {
        let Slot::SplitRename {
            from_replica,
            remove_index,
            to,
        } = slot
        else {
            continue;
        };
        let OpOutcome::Removed { home } = &wave1[*from_replica][*remove_index] else {
            return Err(WireError::Protocol {
                detail: format!(
                    "replica {from_replica} answered a Remove with a non-Removed outcome"
                ),
            });
        };
        if home.is_some() {
            let to_replica = replica_of(to, replicas);
            pending.push((i, to_replica, creates[to_replica].len()));
            creates[to_replica].push(MetadataOp::Create(to.clone()));
        }
    }
    let mut wave2: Vec<Vec<OpOutcome>> = Vec::with_capacity(replicas);
    for (replica, sub) in creates.iter().enumerate() {
        if sub.is_empty() {
            wave2.push(Vec::new());
        } else {
            wave2.push(transport.execute_on(replica, sub)?);
        }
    }

    // Stitch.
    let mut outcomes: Vec<OpOutcome> = Vec::with_capacity(batch.len());
    for (i, slot) in slots.iter().enumerate() {
        match slot {
            Slot::Direct { replica, index } => outcomes.push(wave1[*replica][*index].clone()),
            Slot::SplitRename {
                from_replica,
                remove_index,
                ..
            } => {
                let OpOutcome::Removed { home: old_home } = wave1[*from_replica][*remove_index]
                else {
                    unreachable!("checked while planning wave 2");
                };
                let new_home = match pending.iter().find(|(op, _, _)| *op == i) {
                    None => None,
                    Some(&(_, to_replica, index)) => {
                        let OpOutcome::Created { home } = wave2[to_replica][index] else {
                            return Err(WireError::Protocol {
                                detail: format!(
                                    "replica {to_replica} answered a Create with a non-Created \
                                     outcome"
                                ),
                            });
                        };
                        Some(home)
                    }
                };
                outcomes.push(OpOutcome::Renamed { old_home, new_home });
            }
        }
    }
    Ok(outcomes)
}

/// The in-process fleet: `R` independent [`GhbaCluster`]s, one per
/// shard, with seeds derived by [`replica_config`].
///
/// This is the loopback end-to-end tests' **ground truth**: the same
/// batches routed through [`execute_sharded`] over this transport must
/// produce bit-identical outcomes to the TCP deployment, because the
/// per-replica clusters are constructed identically and the plan is the
/// same code.
///
/// # Examples
///
/// ```
/// use ghba_core::{EntryPolicy, GhbaConfig, OpBatch};
/// use ghba_net::{execute_sharded, Federation};
///
/// let mut fleet = Federation::new(&GhbaConfig::default().with_filter_capacity(1_000), 3, 4);
/// let mut batch = OpBatch::new().with_entry(EntryPolicy::RoundRobin { start: 0 });
/// batch.push_create("/a/b");
/// batch.push_lookup("/a/b");
/// let outcomes = execute_sharded(&mut fleet, &batch).unwrap();
/// assert_eq!(outcomes[1].home(), outcomes[0].home());
/// ```
#[derive(Debug)]
pub struct Federation {
    clusters: Vec<GhbaCluster>,
}

impl Federation {
    /// Builds a fleet of `replicas` clusters with `servers` MDSs each.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0` (cluster construction panics on
    /// `servers == 0`).
    #[must_use]
    pub fn new(base: &GhbaConfig, replicas: usize, servers: usize) -> Self {
        assert!(replicas > 0, "a fleet needs at least one replica");
        Federation {
            clusters: (0..replicas)
                .map(|r| GhbaCluster::with_servers(replica_config(base, r), servers))
                .collect(),
        }
    }

    /// Shard `replica`'s cluster.
    #[must_use]
    pub fn cluster(&self, replica: usize) -> &GhbaCluster {
        &self.clusters[replica]
    }

    /// Shard `replica`'s cluster, mutably (drains, reconfiguration).
    pub fn cluster_mut(&mut self, replica: usize) -> &mut GhbaCluster {
        &mut self.clusters[replica]
    }

    /// Drains every cluster's concurrent write shards and flushes all
    /// pending filter publishes — the in-process twin of broadcasting
    /// [`NetMessage::Drain`](crate::proto::NetMessage::Drain) to the
    /// fleet.
    pub fn drain_all(&mut self) {
        for cluster in &mut self.clusters {
            cluster.drain_concurrent();
            let _ = cluster.flush_all_updates();
        }
    }
}

impl BatchTransport for Federation {
    fn replica_count(&self) -> usize {
        self.clusters.len()
    }

    fn execute_on(&mut self, replica: usize, batch: &OpBatch) -> Result<Vec<OpOutcome>, WireError> {
        Ok(self.clusters[replica].execute_concurrent(batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghba_core::EntryPolicy;

    fn config() -> GhbaConfig {
        GhbaConfig::default()
            .with_filter_capacity(10_000)
            .with_lru_capacity(0)
    }

    fn fleet() -> Federation {
        Federation::new(&config(), 3, 4)
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for i in 0..200 {
            let key = PathKey::new(format!("/d/f{i}"));
            let r = replica_of(&key, 3);
            assert!(r < 3);
            assert_eq!(r, replica_of(&key, 3));
        }
    }

    #[test]
    fn replica_configs_diverge_by_seed_only() {
        let base = config();
        let a = replica_config(&base, 0);
        let b = replica_config(&base, 1);
        assert_ne!(a.seed, b.seed);
        assert_ne!(a.seed, base.seed);
        assert_eq!(a.write_shards, base.write_shards);
    }

    #[test]
    fn create_then_lookup_round_trips_through_the_plan() {
        let mut fleet = fleet();
        let mut batch = OpBatch::new().with_entry(EntryPolicy::RoundRobin { start: 0 });
        for i in 0..50 {
            batch.push_create(format!("/w/f{i}"));
        }
        let created = execute_sharded(&mut fleet, &batch).unwrap();
        fleet.drain_all();
        let mut reads = OpBatch::new().with_entry(EntryPolicy::RoundRobin { start: 0 });
        for i in 0..50 {
            reads.push_lookup(format!("/w/f{i}"));
        }
        let resolved = execute_sharded(&mut fleet, &reads).unwrap();
        for (c, r) in created.iter().zip(&resolved) {
            assert_eq!(r.home(), c.home(), "lookup disagrees with create");
        }
    }

    #[test]
    fn cross_replica_rename_migrates_and_stitches() {
        let mut fleet = fleet();
        // Find a pair of paths landing on different replicas.
        let from = PathKey::new("/mv/src");
        let to = (0..1_000)
            .map(|i| PathKey::new(format!("/mv/dst{i}")))
            .find(|to| replica_of(to, 3) != replica_of(&from, 3))
            .expect("some path lands elsewhere");
        let mut setup = OpBatch::new().with_entry(EntryPolicy::Pinned(ghba_core::MdsId(0)));
        setup.push_create(from.path());
        execute_sharded(&mut fleet, &setup).unwrap();
        fleet.drain_all();

        let mut mv = OpBatch::new().with_entry(EntryPolicy::Pinned(ghba_core::MdsId(1)));
        mv.push(MetadataOp::Rename {
            from: from.clone(),
            to: to.clone(),
        });
        let outcomes = execute_sharded(&mut fleet, &mv).unwrap();
        let OpOutcome::Renamed { old_home, new_home } = outcomes[0] else {
            panic!("rename answered {:?}", outcomes[0]);
        };
        assert!(old_home.is_some(), "source existed");
        assert_eq!(new_home, Some(ghba_core::MdsId(1)), "pinned new home");
        fleet.drain_all();

        // The destination now resolves on its replica; the source is gone.
        let to_replica = replica_of(&to, 3);
        assert!(fleet
            .cluster(to_replica)
            .mds(ghba_core::MdsId(1))
            .expect("server exists")
            .stores(to.path()));
        let from_replica = replica_of(&from, 3);
        let from_cluster = fleet.cluster(from_replica);
        assert!(from_cluster
            .server_ids()
            .iter()
            .all(|&id| !from_cluster.mds(id).unwrap().stores(from.path())));
    }

    #[test]
    fn rename_of_absent_source_is_a_noop_everywhere() {
        let mut fleet = fleet();
        let from = PathKey::new("/ghost/src");
        let to = (0..1_000)
            .map(|i| PathKey::new(format!("/ghost/dst{i}")))
            .find(|to| replica_of(to, 3) != replica_of(&from, 3))
            .expect("some path lands elsewhere");
        let mut mv = OpBatch::new().with_entry(EntryPolicy::RoundRobin { start: 0 });
        mv.push(MetadataOp::Rename {
            from: from.clone(),
            to: to.clone(),
        });
        let outcomes = execute_sharded(&mut fleet, &mv).unwrap();
        assert_eq!(
            outcomes[0],
            OpOutcome::Renamed {
                old_home: None,
                new_home: None
            }
        );
    }

    #[test]
    fn empty_batch_executes_nowhere() {
        let mut fleet = fleet();
        let outcomes = execute_sharded(&mut fleet, &OpBatch::new()).unwrap();
        assert!(outcomes.is_empty());
    }
}
