//! The networked client: discovers the fleet through the rendezvous,
//! keeps one connection per replica, and executes sharded batches
//! through the same [`execute_sharded`] planner the in-process
//! [`Federation`](crate::route::Federation) uses.

use std::io::BufReader;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use ghba_bloom::Fingerprint;
use ghba_core::{MdsId, OpBatch, OpOutcome};

use crate::proto::NetMessage;
use crate::route::{execute_sharded, BatchTransport};
use crate::wire::WireError;

/// One replica's counters, as sampled by [`NetClient::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Write records awaiting reconciliation.
    pub pending: u64,
    /// Batches served since startup.
    pub batches_served: u64,
    /// Newest gossiped membership epoch (0 = none).
    pub gossip_epoch: u64,
}

struct Conn {
    replica: u16,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// Bounded reconnect policy for lost replica connections.
///
/// When a request hits an I/O failure (or the replica closes the
/// connection mid-stream), the client re-fetches the replica map from
/// the rendezvous — a restarted replica re-registers under a **new**
/// address — reconnects, and retries the request, sleeping an
/// exponentially growing backoff between attempts. Retries are
/// **at-least-once**: a request whose reply was lost may have been
/// served before the connection died, so a retried create can observe
/// its own first attempt. The loss scenarios this targets (replica
/// crash and restart) discard the dead process's unreconciled state
/// anyway, which is why the bound is small rather than infinite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Reconnect-and-retry attempts per request (`0` disables retry —
    /// the first failure propagates, the pre-PR-9 behaviour).
    pub attempts: u32,
    /// Sleep before the first retry; doubles per attempt.
    pub initial_backoff: Duration,
    /// Backoff ceiling, so a long outage never sleeps unboundedly.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    /// Four attempts, 25ms → 200ms backoff: rides out a replica
    /// restart (~100ms re-register) without masking a real outage for
    /// more than ~0.6s.
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            initial_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// No retry: every transport failure propagates immediately.
    #[must_use]
    pub fn disabled() -> Self {
        RetryPolicy {
            attempts: 0,
            ..RetryPolicy::default()
        }
    }
}

/// A connected client of the whole fleet.
///
/// Implements [`BatchTransport`], so [`NetClient::execute`] routes a
/// mixed batch across the replicas — fingerprint partition, two-wave
/// cross-replica renames, stitched outcomes — via the shared planner.
pub struct NetClient {
    conns: Vec<Conn>,
    next_seq: u64,
    /// Rendezvous address, kept for reconnect map re-fetches.
    rendezvous: String,
    retry: RetryPolicy,
    /// Reconnects that led to a successful retry, across all replicas.
    reconnects: u64,
}

impl std::fmt::Debug for NetClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetClient")
            .field("replicas", &self.conns.len())
            .field("next_seq", &self.next_seq)
            .finish_non_exhaustive()
    }
}

impl NetClient {
    /// Connects: polls the rendezvous at `rendezvous` until replicas
    /// `0..expected` have all registered **and** accept connections, or
    /// `timeout` elapses. A registration whose port refuses the
    /// connection — a replica that was just killed and is recovering
    /// from its WAL, still holding its stale map entry until it
    /// re-registers or liveness prunes it — is retried like an
    /// incomplete map rather than surfaced, so a fresh client rides
    /// out a restart the same way an existing client's
    /// [`RetryPolicy`] does.
    ///
    /// # Errors
    ///
    /// Fails when the fleet does not fully register and accept
    /// connections within `timeout`.
    pub fn connect(
        rendezvous: &str,
        expected: usize,
        timeout: Duration,
    ) -> Result<NetClient, WireError> {
        assert!(expected > 0, "a fleet needs at least one replica");
        let deadline = Instant::now() + timeout;
        loop {
            match Self::connect_once(rendezvous, expected, timeout) {
                Ok(client) => return Ok(client),
                Err(err) if Instant::now() >= deadline => return Err(err),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// One full connection attempt: fetch the map, require it
    /// complete, open one connection per replica. Any failure aborts
    /// the attempt; [`NetClient::connect`] owns the retry loop.
    fn connect_once(
        rendezvous: &str,
        expected: usize,
        timeout: Duration,
    ) -> Result<NetClient, WireError> {
        let map = fetch_map(rendezvous)?;
        if !(0..expected).all(|r| map.iter().any(|(i, _)| *i == r as u16)) {
            return Err(WireError::Protocol {
                detail: format!(
                    "fleet incomplete after {timeout:?}: {} of {expected} replicas registered",
                    map.len()
                ),
            });
        }
        let mut conns = Vec::with_capacity(expected);
        for r in 0..expected as u16 {
            let addr = map
                .iter()
                .find(|(i, _)| *i == r)
                .map(|(_, addr)| addr.clone())
                .expect("checked above");
            conns.push(open_conn(r, &addr)?);
        }
        Ok(NetClient {
            conns,
            next_seq: 0,
            rendezvous: rendezvous.to_string(),
            retry: RetryPolicy::default(),
            reconnects: 0,
        })
    }

    /// Overrides the reconnect/retry policy (builder style); see
    /// [`RetryPolicy`].
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Connections re-established by the retry path so far.
    #[must_use]
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Sends one request on replica `replica`'s connection and reads
    /// the reply. On a transport loss (I/O error or the replica
    /// closing the connection), re-fetches the replica map from the
    /// rendezvous, reconnects, and retries under [`RetryPolicy`].
    fn request(&mut self, replica: usize, msg: &NetMessage) -> Result<NetMessage, WireError> {
        let mut backoff = self.retry.initial_backoff;
        let mut attempts_left = self.retry.attempts;
        loop {
            match self.request_once(replica, msg) {
                Ok(reply) => return Ok(reply),
                // Only transport losses are worth a reconnect; a
                // replica that *answered* with an error stays final.
                Err(err @ WireError::Io(_)) if attempts_left > 0 => err,
                Err(err) => return Err(err),
            };
            attempts_left -= 1;
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(self.retry.max_backoff);
            match self.reconnect(replica) {
                Ok(()) => self.reconnects += 1,
                // The replica may still be re-registering: the next
                // `request_once` on the stale connection fails fast and
                // spends another attempt, so the budget stays bounded —
                // but surface the rendezvous-side error once it's gone.
                Err(reconnect_err) if attempts_left == 0 => return Err(reconnect_err),
                Err(_) => {}
            }
        }
    }

    /// One send/receive on the current connection, no retry.
    fn request_once(&mut self, replica: usize, msg: &NetMessage) -> Result<NetMessage, WireError> {
        let conn = &mut self.conns[replica];
        msg.write_to(&mut conn.writer)?;
        match NetMessage::read_from(&mut conn.reader)? {
            Some(NetMessage::ErrorReply { code, detail }) => Err(WireError::Protocol {
                detail: format!(
                    "replica {} rejected the request ({code}): {detail}",
                    conn.replica
                ),
            }),
            Some(reply) => Ok(reply),
            // A clean EOF is the same loss as a reset for our purposes:
            // classify as I/O so the retry path reconnects.
            None => Err(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionAborted,
                format!("replica {} closed the connection", conn.replica),
            ))),
        }
    }

    /// Re-fetches the replica map (a restarted replica re-registers
    /// under a new address) and reopens replica `replica`'s connection.
    fn reconnect(&mut self, replica: usize) -> Result<(), WireError> {
        let index = self.conns[replica].replica;
        let map = fetch_map(&self.rendezvous)?;
        let addr = map
            .iter()
            .find(|(i, _)| *i == index)
            .map(|(_, addr)| addr.clone())
            .ok_or_else(|| WireError::Protocol {
                detail: format!("replica {index} is no longer in the rendezvous map"),
            })?;
        self.conns[replica] = open_conn(index, &addr)?;
        Ok(())
    }

    /// Executes `batch` across the fleet (see [`execute_sharded`]).
    ///
    /// # Errors
    ///
    /// Propagates the first transport or protocol failure.
    pub fn execute(&mut self, batch: &OpBatch) -> Result<Vec<OpOutcome>, WireError> {
        execute_sharded(self, batch)
    }

    /// Forces a synchronous drain barrier on every replica, returning
    /// each replica's `(drained, pending)` ack.
    ///
    /// # Errors
    ///
    /// Propagates the first transport or protocol failure.
    pub fn drain_all(&mut self) -> Result<Vec<(u64, u64)>, WireError> {
        let mut acks = Vec::with_capacity(self.conns.len());
        for replica in 0..self.conns.len() {
            match self.request(replica, &NetMessage::Drain)? {
                NetMessage::DrainAck { drained, pending } => acks.push((drained, pending)),
                reply => {
                    return Err(WireError::Protocol {
                        detail: format!("expected DrainAck, got {reply:?}"),
                    })
                }
            }
        }
        Ok(acks)
    }

    /// Samples replica `replica`'s counters.
    ///
    /// # Errors
    ///
    /// Propagates the first transport or protocol failure.
    pub fn stats(&mut self, replica: usize) -> Result<ReplicaStats, WireError> {
        match self.request(replica, &NetMessage::Stats)? {
            NetMessage::StatsReply {
                pending,
                batches_served,
                gossip_epoch,
            } => Ok(ReplicaStats {
                pending,
                batches_served,
                gossip_epoch,
            }),
            reply => Err(WireError::Protocol {
                detail: format!("expected StatsReply, got {reply:?}"),
            }),
        }
    }

    /// Multicasts a [`NetMessage::GroupProbe`] for `fp` to every
    /// replica, returning `(replica, positive servers)` per reply —
    /// the networked form of the L3/L4 group multicast.
    ///
    /// # Errors
    ///
    /// Propagates the first transport or protocol failure.
    pub fn probe_all(
        &mut self,
        qid: u64,
        fp: &Fingerprint,
    ) -> Result<Vec<(u16, Vec<MdsId>)>, WireError> {
        let mut replies = Vec::with_capacity(self.conns.len());
        for replica in 0..self.conns.len() {
            match self.request(replica, &NetMessage::GroupProbe { qid, fp: *fp })? {
                NetMessage::ProbeReply {
                    qid: echoed,
                    replica: index,
                    positives,
                } if echoed == qid => replies.push((index, positives)),
                reply => {
                    return Err(WireError::Protocol {
                        detail: format!("expected ProbeReply(qid={qid}), got {reply:?}"),
                    })
                }
            }
        }
        Ok(replies)
    }

    /// Announces a membership view to every replica (one-way; confirm
    /// adoption via [`NetClient::stats`] on the same client, whose
    /// requests are ordered behind the gossip on each connection).
    ///
    /// # Errors
    ///
    /// Propagates the first write failure.
    pub fn gossip(&mut self, epoch: u64, members: &[MdsId]) -> Result<(), WireError> {
        for conn in &mut self.conns {
            NetMessage::Gossip {
                epoch,
                members: members.to_vec(),
            }
            .write_to(&mut conn.writer)?;
        }
        Ok(())
    }

    /// Pings every replica and verifies the echoed nonce.
    ///
    /// # Errors
    ///
    /// Propagates the first transport or protocol failure.
    pub fn ping_all(&mut self, nonce: u64) -> Result<(), WireError> {
        for replica in 0..self.conns.len() {
            match self.request(replica, &NetMessage::Ping { nonce })? {
                NetMessage::Pong { nonce: echoed } if echoed == nonce => {}
                reply => {
                    return Err(WireError::Protocol {
                        detail: format!("expected Pong({nonce}), got {reply:?}"),
                    })
                }
            }
        }
        Ok(())
    }

    /// Asks every replica to shut down (one-way; the servers close the
    /// connections as they stop).
    ///
    /// # Errors
    ///
    /// Propagates the first write failure.
    pub fn shutdown_fleet(&mut self) -> Result<(), WireError> {
        for conn in &mut self.conns {
            NetMessage::Shutdown.write_to(&mut conn.writer)?;
        }
        Ok(())
    }
}

impl BatchTransport for NetClient {
    fn replica_count(&self) -> usize {
        self.conns.len()
    }

    fn execute_on(&mut self, replica: usize, batch: &OpBatch) -> Result<Vec<OpOutcome>, WireError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        match self.request(
            replica,
            &NetMessage::ExecuteBatch {
                seq,
                batch: batch.clone(),
            },
        )? {
            NetMessage::BatchReply {
                seq: echoed,
                outcomes,
            } if echoed == seq => {
                if outcomes.len() == batch.len() {
                    Ok(outcomes)
                } else {
                    Err(WireError::Protocol {
                        detail: format!(
                            "replica {replica} answered {} outcomes for {} ops",
                            outcomes.len(),
                            batch.len()
                        ),
                    })
                }
            }
            reply => Err(WireError::Protocol {
                detail: format!("expected BatchReply(seq={seq}), got {reply:?}"),
            }),
        }
    }
}

/// Opens one replica connection (nodelay, split read/write halves).
fn open_conn(replica: u16, addr: &str) -> Result<Conn, WireError> {
    let stream = TcpStream::connect(addr).map_err(WireError::Io)?;
    stream.set_nodelay(true).ok();
    let read_half = stream.try_clone().map_err(WireError::Io)?;
    Ok(Conn {
        replica,
        reader: BufReader::new(read_half),
        writer: stream,
    })
}

/// One-shot rendezvous map fetch.
fn fetch_map(rendezvous: &str) -> Result<Vec<(u16, String)>, WireError> {
    let stream = TcpStream::connect(rendezvous).map_err(WireError::Io)?;
    let mut writer = stream.try_clone().map_err(WireError::Io)?;
    NetMessage::FetchMap.write_to(&mut writer)?;
    let mut reader = BufReader::new(stream);
    match NetMessage::read_from(&mut reader)? {
        Some(NetMessage::MapReply { replicas, .. }) => Ok(replicas),
        Some(reply) => Err(WireError::Protocol {
            detail: format!("expected MapReply, got {reply:?}"),
        }),
        None => Err(WireError::Protocol {
            detail: "rendezvous closed the connection".to_string(),
        }),
    }
}

/// Sends one [`NetMessage::Shutdown`] to `addr` (rendezvous or
/// replica).
///
/// # Errors
///
/// Propagates connection or write failures.
pub fn send_shutdown(addr: &str) -> Result<(), WireError> {
    let mut stream = TcpStream::connect(addr).map_err(WireError::Io)?;
    NetMessage::Shutdown.write_to(&mut stream)
}
